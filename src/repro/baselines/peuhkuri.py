"""Peuhkuri-style flow-based lossy trace compression.

Peuhkuri (ACM SIGCOMM IMW 2001, [5] in the paper) proposed "a lossy
method that utilizes the flow nature in Internet traffic to reduce data
volume while preserving some informations for network research"; the
paper uses its published bound: "headers packet traces are reduced to 16%
of its original size".

This codec implements the same idea at the same operating point: per
flow, a one-time record carries the 5-tuple (optionally anonymized —
Peuhkuri's main goal); per packet, a compact record carries a flow
reference, a timestamp delta, the payload length class deltas and TCP
essentials.  What is dropped (exact seq/ack evolution, IP id, window) is
what makes the method lossy and lands it at ~16%, i.e. ~7 bytes per
44-byte TSH record.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.flowkey import FiveTuple
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace

MAGIC = b"RPK1"
TIMESTAMP_UNITS_PER_SECOND = 10_000  # 100 µs


@dataclass(frozen=True)
class PeuhkuriConfig:
    """Codec options.

    ``anonymize`` remaps addresses to sequential pseudo-addresses (the
    original method's purpose); kept off by default so section 6's
    memory studies can still see real destination structure.
    """

    anonymize: bool = False


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("negative varint")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


class PeuhkuriCodec:
    """Flow-table based lossy codec at Peuhkuri's ~16% operating point."""

    def __init__(self, config: PeuhkuriConfig | None = None) -> None:
        self.config = config or PeuhkuriConfig()

    def compress(self, trace: Trace) -> bytes:
        """Encode a trace into the flow-record + packet-record container."""
        flow_ids: dict[FiveTuple, int] = {}
        flow_records = bytearray()
        packet_records = bytearray()
        last_units = 0
        pseudo_addresses: dict[int, int] = {}

        def anonymized(address: int) -> int:
            # A consistent per-address mapping, so both directions of a
            # conversation stay one flow (Peuhkuri's anonymization is
            # per-address, not per-flow).
            pseudo = pseudo_addresses.get(address)
            if pseudo is None:
                pseudo = 0x0A000001 + len(pseudo_addresses)
                pseudo_addresses[address] = pseudo
            return pseudo

        for packet in trace.packets:
            key = packet.five_tuple()
            flow_id = flow_ids.get(key)
            if flow_id is None:
                flow_id = len(flow_ids)
                flow_ids[key] = flow_id
                if self.config.anonymize:
                    src, dst = anonymized(key.src_ip), anonymized(key.dst_ip)
                else:
                    src, dst = key.src_ip, key.dst_ip
                flow_records += struct.pack(
                    ">IIHHB", src, dst, key.src_port, key.dst_port, key.protocol
                )

            units = int(
                round(
                    (packet.timestamp - trace.start_time())
                    * TIMESTAMP_UNITS_PER_SECOND
                )
            )
            delta = max(0, units - last_units)
            last_units = units

            _write_varint(packet_records, flow_id)
            _write_varint(packet_records, delta)
            packet_records.append(packet.flags)
            _write_varint(packet_records, packet.payload_len)

        header = struct.pack(
            ">4sIId",
            MAGIC,
            len(flow_ids),
            len(trace.packets),
            trace.start_time(),
        )
        return header + bytes(flow_records) + bytes(packet_records)

    def decompress(self, data: bytes) -> Trace:
        """Rebuild a trace (lossy: seq/ack/window/ip_id are zeroed)."""
        if data[:4] != MAGIC:
            raise ValueError("not a Peuhkuri container")
        flow_count, packet_count, base_time = struct.unpack(">IId", data[4:20])
        offset = 20

        flows: list[FiveTuple] = []
        for _ in range(flow_count):
            src, dst, sport, dport, protocol = struct.unpack(
                ">IIHHB", data[offset : offset + 13]
            )
            offset += 13
            flows.append(FiveTuple(src, dst, protocol, sport, dport))

        packets: list[PacketRecord] = []
        units = 0
        for _ in range(packet_count):
            flow_id, offset = _read_varint(data, offset)
            delta, offset = _read_varint(data, offset)
            flags = data[offset]
            offset += 1
            payload_len, offset = _read_varint(data, offset)
            units += delta
            key = flows[flow_id]
            packets.append(
                PacketRecord(
                    timestamp=base_time + units / TIMESTAMP_UNITS_PER_SECOND,
                    src_ip=key.src_ip,
                    dst_ip=key.dst_ip,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                    protocol=key.protocol,
                    flags=flags,
                    payload_len=payload_len,
                )
            )
        return Trace(packets, name="peuhkuri-decompressed")

    def ratio(self, trace: Trace) -> float:
        """compressed/original on the TSH byte form."""
        original = trace.stored_size_bytes()
        if original == 0:
            return 0.0
        return len(self.compress(trace)) / original
