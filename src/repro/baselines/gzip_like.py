"""The GZIP baseline.

The paper measures "the compressed file size obtained using the GZIP
application is 50% of the original TSH file size".  GZIP's payload is the
DEFLATE algorithm; Python's stdlib ``zlib`` is the very same codebase the
gzip tool links, so this wrapper *is* the paper's baseline (and the
from-scratch :mod:`repro.baselines.deflate` is cross-checked against it).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.trace.trace import Trace


@dataclass(frozen=True)
class GzipCodec:
    """Lossless DEFLATE compression of a TSH-serialized trace."""

    level: int = 6  # the gzip default

    def __post_init__(self) -> None:
        if not 0 <= self.level <= 9:
            raise ValueError(f"zlib level must be 0..9: {self.level}")

    def compress(self, trace: Trace) -> bytes:
        """TSH-serialize then DEFLATE the trace."""
        return zlib.compress(trace.to_tsh_bytes(), self.level)

    def decompress(self, data: bytes) -> Trace:
        """Invert :meth:`compress` (lossless)."""
        return Trace.from_tsh_bytes(zlib.decompress(data))

    def ratio(self, trace: Trace) -> float:
        """compressed/original size on the TSH byte form."""
        original = trace.stored_size_bytes()
        if original == 0:
            return 0.0
        return len(self.compress(trace)) / original


def gzip_compressed_size(trace: Trace, level: int = 6) -> int:
    """Size in bytes of the DEFLATE-compressed TSH trace."""
    return len(GzipCodec(level).compress(trace))
