"""Baseline compressors and analytic models (section 5).

Figure 1 compares the proposed method against GZIP, the (modified) Van
Jacobson RFC 1144 header compressor and Peuhkuri's flow-based lossy
method.  All three baselines are implemented here as working codecs, plus
a from-scratch LZ77 + canonical-Huffman pipeline (cross-checked against
stdlib ``zlib``, which implements the same DEFLATE family the paper's
GZIP uses) and the closed-form ratio models of equations 5–8.
"""

from repro.baselines.gzip_like import GzipCodec, gzip_compressed_size
from repro.baselines.lz77 import LZ77_MAX_MATCH, LZ77_MIN_MATCH, Token, lz77_compress, lz77_decompress
from repro.baselines.huffman import (
    HuffmanCode,
    build_huffman_code,
    huffman_decode,
    huffman_encode,
)
from repro.baselines.deflate import deflate_compress, deflate_decompress
from repro.baselines.vanjacobson import VanJacobsonCodec, VJConfig
from repro.baselines.peuhkuri import PeuhkuriCodec, PeuhkuriConfig
from repro.baselines.models import (
    GZIP_RATIO_ESTIMATE,
    PEUHKURI_RATIO_BOUND,
    CompressionModel,
    proposed_model,
    proposed_ratio_for_length,
    vj_model,
    vj_ratio_for_length,
    weighted_ratio,
)

__all__ = [
    "GzipCodec",
    "gzip_compressed_size",
    "LZ77_MAX_MATCH",
    "LZ77_MIN_MATCH",
    "Token",
    "lz77_compress",
    "lz77_decompress",
    "HuffmanCode",
    "build_huffman_code",
    "huffman_decode",
    "huffman_encode",
    "deflate_compress",
    "deflate_decompress",
    "VanJacobsonCodec",
    "VJConfig",
    "PeuhkuriCodec",
    "PeuhkuriConfig",
    "GZIP_RATIO_ESTIMATE",
    "PEUHKURI_RATIO_BOUND",
    "CompressionModel",
    "proposed_model",
    "proposed_ratio_for_length",
    "vj_model",
    "vj_ratio_for_length",
    "weighted_ratio",
]
