"""From-scratch LZ77 sliding-window compression.

The paper cites LZ77 [2] as one of the generic lossless algorithms whose
"around 50%" ratio motivates a domain-specific method.  This is a clean
hash-chain implementation with the DEFLATE parameterization (32 KiB
window, 3..258 byte matches) producing an explicit token stream that the
Huffman stage (:mod:`repro.baselines.huffman`) entropy-codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

WINDOW_SIZE = 32 * 1024
LZ77_MIN_MATCH = 3
LZ77_MAX_MATCH = 258
_HASH_BITS = 15
_HASH_SIZE = 1 << _HASH_BITS
_MAX_CHAIN = 64


@dataclass(frozen=True, slots=True)
class Token:
    """One LZ77 token: a literal byte or a back-reference.

    ``length == 0`` encodes a literal (``literal`` holds the byte value);
    otherwise (``length``, ``distance``) is a match copying ``length``
    bytes from ``distance`` bytes back.
    """

    length: int
    distance: int
    literal: int

    @classmethod
    def make_literal(cls, byte: int) -> "Token":
        if not 0 <= byte <= 255:
            raise ValueError(f"literal out of range: {byte}")
        return cls(0, 0, byte)

    @classmethod
    def make_match(cls, length: int, distance: int) -> "Token":
        if not LZ77_MIN_MATCH <= length <= LZ77_MAX_MATCH:
            raise ValueError(f"match length out of range: {length}")
        if not 1 <= distance <= WINDOW_SIZE:
            raise ValueError(f"match distance out of range: {distance}")
        return cls(length, distance, 0)

    @property
    def is_literal(self) -> bool:
        return self.length == 0


def _hash3(data: bytes, pos: int) -> int:
    """Hash of the 3 bytes at ``pos`` (the DEFLATE-style insert hash)."""
    return (
        (data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]
    ) & (_HASH_SIZE - 1)


def lz77_compress(data: bytes) -> list[Token]:
    """Tokenize ``data`` with greedy hash-chain matching."""
    tokens: list[Token] = []
    n = len(data)
    if n == 0:
        return tokens

    head: list[int] = [-1] * _HASH_SIZE  # hash -> most recent position
    prev: list[int] = [-1] * n  # position -> previous same-hash position

    pos = 0
    while pos < n:
        best_length = 0
        best_distance = 0
        if pos + LZ77_MIN_MATCH <= n:
            slot = _hash3(data, pos)
            candidate = head[slot]
            chain = 0
            window_floor = pos - WINDOW_SIZE
            max_length = min(LZ77_MAX_MATCH, n - pos)
            while candidate >= 0 and candidate >= window_floor and chain < _MAX_CHAIN:
                length = 0
                while (
                    length < max_length
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length > best_length:
                    best_length = length
                    best_distance = pos - candidate
                    if length >= max_length:
                        break
                candidate = prev[candidate]
                chain += 1

        if best_length >= LZ77_MIN_MATCH:
            tokens.append(Token.make_match(best_length, best_distance))
            # Insert every covered position into the hash chains so later
            # matches can refer inside this match.
            end = min(pos + best_length, n - LZ77_MIN_MATCH + 1)
            cursor = pos
            while cursor < end:
                slot = _hash3(data, cursor)
                prev[cursor] = head[slot]
                head[slot] = cursor
                cursor += 1
            pos += best_length
        else:
            tokens.append(Token.make_literal(data[pos]))
            if pos + LZ77_MIN_MATCH <= n:
                slot = _hash3(data, pos)
                prev[pos] = head[slot]
                head[slot] = pos
            pos += 1
    return tokens


def lz77_decompress(tokens: Iterable[Token]) -> bytes:
    """Rebuild the byte stream from a token sequence."""
    out = bytearray()
    for token in tokens:
        if token.is_literal:
            out.append(token.literal)
            continue
        if token.distance > len(out):
            raise ValueError(
                f"match distance {token.distance} reaches before stream start"
            )
        start = len(out) - token.distance
        # Overlapping copies are byte-by-byte by definition.
        for offset in range(token.length):
            out.append(out[start + offset])
    return bytes(out)
