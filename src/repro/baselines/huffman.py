"""Canonical Huffman coding.

The paper cites dynamic Huffman coding [1] among the generic lossless
methods.  This module builds length-limited canonical codes from symbol
frequencies and provides a bit-level encoder/decoder; the deflate-like
pipeline (:mod:`repro.baselines.deflate`) uses it to entropy-code LZ77
token streams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

MAX_CODE_LENGTH = 15


class BitWriter:
    """Append-only bit buffer (LSB-first within each byte)."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._bit_pos = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, LSB first."""
        if count < 0 or value < 0 or (count < 64 and value >> count):
            raise ValueError(f"value {value} does not fit in {count} bits")
        for _ in range(count):
            if self._bit_pos == 0:
                self._out.append(0)
            if value & 1:
                self._out[-1] |= 1 << self._bit_pos
            value >>= 1
            self._bit_pos = (self._bit_pos + 1) % 8

    def getvalue(self) -> bytes:
        """The accumulated bytes (final partial byte zero-padded)."""
        return bytes(self._out)

    def bit_length(self) -> int:
        """Exact number of bits written."""
        if not self._out:
            return 0
        trailing = self._bit_pos if self._bit_pos else 8
        return (len(self._out) - 1) * 8 + trailing


class BitReader:
    """Sequential bit reader matching :class:`BitWriter`'s order."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    def read_bit(self) -> int:
        if self._byte_pos >= len(self._data):
            raise ValueError("bit stream exhausted")
        bit = (self._data[self._byte_pos] >> self._bit_pos) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits, LSB first."""
        value = 0
        for index in range(count):
            value |= self.read_bit() << index
        return value


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code: symbol -> (code bits, length)."""

    lengths: dict[int, int]
    codes: dict[int, int]

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Emit one symbol."""
        try:
            length = self.lengths[symbol]
            code = self.codes[symbol]
        except KeyError:
            raise ValueError(f"symbol not in code: {symbol}") from None
        writer.write_bits(code, length)

    def build_decoder(self) -> dict[tuple[int, int], int]:
        """(length, code) -> symbol map for the slow-but-simple decoder."""
        return {
            (length, self.codes[symbol]): symbol
            for symbol, length in self.lengths.items()
        }


def _package_merge_lengths(
    frequencies: Mapping[int, int], limit: int
) -> dict[int, int]:
    """Code lengths via plain Huffman, flattened to ``limit`` if needed."""
    symbols = [s for s, f in frequencies.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}

    heap: list[tuple[int, int, list[int]]] = [
        (frequencies[s], s, [s]) for s in symbols
    ]
    heapq.heapify(heap)
    depths: dict[int, int] = {s: 0 for s in symbols}
    while len(heap) > 1:
        fa, _, group_a = heapq.heappop(heap)
        fb, tie, group_b = heapq.heappop(heap)
        for symbol in group_a + group_b:
            depths[symbol] += 1
        heapq.heappush(heap, (fa + fb, tie, group_a + group_b))

    # Flatten over-long codes (rare, only for pathological frequencies):
    # push over-limit symbols to the limit, then repair Kraft equality by
    # deepening the least-frequent repairable symbols.
    if max(depths.values()) > limit:
        for symbol in depths:
            depths[symbol] = min(depths[symbol], limit)
        kraft = sum(2 ** (limit - d) for d in depths.values())
        budget = 2**limit
        by_depth = sorted(depths, key=lambda s: (-depths[s], frequencies[s]))
        index = 0
        while kraft > budget:
            symbol = by_depth[index % len(by_depth)]
            if depths[symbol] < limit:
                kraft -= 2 ** (limit - depths[symbol] - 1)
                depths[symbol] += 1
            index += 1
    return depths


def build_huffman_code(
    frequencies: Mapping[int, int], limit: int = MAX_CODE_LENGTH
) -> HuffmanCode:
    """Canonical code from symbol frequencies.

    Canonical assignment sorts by (length, symbol) so the code is fully
    determined by its length table — which is all the container stores.
    """
    lengths = _package_merge_lengths(frequencies, limit)
    return code_from_lengths(lengths)


def code_from_lengths(lengths: Mapping[int, int]) -> HuffmanCode:
    """Rebuild the canonical code given only the length table."""
    codes: dict[int, int] = {}
    code = 0
    previous_length = 0
    for symbol in sorted(lengths, key=lambda s: (lengths[s], s)):
        length = lengths[symbol]
        code <<= length - previous_length
        # Store codes bit-reversed so the LSB-first writer emits them in
        # canonical MSB-first order.
        codes[symbol] = _reverse_bits(code, length)
        previous_length = length
        code += 1
    return HuffmanCode(dict(lengths), codes)


def _reverse_bits(value: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def huffman_encode(symbols: Iterable[int], code: HuffmanCode) -> bytes:
    """Encode a symbol sequence with an existing code."""
    writer = BitWriter()
    for symbol in symbols:
        code.encode_symbol(writer, symbol)
    return writer.getvalue()


def huffman_decode(data: bytes, code: HuffmanCode, count: int) -> list[int]:
    """Decode exactly ``count`` symbols.

    Uses incremental canonical decoding: read bits until the accumulated
    (length, code) pair is in the table.
    """
    table = {}
    for symbol, length in code.lengths.items():
        canonical = _reverse_bits(code.codes[symbol], length)
        table[(length, canonical)] = symbol
    reader = BitReader(data)
    out: list[int] = []
    max_length = max(code.lengths.values(), default=0)
    for _ in range(count):
        accumulated = 0
        length = 0
        while True:
            accumulated = (accumulated << 1) | reader.read_bit()
            length += 1
            if length > max_length:
                raise ValueError("invalid bit stream: no code matches")
            symbol = table.get((length, accumulated))
            if symbol is not None:
                out.append(symbol)
                break
    return out
