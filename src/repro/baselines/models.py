"""Analytic compression-ratio models — equations 5 through 8.

Section 5 derives closed-form ratios from the flow-length distribution
``P_n`` (the probability that a Web flow has ``n`` packets):

* **Van Jacobson** (eq. 5): a flow of ``n`` packets stores one full
  40-byte header plus ``n - 1`` minimal 6-byte encoded headers::

      r_vj(n) = (40 + 6 (n - 1)) / (40 n)

* **Proposed method** (eq. 7): 8 bytes represent a whole flow, and the
  template datasets are "almost constant with the packet trace length"::

      r(n) = 8 / (40 n)

* the trace-wide ratios (eq. 6 / eq. 8) weight ``r(n)`` with ``P_n``.
  The published text is ambiguous between flow- and byte-weighted
  averaging; byte weighting (equivalently packet weighting — headers are
  fixed 40 B) is the physically meaningful "compressed size over original
  size" and reproduces the paper's 30% / 3% headline numbers, so it is
  the default; the flow-weighted variant is also provided.

GZIP and Peuhkuri enter Figure 1 as measured constants: "the compressed
file size obtained using the GZIP application is 50% of the original" and
Peuhkuri "has the compression ratio bounded by 16%".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.net.packet import HEADER_BYTES
from repro.trace.stats import FlowLengthDistribution

GZIP_RATIO_ESTIMATE = 0.50
"""Paper-measured GZIP ratio on TSH traces."""

PEUHKURI_RATIO_BOUND = 0.16
"""Published bound of Peuhkuri's lossy method."""

VJ_FIRST_HEADER_BYTES = 40
VJ_MIN_ENCODED_BYTES = 6
PROPOSED_FLOW_RECORD_BYTES = 8


def vj_ratio_for_length(n: int) -> float:
    """Equation 5: the VJ ratio for an ``n``-packet flow."""
    if n < 1:
        raise ValueError(f"flow length must be >= 1: {n}")
    compressed = VJ_FIRST_HEADER_BYTES + VJ_MIN_ENCODED_BYTES * (n - 1)
    return compressed / (HEADER_BYTES * n)


def proposed_ratio_for_length(
    n: int, flow_record_bytes: int = PROPOSED_FLOW_RECORD_BYTES
) -> float:
    """Equation 7: the proposed method's ratio for an ``n``-packet flow."""
    if n < 1:
        raise ValueError(f"flow length must be >= 1: {n}")
    return flow_record_bytes / (HEADER_BYTES * n)


def weighted_ratio(
    distribution: FlowLengthDistribution | Mapping[int, float],
    per_length_ratio: Callable[[int], float],
    weight: str = "bytes",
) -> float:
    """Equations 6/8: fold ``r(n)`` over the flow-length distribution.

    ``weight='bytes'`` (default) computes total-compressed over
    total-original — ``sum P_n * n * r(n) / sum P_n * n``;
    ``weight='flows'`` computes the naive per-flow mean ``sum P_n * r(n)``.
    """
    if isinstance(distribution, FlowLengthDistribution):
        pmf = distribution.probabilities()
    else:
        pmf = dict(distribution)
    if not pmf:
        raise ValueError("empty flow-length distribution")

    if weight == "bytes":
        numerator = sum(p * n * per_length_ratio(n) for n, p in pmf.items())
        denominator = sum(p * n for n, p in pmf.items())
        return numerator / denominator
    if weight == "flows":
        return sum(p * per_length_ratio(n) for n, p in pmf.items())
    raise ValueError(f"unknown weighting: {weight!r}")


@dataclass(frozen=True)
class CompressionModel:
    """A named analytic model: per-length ratio + the folding rule."""

    name: str
    per_length_ratio: Callable[[int], float]

    def trace_ratio(
        self,
        distribution: FlowLengthDistribution | Mapping[int, float],
        weight: str = "bytes",
    ) -> float:
        """The model's trace-wide ratio for a flow-length distribution."""
        return weighted_ratio(distribution, self.per_length_ratio, weight)


def paper_reference_distribution() -> dict[int, float]:
    """A flow-length PMF consistent with the paper's published aggregates.

    The paper never tabulates ``P_n``, but its numbers pin it down well:
    98% of flows at <= 50 packets, 75% of packets in those flows, and the
    30% / 3% ratios of equations 6/8 jointly imply a mean flow length of
    ≈ 5.7 packets (solve ``(34 + 6 m) / (40 m) = 0.30``) with a long-flow
    conditional mean of ≈ 71 packets.  This PMF — a geometric body over
    2..50 plus a uniform long tail — satisfies all four constraints and
    is what the E3 experiment folds the analytic models over.
    """
    body_lengths = range(2, 51)
    decay = 0.72
    body = {n: decay ** (n - 2) for n in body_lengths}
    body_total = sum(body.values())
    pmf = {n: 0.98 * w / body_total for n, w in body.items()}

    tail_lengths = range(51, 92)
    tail_weight = 0.02 / len(tail_lengths)
    for n in tail_lengths:
        pmf[n] = tail_weight
    return pmf


def vj_model() -> CompressionModel:
    """The modified Van Jacobson model (eq. 5/6) — paper: ≈30%."""
    return CompressionModel("van-jacobson", vj_ratio_for_length)


def proposed_model(
    flow_record_bytes: int = PROPOSED_FLOW_RECORD_BYTES,
) -> CompressionModel:
    """The proposed method's model (eq. 7/8) — paper: ≈3%."""
    return CompressionModel(
        "proposed",
        lambda n: proposed_ratio_for_length(n, flow_record_bytes),
    )
