"""A deflate-like pipeline: LZ77 tokens entropy-coded with Huffman.

This is the from-scratch member of the GZIP family ([1][2][3] in the
paper): :func:`lz77_compress` produces tokens, which are mapped onto a
DEFLATE-style symbol alphabet (literals 0..255, end-of-block 256, length
codes 257+) and canonical-Huffman coded.  The container stores the two
code-length tables so decompression is self-contained.

It is intentionally a single "dynamic block" format — enough to be a
real, reversible compressor whose ratio on TSH traces lands in the same
~50% band as stdlib zlib (the cross-check lives in the test suite), while
staying readable.
"""

from __future__ import annotations

import struct
from collections import Counter

from repro.baselines.huffman import (
    BitReader,
    BitWriter,
    HuffmanCode,
    _reverse_bits,
    build_huffman_code,
    code_from_lengths,
)
from repro.baselines.lz77 import Token, lz77_compress, lz77_decompress

MAGIC = b"RDFL"
END_OF_BLOCK = 256

# Length codes: (base length, extra bits), DEFLATE table 257..285.
_LENGTH_CODES: list[tuple[int, int]] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
]

# Distance codes: (base distance, extra bits), DEFLATE table 0..29.
_DISTANCE_CODES: list[tuple[int, int]] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1),
    (9, 2), (13, 2),
    (17, 3), (25, 3),
    (33, 4), (49, 4),
    (65, 5), (97, 5),
    (129, 6), (193, 6),
    (257, 7), (385, 7),
    (513, 8), (769, 8),
    (1025, 9), (1537, 9),
    (2049, 10), (3073, 10),
    (4097, 11), (6145, 11),
    (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
]


def _length_symbol(length: int) -> tuple[int, int, int]:
    """(symbol, extra bits, extra value) for a match length."""
    for index in range(len(_LENGTH_CODES) - 1, -1, -1):
        base, extra = _LENGTH_CODES[index]
        if length >= base:
            return 257 + index, extra, length - base
    raise ValueError(f"match length too small: {length}")


def _distance_symbol(distance: int) -> tuple[int, int, int]:
    """(symbol, extra bits, extra value) for a match distance."""
    for index in range(len(_DISTANCE_CODES) - 1, -1, -1):
        base, extra = _DISTANCE_CODES[index]
        if distance >= base:
            return index, extra, distance - base
    raise ValueError(f"match distance too small: {distance}")


def _serialize_lengths(lengths: dict[int, int], alphabet_size: int) -> bytes:
    """4-bit-packed code-length table over the whole alphabet."""
    packed = bytearray()
    for symbol in range(0, alphabet_size, 2):
        low = lengths.get(symbol, 0)
        high = lengths.get(symbol + 1, 0)
        packed.append(low | (high << 4))
    return bytes(packed)


def _deserialize_lengths(data: bytes, alphabet_size: int) -> dict[int, int]:
    lengths: dict[int, int] = {}
    for symbol in range(alphabet_size):
        byte = data[symbol // 2]
        value = byte & 0x0F if symbol % 2 == 0 else byte >> 4
        if value:
            lengths[symbol] = value
    return lengths


def deflate_compress(data: bytes) -> bytes:
    """Compress ``data``; returns a self-contained container."""
    tokens = lz77_compress(data)

    literal_freq: Counter[int] = Counter()
    distance_freq: Counter[int] = Counter()
    for token in tokens:
        if token.is_literal:
            literal_freq[token.literal] += 1
        else:
            symbol, _, _ = _length_symbol(token.length)
            literal_freq[symbol] += 1
            dsymbol, _, _ = _distance_symbol(token.distance)
            distance_freq[dsymbol] += 1
    literal_freq[END_OF_BLOCK] += 1
    if not distance_freq:
        distance_freq[0] = 1  # decoder always expects a distance table

    literal_code = build_huffman_code(literal_freq, limit=15)
    distance_code = build_huffman_code(distance_freq, limit=15)

    writer = BitWriter()
    for token in tokens:
        if token.is_literal:
            literal_code.encode_symbol(writer, token.literal)
            continue
        symbol, extra_bits, extra_value = _length_symbol(token.length)
        literal_code.encode_symbol(writer, symbol)
        if extra_bits:
            writer.write_bits(extra_value, extra_bits)
        dsymbol, dextra_bits, dextra_value = _distance_symbol(token.distance)
        distance_code.encode_symbol(writer, dsymbol)
        if dextra_bits:
            writer.write_bits(dextra_value, dextra_bits)
    literal_code.encode_symbol(writer, END_OF_BLOCK)
    payload = writer.getvalue()

    literal_table = _serialize_lengths(literal_code.lengths, 286)
    distance_table = _serialize_lengths(distance_code.lengths, 30)
    header = struct.pack(">4sI", MAGIC, len(data))
    return header + literal_table + distance_table + payload


def deflate_decompress(container: bytes) -> bytes:
    """Invert :func:`deflate_compress`."""
    if len(container) < 8 or container[:4] != MAGIC:
        raise ValueError("not a deflate-like container")
    (original_size,) = struct.unpack(">I", container[4:8])
    offset = 8
    literal_table_size = (286 + 1) // 2
    distance_table_size = (30 + 1) // 2
    literal_lengths = _deserialize_lengths(
        container[offset : offset + literal_table_size], 286
    )
    offset += literal_table_size
    distance_lengths = _deserialize_lengths(
        container[offset : offset + distance_table_size], 30
    )
    offset += distance_table_size

    literal_code = code_from_lengths(literal_lengths)
    distance_code = code_from_lengths(distance_lengths)
    literal_decoder = _decoder_table(literal_code)
    distance_decoder = _decoder_table(distance_code)
    literal_max = max(literal_lengths.values(), default=0)
    distance_max = max(distance_lengths.values(), default=0)

    reader = BitReader(container[offset:])
    tokens: list[Token] = []
    while True:
        symbol = _read_symbol(reader, literal_decoder, literal_max)
        if symbol == END_OF_BLOCK:
            break
        if symbol < 256:
            tokens.append(Token.make_literal(symbol))
            continue
        base, extra = _LENGTH_CODES[symbol - 257]
        length = base + (reader.read_bits(extra) if extra else 0)
        dsymbol = _read_symbol(reader, distance_decoder, distance_max)
        dbase, dextra = _DISTANCE_CODES[dsymbol]
        distance = dbase + (reader.read_bits(dextra) if dextra else 0)
        tokens.append(Token.make_match(length, distance))

    data = lz77_decompress(tokens)
    if len(data) != original_size:
        raise ValueError(
            f"size mismatch after decompression: {len(data)} != {original_size}"
        )
    return data


def _decoder_table(code: HuffmanCode) -> dict[tuple[int, int], int]:
    table: dict[tuple[int, int], int] = {}
    for symbol, length in code.lengths.items():
        canonical = _reverse_bits(code.codes[symbol], length)
        table[(length, canonical)] = symbol
    return table


def _read_symbol(
    reader: BitReader, table: dict[tuple[int, int], int], max_length: int
) -> int:
    accumulated = 0
    length = 0
    while True:
        accumulated = (accumulated << 1) | reader.read_bit()
        length += 1
        if length > max_length:
            raise ValueError("invalid bit stream: no code matches")
        symbol = table.get((length, accumulated))
        if symbol is not None:
            return symbol
