"""Modified Van Jacobson (RFC 1144) header compression.

Van Jacobson's method exploits that "in TCP connections, the content of
many TCP/IP header fields of consecutive packets of a flow can be usually
predicted": per connection, only the *deltas* of the changing fields are
transmitted.

Section 5 adapts it to trace storage:

* a 2-byte timestamp is added to each encoded header;
* the connection identifier grows from 1 to **3 bytes** (a high-speed
  link carries far more simultaneous flows than a serial line);
* the TCP checksum is dropped;
* "minimal encoded headers are of 6 bytes" (CID 3 + timestamp 2 + change
  mask 1).

This codec is a working implementation of that scheme: the first packet
of a connection is stored as a full header plus CID, later packets as
change-masked deltas.  Decompression reconstructs the exact header fields
(the 2-byte timestamp makes *timing* quantized/wrapping — the paper
accepts that; we unwrap monotonically at decode).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.flowkey import FiveTuple
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace

MAGIC = b"RVJ1"

# Change-mask bits (1 byte).
_C_SEQ = 0x01
_C_ACK = 0x02
_C_WINDOW = 0x04
_C_IPID = 0x08
_C_LENGTH = 0x10
_C_FLAGS = 0x20

TIMESTAMP_UNITS_PER_SECOND = 1000  # 1 ms resolution, 16-bit wrapping
MIN_ENCODED_HEADER = 6  # CID(3) + timestamp(2) + mask(1)

_FULL_HEADER = struct.Struct(">IIHHBBIIHHHB")


@dataclass(frozen=True)
class VJConfig:
    """Codec parameters (the paper's modified values)."""

    cid_bytes: int = 3
    timestamp_bytes: int = 2

    def __post_init__(self) -> None:
        if self.cid_bytes != 3 or self.timestamp_bytes != 2:
            raise ValueError(
                "only the paper's modified layout (3-byte CID, 2-byte "
                "timestamp) is implemented"
            )


@dataclass
class _ConnectionState:
    """Last-seen header fields of one direction of a connection.

    TTL is carried in the full header only and assumed constant per
    direction (true for any fixed route, and what RFC 1144 assumes too).
    """

    seq: int
    ack: int
    window: int
    ip_id: int
    payload_len: int
    flags: int
    ttl: int = 64


def _signed_delta(current: int, previous: int, modulo: int) -> int:
    """Wrapped delta in ``(-modulo/2, modulo/2]``."""
    delta = (current - previous) % modulo
    if delta > modulo // 2:
        delta -= modulo
    return delta


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def _write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError("varint cannot encode negatives; zigzag first")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


class VanJacobsonCodec:
    """Stateful VJ-style compressor/decompressor for header traces."""

    def __init__(self, config: VJConfig | None = None) -> None:
        self.config = config or VJConfig()

    # -- compression -------------------------------------------------------

    def compress(self, trace: Trace) -> bytes:
        """Encode a trace; returns the container bytes."""
        out = bytearray()
        out += MAGIC
        out += struct.pack(">I", len(trace.packets))
        base_time = trace.start_time()
        out += struct.pack(">d", base_time)

        connections: dict[FiveTuple, int] = {}
        states: dict[int, _ConnectionState] = {}
        for packet in trace.packets:
            self._encode_packet(out, packet, base_time, connections, states)
        return bytes(out)

    def _encode_packet(
        self,
        out: bytearray,
        packet: PacketRecord,
        base_time: float,
        connections: dict[FiveTuple, int],
        states: dict[int, _ConnectionState],
    ) -> None:
        key = packet.five_tuple()
        timestamp_units = int(
            round((packet.timestamp - base_time) * TIMESTAMP_UNITS_PER_SECOND)
        ) & 0xFFFF

        cid = connections.get(key)
        if cid is None:
            cid = len(connections)
            if cid > 0xFFFFFF:
                raise ValueError("too many connections for a 3-byte CID")
            connections[key] = cid
            # Full header: marker CID with high bit set in a leading type
            # byte, then the complete field set.
            out.append(0x01)  # record type: full header
            out += cid.to_bytes(3, "big")
            out += struct.pack(">H", timestamp_units)
            out += _FULL_HEADER.pack(
                packet.src_ip,
                packet.dst_ip,
                packet.src_port,
                packet.dst_port,
                packet.protocol,
                packet.flags,
                packet.seq,
                packet.ack,
                packet.window,
                packet.ip_id,
                packet.payload_len,
                packet.ttl,
            )
            states[cid] = _ConnectionState(
                packet.seq,
                packet.ack,
                packet.window,
                packet.ip_id,
                packet.payload_len,
                packet.flags,
                packet.ttl,
            )
            return

        state = states[cid]
        mask = 0
        deltas = bytearray()
        for bit, current, previous, modulo in (
            (_C_SEQ, packet.seq, state.seq, 1 << 32),
            (_C_ACK, packet.ack, state.ack, 1 << 32),
            (_C_WINDOW, packet.window, state.window, 1 << 16),
            (_C_IPID, packet.ip_id, state.ip_id, 1 << 16),
            (_C_LENGTH, packet.payload_len, state.payload_len, 1 << 16),
        ):
            if current != previous:
                mask |= bit
                _write_varint(deltas, _zigzag(_signed_delta(current, previous, modulo)))
        if packet.flags != state.flags:
            mask |= _C_FLAGS
            deltas.append(packet.flags)

        out.append(0x02)  # record type: delta header
        out += cid.to_bytes(3, "big")
        out += struct.pack(">H", timestamp_units)
        out.append(mask)
        out += deltas

        state.seq = packet.seq
        state.ack = packet.ack
        state.window = packet.window
        state.ip_id = packet.ip_id
        state.payload_len = packet.payload_len
        state.flags = packet.flags

    # -- decompression -------------------------------------------------------

    def decompress(self, data: bytes) -> Trace:
        """Invert :meth:`compress` (headers exact, timing at 1 ms/16-bit)."""
        if data[:4] != MAGIC:
            raise ValueError("not a VJ container")
        (count,) = struct.unpack(">I", data[4:8])
        (base_time,) = struct.unpack(">d", data[8:16])
        offset = 16

        keys: dict[int, FiveTuple] = {}
        states: dict[int, _ConnectionState] = {}
        last_units: dict[int, int] = {}
        epoch: dict[int, int] = {}
        packets: list[PacketRecord] = []

        for _ in range(count):
            record_type = data[offset]
            offset += 1
            cid = int.from_bytes(data[offset : offset + 3], "big")
            offset += 3
            (timestamp_units,) = struct.unpack(">H", data[offset : offset + 2])
            offset += 2

            if record_type == 0x01:
                fields = _FULL_HEADER.unpack(
                    data[offset : offset + _FULL_HEADER.size]
                )
                offset += _FULL_HEADER.size
                (
                    src_ip, dst_ip, src_port, dst_port, protocol, flags,
                    seq, ack, window, ip_id, payload_len, ttl,
                ) = fields
                keys[cid] = FiveTuple(src_ip, dst_ip, protocol, src_port, dst_port)
                states[cid] = _ConnectionState(
                    seq, ack, window, ip_id, payload_len, flags, ttl
                )
                epoch[cid] = 0
                last_units[cid] = timestamp_units
            elif record_type == 0x02:
                state = states[cid]
                mask = data[offset]
                offset += 1
                for bit, attribute, modulo in (
                    (_C_SEQ, "seq", 1 << 32),
                    (_C_ACK, "ack", 1 << 32),
                    (_C_WINDOW, "window", 1 << 16),
                    (_C_IPID, "ip_id", 1 << 16),
                    (_C_LENGTH, "payload_len", 1 << 16),
                ):
                    if mask & bit:
                        raw, offset = _read_varint(data, offset)
                        delta = _unzigzag(raw)
                        setattr(
                            state,
                            attribute,
                            (getattr(state, attribute) + delta) % modulo,
                        )
                if mask & _C_FLAGS:
                    state.flags = data[offset]
                    offset += 1
                if timestamp_units < last_units[cid]:
                    epoch[cid] += 1 << 16
                last_units[cid] = timestamp_units
            else:
                raise ValueError(f"unknown record type: {record_type}")

            state = states[cid]
            key = keys[cid]
            absolute_units = epoch[cid] + timestamp_units
            packets.append(
                PacketRecord(
                    timestamp=base_time
                    + absolute_units / TIMESTAMP_UNITS_PER_SECOND,
                    src_ip=key.src_ip,
                    dst_ip=key.dst_ip,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                    protocol=key.protocol,
                    flags=state.flags,
                    payload_len=state.payload_len,
                    seq=state.seq,
                    ack=state.ack,
                    ip_id=state.ip_id,
                    window=state.window,
                    ttl=state.ttl,
                )
            )
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name="vj-decompressed")

    # -- accounting -------------------------------------------------------

    def ratio(self, trace: Trace) -> float:
        """compressed/original on the TSH byte form."""
        original = trace.stored_size_bytes()
        if original == 0:
            return 0.0
        return len(self.compress(trace)) / original
