"""repro — reproduction of the ISPASS 2005 flow-clustering trace compressor.

Public API highlights
---------------------

* :func:`repro.open` — the one way in: open any supported input (TSH,
  pcap, ``.fctc`` container, ``.fctca`` archive) as a
  :class:`~repro.api.store.TraceStore` session with a uniform surface
  (``compress`` / ``packets`` / ``flows`` / ``query`` / ``append`` /
  ``export`` / ``info``).  See :mod:`repro.api` and ``docs/API.md``.
* :mod:`repro.core` — the paper's compressor/decompressor engine.
* :mod:`repro.synth` — synthetic Web traffic (RedIRIS-like substitute).
* :mod:`repro.baselines` — GZIP/deflate, Van Jacobson, Peuhkuri codecs
  and the analytic ratio models of section 5.
* :mod:`repro.routing` / :mod:`repro.memsim` — the Radix-Tree benchmark
  applications and the memory/cache instrumentation of section 6.
* :mod:`repro.experiments` — one module per paper figure/table.

This module is PEP 562-lazy: ``import repro`` loads no subsystem (not
even :class:`Trace`); the first attribute access does.  ``import
repro`` must stay cheap enough for CLI startup — a regression test pins
that no heavy module (``multiprocessing``, ``lzma``, ...) is pulled in
eagerly.
"""

from __future__ import annotations

import importlib
import logging

__version__ = "1.1.0"

# Library-standard logging posture: the package logger stays silent
# unless the application (or the CLI's -v/-q flags) attaches a handler.
logging.getLogger(__name__).addHandler(logging.NullHandler())

# name → (module, attribute) resolved on first access.
_LAZY_EXPORTS = {
    "open": ("repro.api.store", "open_store"),
    "Options": ("repro.api.options", "Options"),
    "PacketRecord": ("repro.net.packet", "PacketRecord"),
    "Trace": ("repro.trace.trace", "Trace"),
}

__all__ = ["__version__", "api", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        return _submodule_or_raise(__name__, name)
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def _submodule_or_raise(package: str, name: str):
    """Resolve ``package.name`` as a submodule, as eager imports once did.

    Pre-1.1 the package imported its submodules eagerly, so
    ``import repro; repro.net`` worked without a dedicated import.  The
    lazy layout keeps that contract by importing the submodule on first
    attribute access; a name that is neither raises AttributeError.
    """
    if not name.startswith("_"):
        try:
            return importlib.import_module(f"{package}.{name}")
        except ModuleNotFoundError as exc:
            # Only swallow "no such submodule"; a ModuleNotFoundError
            # raised *inside* the submodule's own imports is a real
            # failure and must surface, not masquerade as a bad name.
            if exc.name != f"{package}.{name}":
                raise
    raise AttributeError(f"module {package!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted({*globals(), *_LAZY_EXPORTS, "api"})
