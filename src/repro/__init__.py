"""repro — reproduction of the ISPASS 2005 flow-clustering trace compressor.

Public API highlights
---------------------

* :func:`repro.core.compress_trace` / :func:`repro.core.decompress_trace`
  — the paper's compressor and decompressor.
* :func:`repro.core.roundtrip` — one-call compress + decompress + report.
* :mod:`repro.synth` — synthetic Web traffic (RedIRIS-like substitute).
* :mod:`repro.baselines` — GZIP/deflate, Van Jacobson, Peuhkuri codecs
  and the analytic ratio models of section 5.
* :mod:`repro.routing` / :mod:`repro.memsim` — the Radix-Tree benchmark
  applications and the memory/cache instrumentation of section 6.
* :mod:`repro.experiments` — one module per paper figure/table.
"""

__version__ = "1.0.0"

from repro.net.packet import PacketRecord
from repro.trace.trace import Trace

__all__ = ["PacketRecord", "Trace", "__version__"]
