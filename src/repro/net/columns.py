"""Columnar packet chunks — the vectorized twin of :class:`PacketRecord`.

The per-packet hot path (one ``PacketRecord`` object, one ``FiveTuple``,
one dict lookup per packet) caps throughput well below what the paper's
algorithm needs for live ingest.  :class:`PacketColumns` holds one
*chunk* of packets as thirteen fixed-dtype arrays — one per
``PacketRecord`` field — so parsing, flow-key hashing and
characterization can run over whole chunks at C speed.

Two storage backends, chosen once per process:

* **numpy** (when importable) — fields are ``ndarray`` views with the
  dtypes of the table in ``docs/ARCHITECTURE.md``; all derived columns
  vectorize.
* **array fallback** — fields are :mod:`array` arrays; derived columns
  fall back to list comprehensions.  Everything stays correct (the
  differential harness runs both), only slower.

Set ``REPRO_NO_NUMPY=1`` to force the fallback — the CI job covering
numpy-less deployments does exactly that.  Chunk *boundaries* never
depend on the backend: both decode the same byte blocks the chunked
reader yields.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.net.packet import PacketRecord

_np = None
_numpy_checked = False


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` (absent / ``REPRO_NO_NUMPY``).

    Resolved lazily on first call so importing this module stays cheap,
    then cached.  Every vectorized helper routes its backend choice
    through here, which is what lets the fallback suite force the
    ``array`` path process-wide with one environment variable.
    """
    global _np, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        if not os.environ.get("REPRO_NO_NUMPY"):
            try:
                import numpy
            except ImportError:
                numpy = None
            _np = numpy
    return _np


COLUMN_FIELDS = (
    "timestamps",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "flags",
    "payload_len",
    "seq",
    "ack",
    "ttl",
    "ip_id",
    "window",
)
"""Column order — ``timestamps`` plus the ``PacketRecord`` fields."""

# array.array typecodes of the fallback backend, one per column.  Sizes
# are chosen for range safety ('Q' for 32-bit values: 'I'/'L' widths are
# platform-defined), not for minimum footprint — numpy is the compact
# backend, the fallback is the correctness backend.
_FALLBACK_TYPECODES = (
    "d",  # timestamps
    "Q",  # src_ip
    "Q",  # dst_ip
    "H",  # src_port
    "H",  # dst_port
    "B",  # protocol
    "B",  # flags
    "i",  # payload_len
    "Q",  # seq
    "Q",  # ack
    "B",  # ttl
    "H",  # ip_id
    "H",  # window
)


def tolist(column) -> list:
    """A plain Python list of a column, whatever the backend."""
    if isinstance(column, list):
        return column
    return column.tolist()


@dataclass(slots=True)
class PacketColumns:
    """One chunk of packets in columnar form.

    Fields mirror :class:`~repro.net.packet.PacketRecord` one-to-one;
    every field is a sequence of the same length.  Construction from
    records, slicing and row selection preserve the active backend.
    """

    timestamps: Sequence[float]
    src_ip: Sequence[int]
    dst_ip: Sequence[int]
    src_port: Sequence[int]
    dst_port: Sequence[int]
    protocol: Sequence[int]
    flags: Sequence[int]
    payload_len: Sequence[int]
    seq: Sequence[int]
    ack: Sequence[int]
    ttl: Sequence[int]
    ip_id: Sequence[int]
    window: Sequence[int]

    def __len__(self) -> int:
        return len(self.timestamps)

    def columns(self) -> tuple:
        """The thirteen column sequences, in :data:`COLUMN_FIELDS` order."""
        return tuple(getattr(self, name) for name in COLUMN_FIELDS)

    @property
    def backend(self) -> str:
        """``"numpy"`` or ``"array"`` — which storage backend holds rows."""
        np = numpy_or_none()
        if np is not None and isinstance(self.timestamps, np.ndarray):
            return "numpy"
        return "array"

    def slice(self, start: int, stop: int) -> "PacketColumns":
        """Rows ``[start:stop)`` as a new chunk (numpy: zero-copy views)."""
        return PacketColumns(*(column[start:stop] for column in self.columns()))

    def select(self, indices: Sequence[int]) -> "PacketColumns":
        """The given rows, in the given order, as a new chunk."""
        np = numpy_or_none()
        if self.backend == "numpy":
            idx = np.asarray(indices, dtype=np.intp)
            return PacketColumns(*(column[idx] for column in self.columns()))
        return PacketColumns(
            *(
                array(code, (column[i] for i in indices))
                for code, column in zip(_FALLBACK_TYPECODES, self.columns())
            )
        )

    def to_records(self) -> list[PacketRecord]:
        """Materialize the chunk as one ``PacketRecord`` per row."""
        return [
            PacketRecord(
                timestamp=ts,
                src_ip=sip,
                dst_ip=dip,
                src_port=sport,
                dst_port=dport,
                protocol=proto,
                flags=flg,
                payload_len=plen,
                seq=sq,
                ack=ak,
                ttl=tl,
                ip_id=ipid,
                window=win,
            )
            for ts, sip, dip, sport, dport, proto, flg, plen, sq, ak, tl, ipid, win in zip(
                *(tolist(column) for column in self.columns())
            )
        ]


# numpy dtypes per column, matching the fallback value ranges.
_NUMPY_DTYPES = {
    "timestamps": "f8",
    "src_ip": "u4",
    "dst_ip": "u4",
    "src_port": "u2",
    "dst_port": "u2",
    "protocol": "u1",
    "flags": "u1",
    "payload_len": "i4",
    "seq": "u4",
    "ack": "u4",
    "ttl": "u1",
    "ip_id": "u2",
    "window": "u2",
}


def columns_from_records(records: Iterable[PacketRecord]) -> PacketColumns:
    """Transpose a packet sequence into one columnar chunk."""
    records = list(records)
    raw = {
        "timestamps": [p.timestamp for p in records],
        "src_ip": [p.src_ip for p in records],
        "dst_ip": [p.dst_ip for p in records],
        "src_port": [p.src_port for p in records],
        "dst_port": [p.dst_port for p in records],
        "protocol": [p.protocol for p in records],
        "flags": [p.flags for p in records],
        "payload_len": [p.payload_len for p in records],
        "seq": [p.seq for p in records],
        "ack": [p.ack for p in records],
        "ttl": [p.ttl for p in records],
        "ip_id": [p.ip_id for p in records],
        "window": [p.window for p in records],
    }
    np = numpy_or_none()
    if np is not None:
        return PacketColumns(
            *(
                np.array(raw[name], dtype=_NUMPY_DTYPES[name])
                for name in COLUMN_FIELDS
            )
        )
    return PacketColumns(
        *(
            array(code, raw[name])
            for name, code in zip(COLUMN_FIELDS, _FALLBACK_TYPECODES)
        )
    )


def empty_columns() -> PacketColumns:
    """A zero-row chunk on the active backend."""
    return columns_from_records(())
