"""IPv4 address handling.

Addresses are carried as plain ``int`` everywhere in the library for speed;
this module provides parsing, formatting, classful queries (the paper's
decompressor assigns "a random class B or C address" to sources), and a
small prefix type used by the routing-table substrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

MAX_IPV4 = 0xFFFFFFFF

# Classful boundaries (first octet ranges).
_CLASS_A_FIRST = range(1, 128)
_CLASS_B_FIRST = range(128, 192)
_CLASS_C_FIRST = range(192, 224)

IPv4Address = int
"""Type alias: IPv4 addresses are 32-bit unsigned integers."""


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad string into a 32-bit integer.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad string.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"not a 32-bit address: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def address_class(value: int) -> str:
    """Return the classful class letter ('A'..'E') of an address."""
    first = (value >> 24) & 0xFF
    if first in _CLASS_A_FIRST or first == 0:
        return "A"
    if first in _CLASS_B_FIRST:
        return "B"
    if first in _CLASS_C_FIRST:
        return "C"
    if first < 240:
        return "D"
    return "E"


def random_class_b_or_c(rng: random.Random) -> int:
    """Draw a uniform random class B or class C address.

    The paper's decompression algorithm (section 4) assigns source
    addresses this way: "For source address, we assign randomly an IP
    class B or C address."
    """
    if rng.random() < 0.5:
        first = rng.randrange(128, 192)
    else:
        first = rng.randrange(192, 224)
    rest = rng.getrandbits(24)
    return (first << 24) | rest


@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """A routing prefix ``network/length``.

    The network address is stored already masked; construction normalizes
    (and rejects lengths outside 0..32).
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        masked = self.network & self.mask()
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    def mask(self) -> int:
        """The 32-bit netmask for this prefix length."""
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this prefix."""
        return (address & self.mask()) == self.network

    def bit(self, position: int) -> int:
        """The bit of the network address at ``position`` (0 = MSB)."""
        if not 0 <= position < 32:
            raise ValueError(f"bit position out of range: {position}")
        return (self.network >> (31 - position)) & 1

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len`` notation.

        >>> IPv4Prefix.parse("192.168.0.0/16").length
        16
        """
        if "/" not in text:
            raise ValueError(f"missing '/length' in prefix: {text!r}")
        net_text, len_text = text.rsplit("/", 1)
        return cls(parse_ipv4(net_text), int(len_text))

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def address_bit(address: int, position: int) -> int:
    """The bit of ``address`` at ``position`` where 0 is the MSB."""
    return (address >> (31 - position)) & 1
