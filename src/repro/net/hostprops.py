"""Deterministic per-host header properties.

Real traces carry per-host diversity that synthetic traces easily miss —
and that diversity is load-bearing for the GZIP baseline: a trace whose
TTL is always 64, window always 65535 and checksum always 0 deflates far
better than anything captured on a real link, which would invert the
paper's GZIP-vs-VJ ordering.

TTL and window are derived *deterministically from the IP address* so
that (a) a host looks like itself every time it appears, exactly like
reality, and (b) the decompressor can re-derive the same values for the
addresses it preserves.
"""

from __future__ import annotations

_FNV_PRIME = 0x01000193
_FNV_BASIS = 0x811C9A5

COMMON_WINDOWS = (5840, 8760, 16384, 17520, 32120, 64240, 65535)
"""Advertised windows seen in the wild (MSS multiples and OS defaults)."""

INITIAL_TTLS = (64, 128, 255)
"""Common initial TTL values by OS family."""


def _host_hash(address: int) -> int:
    """A stable 32-bit hash of an IPv4 address."""
    value = _FNV_BASIS
    for shift in (0, 8, 16, 24):
        value ^= (address >> shift) & 0xFF
        value = (value * _FNV_PRIME) & 0xFFFFFFFF
    return value

def plausible_ttl(address: int) -> int:
    """The TTL packets from this host show at the capture point.

    An OS-typical initial TTL minus a stable 1..24 hop distance.
    """
    digest = _host_hash(address)
    initial = INITIAL_TTLS[digest % len(INITIAL_TTLS)]
    hops = 1 + (digest >> 8) % 24
    return initial - hops


def plausible_window(address: int) -> int:
    """The advertised TCP window this host uses."""
    digest = _host_hash(address)
    return COMMON_WINDOWS[(digest >> 16) % len(COMMON_WINDOWS)]
