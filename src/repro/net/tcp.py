"""TCP flag constants and the paper's four-way flag classification.

Section 2 of the paper maps each packet's TCP flags onto an integer
``g1(p)``; the text restricts the study "for the most common" flag
arrangements: SYN, SYN+ACK, plain ACK (data or pure acknowledgment), and
the connection-closing FIN/RST family.
"""

from __future__ import annotations

import enum

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20

_FLAG_NAMES = (
    (TCP_FIN, "FIN"),
    (TCP_SYN, "SYN"),
    (TCP_RST, "RST"),
    (TCP_PSH, "PSH"),
    (TCP_ACK, "ACK"),
    (TCP_URG, "URG"),
)


class FlagClass(enum.IntEnum):
    """The paper's ``g1`` values: the TCP-flag class of a packet."""

    SYN = 0
    SYN_ACK = 1
    ACK = 2
    FIN_RST = 3


def classify_flags(flags: int) -> FlagClass:
    """Map a raw TCP flag byte onto the paper's four classes.

    The order of tests matters: SYN+ACK must be recognized before plain
    SYN or ACK, and FIN/RST close classification wins over a piggybacked
    ACK (a FIN+ACK is still a closing segment).
    """
    if flags & TCP_SYN:
        if flags & TCP_ACK:
            return FlagClass.SYN_ACK
        return FlagClass.SYN
    if flags & (TCP_FIN | TCP_RST):
        return FlagClass.FIN_RST
    return FlagClass.ACK


def flags_to_str(flags: int) -> str:
    """Human-readable rendering, e.g. ``'SYN|ACK'``; ``'-'`` for none."""
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "-"


def is_flow_terminator(flags: int) -> bool:
    """True for segments that end a flow in the online compressor.

    Section 3: "When a Fin or Rst TCP flag is found, the algorithm ...".
    """
    return bool(flags & (TCP_FIN | TCP_RST))
