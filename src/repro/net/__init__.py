"""Network primitives shared by every other subsystem.

This subpackage models exactly what the paper's traces contain: IPv4
addresses, TCP header fields, and the 40-byte TCP/IP header record plus
timing information that the compressor consumes.
"""

from repro.net.ip import (
    IPv4Address,
    IPv4Prefix,
    address_class,
    format_ipv4,
    parse_ipv4,
    random_class_b_or_c,
)
from repro.net.tcp import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TCP_URG,
    FlagClass,
    classify_flags,
    flags_to_str,
)
from repro.net.packet import HEADER_BYTES, PacketRecord
from repro.net.flowkey import FiveTuple, flow_hash

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "address_class",
    "format_ipv4",
    "parse_ipv4",
    "random_class_b_or_c",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "TCP_URG",
    "FlagClass",
    "classify_flags",
    "flags_to_str",
    "HEADER_BYTES",
    "PacketRecord",
    "FiveTuple",
    "flow_hash",
]
