"""Flow keys.

The paper defines a packet flow as "a sequence of packets in which each
packet has the same value for a 5-tuple of source and destination IP
address, protocol number, and source and destination port number".

Two key forms are used:

* :class:`FiveTuple` — the direction-sensitive key straight from a packet;
* :meth:`FiveTuple.canonical` — a direction-insensitive key so that the
  two halves of a TCP conversation fall into the same bidirectional flow
  (the compressor models request/response dependence inside one flow).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ip import format_ipv4

_HASH_PRIME = 0x100000001B3
_HASH_BASIS = 0xCBF29CE484222325
_HASH_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """The classic (src ip, dst ip, protocol, src port, dst port) key."""

    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int

    def canonical(self) -> "FiveTuple":
        """Direction-insensitive form: lower endpoint ordered first.

        Endpoints are compared as (ip, port) pairs so that both directions
        of one conversation canonicalize identically.
        """
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        if forward <= backward:
            return self
        return self.reversed()

    def reversed(self) -> "FiveTuple":
        """The same conversation seen from the opposite direction."""
        return FiveTuple(
            self.dst_ip, self.src_ip, self.protocol, self.dst_port, self.src_port
        )

    def is_forward_of(self, other: "FiveTuple") -> bool:
        """True when ``self`` equals ``other`` exactly (same direction)."""
        return self == other

    def describe(self) -> str:
        """Human-readable ``ip:port > ip:port proto`` rendering."""
        return (
            f"{format_ipv4(self.src_ip)}:{self.src_port} > "
            f"{format_ipv4(self.dst_ip)}:{self.dst_port} proto={self.protocol}"
        )


def flow_hash(key: FiveTuple) -> int:
    """A deterministic 64-bit FNV-1a hash of a 5-tuple.

    Section 3 stores in each linked-list node "a key (a hashing of source
    and destination IP addresses, source and destination port numbers, and
    protocol number)".  Python's builtin ``hash`` is salted per process, so
    a stable hash is provided for reproducibility and for the on-disk
    codec.
    """
    value = _HASH_BASIS
    for word in (
        key.src_ip,
        key.dst_ip,
        key.protocol,
        key.src_port,
        key.dst_port,
    ):
        for shift in (0, 8, 16, 24):
            value ^= (word >> shift) & 0xFF
            value = (value * _HASH_PRIME) & _HASH_MASK
    return value


# -- columnar (per-chunk) forms --------------------------------------------
#
# The columnar engine never builds FiveTuple objects on its hot path; a
# canonical flow is identified by a pair of integers packing the same
# information:
#
#   key_lo = lower endpoint (ip << 16 | port) << 8 | protocol   (56 bits)
#   key_hi = higher endpoint (ip << 16 | port)                  (48 bits)
#
# "lower" compares (ip, port) pairs exactly as FiveTuple.canonical does —
# lexicographic tuple order equals numeric order of ip << 16 | port since
# ports are 16-bit.  The pair is injective over canonical five-tuples, so
# dict identity on (key_lo, key_hi) matches dict identity on the
# canonical FiveTuple.


def canonical_key_columns(columns) -> tuple[list[int], list[int], list[bool]]:
    """Per-row canonical key pair and direction of a chunk.

    Returns ``(key_lo, key_hi, forward)`` lists; ``forward[i]`` is True
    when row ``i`` travels from the lower endpoint — two rows of one
    conversation share the key pair and differ in ``forward`` exactly
    when their :class:`FiveTuple` forms differ.
    """
    from repro.net.columns import numpy_or_none, tolist

    np = numpy_or_none()
    if np is not None:
        src_ip = np.asarray(columns.src_ip, dtype=np.uint64)
        dst_ip = np.asarray(columns.dst_ip, dtype=np.uint64)
        src_port = np.asarray(columns.src_port, dtype=np.uint64)
        dst_port = np.asarray(columns.dst_port, dtype=np.uint64)
        protocol = np.asarray(columns.protocol, dtype=np.uint64)
        forward_end = (src_ip << np.uint64(16)) | src_port
        backward_end = (dst_ip << np.uint64(16)) | dst_port
        forward = forward_end <= backward_end
        low = np.where(forward, forward_end, backward_end)
        high = np.where(forward, backward_end, forward_end)
        key_lo = (low << np.uint64(8)) | protocol
        return key_lo.tolist(), high.tolist(), forward.tolist()
    key_lo: list[int] = []
    key_hi: list[int] = []
    forward_flags: list[bool] = []
    for sip, dip, sport, dport, proto in zip(
        tolist(columns.src_ip),
        tolist(columns.dst_ip),
        tolist(columns.src_port),
        tolist(columns.dst_port),
        tolist(columns.protocol),
    ):
        forward_end = (sip << 16) | sport
        backward_end = (dip << 16) | dport
        is_forward = forward_end <= backward_end
        low, high = (
            (forward_end, backward_end)
            if is_forward
            else (backward_end, forward_end)
        )
        key_lo.append((low << 8) | proto)
        key_hi.append(high)
        forward_flags.append(is_forward)
    return key_lo, key_hi, forward_flags


def flow_hash_columns(columns) -> list[int]:
    """:func:`flow_hash` of every row's direction-sensitive 5-tuple.

    Vectorized over the chunk (u64 wraparound multiplies are exactly the
    masked Python arithmetic); the fallback delegates to the scalar hash
    row by row.  ``flow_hash_columns(cols)[i] ==
    flow_hash(records[i].five_tuple())`` always.
    """
    from repro.net.columns import numpy_or_none, tolist

    np = numpy_or_none()
    if np is None:
        return [
            flow_hash(FiveTuple(sip, dip, proto, sport, dport))
            for sip, dip, proto, sport, dport in zip(
                tolist(columns.src_ip),
                tolist(columns.dst_ip),
                tolist(columns.protocol),
                tolist(columns.src_port),
                tolist(columns.dst_port),
            )
        ]
    value = np.full(len(columns), _HASH_BASIS, dtype=np.uint64)
    prime = np.uint64(_HASH_PRIME)
    byte_mask = np.uint64(0xFF)
    for word in (
        np.asarray(columns.src_ip, dtype=np.uint64),
        np.asarray(columns.dst_ip, dtype=np.uint64),
        np.asarray(columns.protocol, dtype=np.uint64),
        np.asarray(columns.src_port, dtype=np.uint64),
        np.asarray(columns.dst_port, dtype=np.uint64),
    ):
        for shift in (0, 8, 16, 24):
            value ^= (word >> np.uint64(shift)) & byte_mask
            value *= prime  # u64 wraparound == the scalar's & _HASH_MASK
    return value.tolist()


_CRC_POLY = 0xEDB88320
_crc_table_cache: dict[str, object] = {}


def _crc32_table():
    """The standard CRC-32 byte table (zlib polynomial), cached per backend."""
    from repro.net.columns import numpy_or_none

    np = numpy_or_none()
    backend = "numpy" if np is not None else "list"
    table = _crc_table_cache.get(backend)
    if table is None:
        values = []
        for index in range(256):
            crc = index
            for _ in range(8):
                crc = (crc >> 1) ^ _CRC_POLY if crc & 1 else crc >> 1
            values.append(crc)
        table = np.array(values, dtype=np.uint32) if np is not None else values
        _crc_table_cache[backend] = table
    return table


def flow_shard_columns(columns, workers: int) -> list[int]:
    """Per-row shard assignment of a chunk, matching ``record_shard``.

    The parallel compressor shards raw TSH records with
    :func:`repro.core.streaming.record_shard` — a CRC-32 over the
    canonically ordered endpoint bytes plus the protocol byte.  This is
    the same assignment computed from columns (table-driven CRC, 13
    vectorized rounds), so a columnar worker selects exactly the rows a
    record-filtering worker would decode.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    from repro.net.columns import numpy_or_none

    key_lo, key_hi, _forward = canonical_key_columns(columns)
    np = numpy_or_none()
    if np is None:
        from zlib import crc32

        shards = []
        for lo, hi in zip(key_lo, key_hi):
            lo_bytes = lo.to_bytes(7, "big")  # ip(4) port(2) proto(1)
            hi_bytes = hi.to_bytes(6, "big")  # ip(4) port(2)
            shards.append(
                crc32(lo_bytes[:6] + hi_bytes + lo_bytes[6:]) % workers
            )
        return shards
    table = _crc32_table()
    lo = np.asarray(key_lo, dtype=np.uint64)
    hi = np.asarray(key_hi, dtype=np.uint64)
    crc = np.full(len(key_lo), 0xFFFFFFFF, dtype=np.uint32)
    byte_mask = np.uint64(0xFF)
    eight = np.uint32(8)
    low_byte = np.uint32(0xFF)
    # Byte order mirrors record_shard's key: lower endpoint (ip, port),
    # higher endpoint (ip, port), then the protocol byte.
    shifts = [
        (lo, 48),
        (lo, 40),
        (lo, 32),
        (lo, 24),  # lower ip
        (lo, 16),
        (lo, 8),  # lower port
        (hi, 40),
        (hi, 32),
        (hi, 24),
        (hi, 16),  # higher ip
        (hi, 8),
        (hi, 0),  # higher port
        (lo, 0),  # protocol
    ]
    for word, shift in shifts:
        data = ((word >> np.uint64(shift)) & byte_mask).astype(np.uint32)
        crc = (crc >> eight) ^ table[(crc ^ data) & low_byte]
    crc ^= np.uint32(0xFFFFFFFF)
    return (crc % np.uint32(workers)).tolist()
