"""Flow keys.

The paper defines a packet flow as "a sequence of packets in which each
packet has the same value for a 5-tuple of source and destination IP
address, protocol number, and source and destination port number".

Two key forms are used:

* :class:`FiveTuple` — the direction-sensitive key straight from a packet;
* :meth:`FiveTuple.canonical` — a direction-insensitive key so that the
  two halves of a TCP conversation fall into the same bidirectional flow
  (the compressor models request/response dependence inside one flow).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ip import format_ipv4

_HASH_PRIME = 0x100000001B3
_HASH_BASIS = 0xCBF29CE484222325
_HASH_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """The classic (src ip, dst ip, protocol, src port, dst port) key."""

    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int

    def canonical(self) -> "FiveTuple":
        """Direction-insensitive form: lower endpoint ordered first.

        Endpoints are compared as (ip, port) pairs so that both directions
        of one conversation canonicalize identically.
        """
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        if forward <= backward:
            return self
        return self.reversed()

    def reversed(self) -> "FiveTuple":
        """The same conversation seen from the opposite direction."""
        return FiveTuple(
            self.dst_ip, self.src_ip, self.protocol, self.dst_port, self.src_port
        )

    def is_forward_of(self, other: "FiveTuple") -> bool:
        """True when ``self`` equals ``other`` exactly (same direction)."""
        return self == other

    def describe(self) -> str:
        """Human-readable ``ip:port > ip:port proto`` rendering."""
        return (
            f"{format_ipv4(self.src_ip)}:{self.src_port} > "
            f"{format_ipv4(self.dst_ip)}:{self.dst_port} proto={self.protocol}"
        )


def flow_hash(key: FiveTuple) -> int:
    """A deterministic 64-bit FNV-1a hash of a 5-tuple.

    Section 3 stores in each linked-list node "a key (a hashing of source
    and destination IP addresses, source and destination port numbers, and
    protocol number)".  Python's builtin ``hash`` is salted per process, so
    a stable hash is provided for reproducibility and for the on-disk
    codec.
    """
    value = _HASH_BASIS
    for word in (
        key.src_ip,
        key.dst_ip,
        key.protocol,
        key.src_port,
        key.dst_port,
    ):
        for shift in (0, 8, 16, 24):
            value ^= (word >> shift) & 0xFF
            value = (value * _HASH_PRIME) & _HASH_MASK
    return value
