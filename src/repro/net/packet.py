"""The packet record: a 40-byte TCP/IP header plus timing information.

The paper (section 1) assumes "the more common case of storing the TCP/IP
packet headers plus timing information only", with a mean packet length of
400 bytes but a stored header of 40 bytes (20 B IP + 20 B TCP).
``PacketRecord`` is the in-memory form of one such stored header.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.flowkey import FiveTuple
from repro.net.tcp import classify_flags, flags_to_str
from repro.net.ip import format_ipv4

HEADER_BYTES = 40
"""Stored bytes per packet header (20 B IPv4 + 20 B TCP, no options)."""

PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(slots=True)
class PacketRecord:
    """One captured packet header.

    Attributes
    ----------
    timestamp:
        Capture time in seconds (float, microsecond resolution is enough
        for TSH round-trips).
    src_ip, dst_ip:
        32-bit integer IPv4 addresses.
    src_port, dst_port:
        TCP/UDP port numbers.
    protocol:
        IP protocol number (6 for TCP).
    flags:
        Raw TCP flag byte (FIN/SYN/RST/PSH/ACK/URG bits).
    payload_len:
        TCP payload size in bytes (IP total length minus 40 header bytes).
    seq, ack:
        TCP sequence / acknowledgment numbers (mod 2**32).
    ttl:
        IP time-to-live.
    ip_id:
        IP identification field.
    window:
        TCP advertised window.
    """

    timestamp: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = PROTO_TCP
    flags: int = 0
    payload_len: int = 0
    seq: int = 0
    ack: int = 0
    ttl: int = 64
    ip_id: int = 0
    window: int = 65535

    def five_tuple(self) -> FiveTuple:
        """The flow key of this packet (direction-sensitive)."""
        return FiveTuple(
            self.src_ip, self.dst_ip, self.protocol, self.src_port, self.dst_port
        )

    def total_length(self) -> int:
        """IP total length: stored header bytes plus payload bytes."""
        return HEADER_BYTES + self.payload_len

    def flag_class(self) -> int:
        """The paper's g1 class of this packet's TCP flags."""
        return int(classify_flags(self.flags))

    def reversed(self) -> "PacketRecord":
        """A copy with source and destination endpoints swapped."""
        return replace(
            self,
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def describe(self) -> str:
        """One-line human-readable rendering (debugging aid)."""
        return (
            f"{self.timestamp:.6f} "
            f"{format_ipv4(self.src_ip)}:{self.src_port} > "
            f"{format_ipv4(self.dst_ip)}:{self.dst_port} "
            f"[{flags_to_str(self.flags)}] len={self.payload_len}"
        )


def validate_packet(packet: PacketRecord) -> None:
    """Raise ``ValueError`` if a record is not encodable as a TSH header."""
    if packet.timestamp < 0:
        raise ValueError(f"negative timestamp: {packet.timestamp}")
    for label, value, limit in (
        ("src_ip", packet.src_ip, 0xFFFFFFFF),
        ("dst_ip", packet.dst_ip, 0xFFFFFFFF),
        ("src_port", packet.src_port, 0xFFFF),
        ("dst_port", packet.dst_port, 0xFFFF),
        ("protocol", packet.protocol, 0xFF),
        ("flags", packet.flags, 0xFF),
        ("ttl", packet.ttl, 0xFF),
        ("ip_id", packet.ip_id, 0xFFFF),
        ("window", packet.window, 0xFFFF),
        ("seq", packet.seq, 0xFFFFFFFF),
        ("ack", packet.ack, 0xFFFFFFFF),
    ):
        if not 0 <= value <= limit:
            raise ValueError(f"{label} out of range: {value}")
    if not 0 <= packet.payload_len <= 0xFFFF - HEADER_BYTES:
        raise ValueError(f"payload_len out of range: {packet.payload_len}")
