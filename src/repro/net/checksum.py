"""The Internet (RFC 1071) ones'-complement checksum.

TSH records embed a real IPv4 header; storing a correct header checksum
matters for the GZIP baseline (a constant zero checksum is free entropy
removal no real capture would offer) and lets the TSH decoder verify
integrity.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit ones'-complement sum of ``data``.

    Odd-length input is zero-padded, per the RFC.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ipv4_header_checksum(header: bytes) -> int:
    """Checksum of a 20-byte IPv4 header (checksum field zeroed by caller)."""
    if len(header) != 20:
        raise ValueError(f"IPv4 base header must be 20 bytes, got {len(header)}")
    return internet_checksum(header)
