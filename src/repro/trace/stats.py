"""Trace statistics: the flow-length distribution behind the paper.

Section 3 motivates the short/long split with three numbers measured on
the authors' traces: *"98 percent of the flows have less than 51 packets.
These flows comprise 75 percent of all Web packets transmitted on the link
and 80 percent of the bytes on average."*

This module computes those quantities plus the flow-length probability
mass function ``P_n`` that feeds the analytic compression-ratio models of
section 5 (equations 5–8).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.net.flowkey import FiveTuple
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace

DEFAULT_SHORT_FLOW_MAX = 50
"""Paper constant: short flows have 2..50 packets; long flows > 50."""


@dataclass(frozen=True)
class FlowLengthDistribution:
    """The probability ``P_n`` that a flow has exactly ``n`` packets."""

    counts: Mapping[int, int]

    def total_flows(self) -> int:
        """Number of flows observed."""
        return sum(self.counts.values())

    def total_packets(self) -> int:
        """Number of packets across all flows."""
        return sum(n * c for n, c in self.counts.items())

    def probability(self, n: int) -> float:
        """``P_n`` — fraction of flows with exactly ``n`` packets."""
        total = self.total_flows()
        if total == 0:
            return 0.0
        return self.counts.get(n, 0) / total

    def probabilities(self) -> dict[int, float]:
        """The full PMF as ``{n: P_n}`` (sums to 1 for non-empty data)."""
        total = self.total_flows()
        if total == 0:
            return {}
        return {n: c / total for n, c in sorted(self.counts.items())}

    def mean_length(self) -> float:
        """Average packets per flow."""
        total = self.total_flows()
        if total == 0:
            return 0.0
        return self.total_packets() / total

    def fraction_flows_at_most(self, n: int) -> float:
        """Fraction of flows with length <= ``n`` (the paper's 98%)."""
        total = self.total_flows()
        if total == 0:
            return 0.0
        return sum(c for length, c in self.counts.items() if length <= n) / total

    def fraction_packets_at_most(self, n: int) -> float:
        """Fraction of packets in flows of length <= ``n`` (the 75%)."""
        total = self.total_packets()
        if total == 0:
            return 0.0
        short = sum(length * c for length, c in self.counts.items() if length <= n)
        return short / total

    def percentile_length(self, fraction: float) -> int:
        """Smallest ``n`` such that at least ``fraction`` of flows are <= n."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        total = self.total_flows()
        if total == 0:
            return 0
        running = 0
        for length in sorted(self.counts):
            running += self.counts[length]
            if running / total >= fraction:
                return length
        return max(self.counts)

    @classmethod
    def from_lengths(cls, lengths: Iterable[int]) -> "FlowLengthDistribution":
        """Build from an iterable of per-flow packet counts."""
        return cls(Counter(lengths))


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics of one trace, flow-aware.

    ``short_flow_max`` is the short/long cutoff used for the short-side
    shares (paper default 50).
    """

    packet_count: int
    flow_count: int
    total_bytes: int
    duration_seconds: float
    length_distribution: FlowLengthDistribution
    short_flow_max: int
    short_flow_fraction: float
    short_packet_fraction: float
    short_byte_fraction: float

    def summary_lines(self) -> list[str]:
        """Human-readable summary (used by the CLI and experiments)."""
        return [
            f"packets               : {self.packet_count}",
            f"flows                 : {self.flow_count}",
            f"wire bytes            : {self.total_bytes}",
            f"duration              : {self.duration_seconds:.3f} s",
            f"mean flow length      : {self.length_distribution.mean_length():.2f} pkts",
            (
                f"flows <= {self.short_flow_max} pkts    : "
                f"{100.0 * self.short_flow_fraction:.1f}% "
                "(paper: 98%)"
            ),
            (
                f"packets in short flows: "
                f"{100.0 * self.short_packet_fraction:.1f}% "
                "(paper: 75%)"
            ),
            (
                f"bytes in short flows  : "
                f"{100.0 * self.short_byte_fraction:.1f}% "
                "(paper: 80%)"
            ),
        ]


def group_flow_lengths(
    packets: Iterable[PacketRecord],
) -> dict[FiveTuple, list[PacketRecord]]:
    """Group packets by canonical (bidirectional) 5-tuple.

    This is the lightweight grouping used for statistics; the full
    stateful assembler with FIN/RST and timeout handling lives in
    :mod:`repro.flows.assembler`.
    """
    flows: dict[FiveTuple, list[PacketRecord]] = defaultdict(list)
    for packet in packets:
        flows[packet.five_tuple().canonical()].append(packet)
    return dict(flows)


def compute_statistics(
    trace: Trace, short_flow_max: int = DEFAULT_SHORT_FLOW_MAX
) -> TraceStatistics:
    """Compute flow-aware statistics of a trace (section 3 numbers)."""
    flows = group_flow_lengths(trace.packets)
    lengths = [len(packets) for packets in flows.values()]
    distribution = FlowLengthDistribution.from_lengths(lengths)

    total_bytes = trace.wire_bytes()
    short_bytes = sum(
        sum(p.total_length() for p in packets)
        for packets in flows.values()
        if len(packets) <= short_flow_max
    )
    byte_fraction = short_bytes / total_bytes if total_bytes else 0.0

    return TraceStatistics(
        packet_count=len(trace),
        flow_count=len(flows),
        total_bytes=total_bytes,
        duration_seconds=trace.duration(),
        length_distribution=distribution,
        short_flow_max=short_flow_max,
        short_flow_fraction=distribution.fraction_flows_at_most(short_flow_max),
        short_packet_fraction=distribution.fraction_packets_at_most(short_flow_max),
        short_byte_fraction=byte_fraction,
    )
