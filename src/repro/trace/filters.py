"""Trace filters and slicers.

The paper restricts its study to Web traffic ("a subset of the original
RedIRIS trace, containing only Web flows") and plots Figure 1 against
elapsed time, which needs per-second prefixes of a trace.
"""

from __future__ import annotations

from repro.net.packet import PacketRecord, PROTO_TCP
from repro.trace.trace import Trace

WEB_PORTS = frozenset({80, 443, 8080})
"""Server ports treated as Web traffic."""


def is_web_packet(packet: PacketRecord, ports: frozenset[int] = WEB_PORTS) -> bool:
    """True when either endpoint is a Web server port over TCP."""
    if packet.protocol != PROTO_TCP:
        return False
    return packet.src_port in ports or packet.dst_port in ports


def select_web_traffic(trace: Trace, ports: frozenset[int] = WEB_PORTS) -> Trace:
    """The Web-only subset of a trace (the paper's 'Original trace')."""
    subset = trace.filter(lambda p: is_web_packet(p, ports))
    return subset.renamed(f"{trace.name}-web")


def select_time_window(trace: Trace, start: float, end: float) -> Trace:
    """Packets with ``start <= timestamp < end`` (absolute times)."""
    if end < start:
        raise ValueError(f"window end {end} before start {start}")
    subset = trace.filter(lambda p: start <= p.timestamp < end)
    return subset.renamed(f"{trace.name}[{start:.0f},{end:.0f})")


def select_elapsed(trace: Trace, elapsed_seconds: float) -> Trace:
    """The prefix of a trace covering its first ``elapsed_seconds``.

    Figure 1 samples file sizes at increasing elapsed times; this gives
    the trace prefix whose TSH size is the "Original TSH file" curve.
    """
    if elapsed_seconds < 0:
        raise ValueError("elapsed time cannot be negative")
    start = trace.start_time()
    cutoff = start + elapsed_seconds
    subset = trace.filter(lambda p: p.timestamp <= cutoff)
    return subset.renamed(f"{trace.name}@{elapsed_seconds:.0f}s")


def split_by_seconds(trace: Trace, bucket_seconds: float) -> list[Trace]:
    """Split a time-ordered trace into consecutive fixed-width slices."""
    if bucket_seconds <= 0:
        raise ValueError("bucket width must be positive")
    if not trace.packets:
        return []
    slices: list[Trace] = []
    start = trace.start_time()
    current: list[PacketRecord] = []
    boundary = start + bucket_seconds
    index = 0
    for packet in trace.packets:
        while packet.timestamp >= boundary:
            slices.append(Trace(current, name=f"{trace.name}#{index}"))
            current = []
            index += 1
            boundary += bucket_seconds
        current.append(packet)
    slices.append(Trace(current, name=f"{trace.name}#{index}"))
    return slices
