"""Incremental (sans-IO) frame decoders for capture byte streams.

Every reader in the library used to own its buffering: the chunked TSH
reader carried partial-record tails between ``read`` calls, the pcap
reader assumed a seekable stream it could ``read`` exactly-n bytes from.
A live tap has neither luxury — bytes arrive in whatever slices the
kernel hands a socket or a growing file, and the decoder must accept
them *all*, emit the packets that are complete, and hold the remainder.

This module is that buffering, factored out once and shared:

:class:`RecordChunker`
    Fixed-size record framing (TSH's 44-byte records): bytes in, blocks
    of whole records out, partial tail carried.  The chunked TSH file
    reader (:mod:`repro.trace.reader`) and the TSH stream decoder are
    both built on it.

:class:`LengthFramer`
    The socket transport framing of ``repro serve``: each frame is a
    4-byte big-endian payload length followed by the payload; a
    zero-length frame marks a clean end of stream.  Payloads are
    *transport* chunking only — consecutive payloads concatenate into
    one continuous TSH or pcap byte stream.

:class:`TshStreamDecoder` / :class:`PcapStreamDecoder`
    Format decoders: feed arbitrary byte slices, get fully decoded
    :class:`~repro.net.packet.PacketRecord` lists back.  The TSH
    decoder rides the vectorized block decoder
    (:func:`~repro.trace.tsh.decode_columns`) so a socket feed keeps
    the columnar hot path; the pcap decoder is the incremental core
    :func:`~repro.trace.pcaplite.read_pcap` now wraps.

All four are sans-IO: no sockets, no files, no event loop — any driver
(asyncio today, a selectors loop tomorrow) can pump them.
"""

from __future__ import annotations

import struct

from repro.net.packet import HEADER_BYTES, PacketRecord
from repro.trace.pcaplite import LINKTYPE_RAW, PCAP_MAGIC
from repro.trace.tsh import TSH_RECORD_BYTES, decode_columns

FRAME_HEADER = struct.Struct(">I")
"""Socket frame header: one big-endian u32 payload length."""

DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024
"""Reject frames above this payload size (a corrupt or hostile peer)."""

FORMAT_TSH = "tsh"
FORMAT_PCAP = "pcap"
STREAM_FORMATS = (FORMAT_TSH, FORMAT_PCAP)

_PCAP_GLOBAL = struct.Struct("<IHHiIII")
_PCAP_RECORD = struct.Struct("<IIII")
_PCAP_IP = struct.Struct(">BBHHHBBHII")
_PCAP_TCP = struct.Struct(">HHIIBBHHH")
_MICROSECOND = 1_000_000


class FrameDecodeError(ValueError):
    """A byte stream violates its declared framing or format."""


class RecordChunker:
    """Re-block an arbitrary byte feed into whole fixed-size records.

    ``feed`` returns the largest prefix of buffered bytes that is a
    whole number of records (possibly ``b""``); the sub-record tail is
    carried into the next call.  ``finish`` raises
    :class:`FrameDecodeError` if a partial record is left over — the
    shared truncation check of the file readers and the live decoders.
    """

    __slots__ = ("record_bytes", "label", "_pending")

    def __init__(self, record_bytes: int, *, label: str = "record") -> None:
        if record_bytes < 1:
            raise ValueError(f"record_bytes must be >= 1: {record_bytes}")
        self.record_bytes = record_bytes
        self.label = label
        self._pending = b""

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes not yet forming a whole record."""
        return len(self._pending)

    def feed(self, data: bytes) -> bytes:
        buffer = self._pending + data if self._pending else bytes(data)
        usable = len(buffer) - len(buffer) % self.record_bytes
        self._pending = buffer[usable:]
        return buffer[:usable]

    def finish(self) -> None:
        if self._pending:
            raise FrameDecodeError(
                f"truncated {self.label}: expected {self.record_bytes} "
                f"bytes, got {len(self._pending)}"
            )


class LengthFramer:
    """Decode the length-prefixed socket transport of ``repro serve``.

    ``feed`` returns the payload byte strings of every frame completed
    by the new data, in order.  A zero-length frame is the clean
    end-of-stream marker: :attr:`eof` becomes true and any bytes after
    it are a protocol error.  ``finish`` validates that the stream
    ended on a frame boundary (a peer that closed mid-frame raises).
    """

    __slots__ = ("max_frame_bytes", "_buffer", "_eof")

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError(f"max_frame_bytes must be >= 1: {max_frame_bytes}")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = b""
        self._eof = False

    @property
    def eof(self) -> bool:
        """True once the zero-length end-of-stream frame was seen."""
        return self._eof

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        if self._eof and data:
            raise FrameDecodeError("bytes after the end-of-stream frame")
        self._buffer += data
        payloads: list[bytes] = []
        while len(self._buffer) >= FRAME_HEADER.size:
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameDecodeError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if length == 0:
                self._eof = True
                if len(self._buffer) > FRAME_HEADER.size:
                    raise FrameDecodeError("bytes after the end-of-stream frame")
                self._buffer = b""
                break
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            payloads.append(self._buffer[FRAME_HEADER.size : end])
            self._buffer = self._buffer[end:]
        return payloads

    def finish(self) -> None:
        if self._buffer:
            raise FrameDecodeError(
                f"stream ended inside a frame ({len(self._buffer)} "
                "buffered byte(s))"
            )


def frame(payload: bytes) -> bytes:
    """Wrap one payload in the serve socket framing (client-side helper)."""
    return FRAME_HEADER.pack(len(payload)) + payload


END_OF_STREAM = FRAME_HEADER.pack(0)
"""The clean end-of-stream frame a well-behaved client sends last."""


class TshStreamDecoder:
    """Incremental TSH decoder: arbitrary byte slices in, packets out.

    Thin composition of :class:`RecordChunker` and the block decoder —
    each ``feed`` decodes every completed 44-byte record in one
    vectorized pass (numpy when available, the stdlib fallback
    otherwise), exactly the bytes-to-packets path of the chunked file
    reader.
    """

    format = FORMAT_TSH
    __slots__ = ("_chunker",)

    def __init__(self) -> None:
        self._chunker = RecordChunker(TSH_RECORD_BYTES, label="TSH record")

    @property
    def pending_bytes(self) -> int:
        return self._chunker.pending_bytes

    def feed(self, data: bytes) -> list[PacketRecord]:
        block = self._chunker.feed(data)
        if not block:
            return []
        return decode_columns(block).to_records()

    def finish(self) -> None:
        self._chunker.finish()


class PcapStreamDecoder:
    """Incremental pcap decoder for the subset this library writes.

    Consumes the 24-byte global header, then per-record headers and
    bodies, from arbitrarily sliced input.  Only little-endian classic
    pcap with the raw-IP link type and whole TCP/IP headers is accepted
    (what :func:`repro.trace.pcaplite.write_pcap` emits); anything else
    raises :class:`FrameDecodeError` — on a live socket a wrong-format
    peer must fail fast, not feed garbage packets into an archive.
    """

    format = FORMAT_PCAP
    __slots__ = ("_buffer", "_header_done")

    def __init__(self) -> None:
        self._buffer = b""
        self._header_done = False

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list[PacketRecord]:
        self._buffer += data
        packets: list[PacketRecord] = []
        if not self._header_done:
            if len(self._buffer) < _PCAP_GLOBAL.size:
                return packets
            magic, _major, _minor, _zone, _sigfigs, _snaplen, linktype = (
                _PCAP_GLOBAL.unpack_from(self._buffer)
            )
            if magic != PCAP_MAGIC:
                raise FrameDecodeError(f"unsupported pcap magic: {magic:#x}")
            if linktype != LINKTYPE_RAW:
                raise FrameDecodeError(f"unsupported link type: {linktype}")
            self._buffer = self._buffer[_PCAP_GLOBAL.size :]
            self._header_done = True
        while len(self._buffer) >= _PCAP_RECORD.size:
            seconds, micros, captured, original = _PCAP_RECORD.unpack_from(
                self._buffer
            )
            if captured < HEADER_BYTES:
                raise FrameDecodeError(
                    f"record too short for TCP/IP headers: {captured}"
                )
            end = _PCAP_RECORD.size + captured
            if len(self._buffer) < end:
                break
            body = self._buffer[_PCAP_RECORD.size : end]
            self._buffer = self._buffer[end:]
            packets.append(
                _decode_pcap_body(seconds, micros, original, body)
            )
        return packets

    def finish(self) -> None:
        if self._buffer or not self._header_done:
            what = "global header" if not self._header_done else "record"
            raise FrameDecodeError(
                f"truncated pcap {what} ({len(self._buffer)} buffered byte(s))"
            )


def _decode_pcap_body(
    seconds: int, micros: int, original: int, body: bytes
) -> PacketRecord:
    """Decode one captured 40-byte header snapshot into a record."""
    (
        _ver_ihl,
        _tos,
        _total_length,
        ip_id,
        _frag,
        ttl,
        protocol,
        _checksum,
        src_ip,
        dst_ip,
    ) = _PCAP_IP.unpack_from(body)
    (src_port, dst_port, seq, ack, _off, flags, window, _ck, _urg) = (
        _PCAP_TCP.unpack_from(body, 20)
    )
    return PacketRecord(
        timestamp=seconds + micros / _MICROSECOND,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        flags=flags,
        payload_len=max(0, original - HEADER_BYTES),
        seq=seq,
        ack=ack,
        ttl=ttl,
        ip_id=ip_id,
        window=window,
    )


def stream_decoder(format: str):
    """Build the decoder for a serve source format name."""
    if format == FORMAT_TSH:
        return TshStreamDecoder()
    if format == FORMAT_PCAP:
        return PcapStreamDecoder()
    raise ValueError(
        f"unknown stream format {format!r} (expected one of "
        f"{'/'.join(STREAM_FORMATS)})"
    )
