"""Trace storage substrate.

The paper measures compression against TSH (Time Sequence Header) trace
files — the NLANR capture format that stores, per packet, a timestamp plus
the IP header and the first 16 bytes of the TCP header in 44 bytes.  This
subpackage provides the TSH codec, a minimal pcap writer/reader for
interoperability, an in-memory :class:`Trace` container, and the
flow-statistics machinery behind the paper's section 3 numbers.
"""

from repro.trace.trace import Trace
from repro.trace.tsh import (
    TSH_RECORD_BYTES,
    read_tsh,
    read_tsh_bytes,
    write_tsh,
    write_tsh_bytes,
)
from repro.trace.reader import (
    DEFAULT_CHUNK_PACKETS,
    count_tsh_packets,
    first_tsh_timestamp,
    iter_tsh_chunks,
    iter_tsh_packets,
    iter_tsh_records,
    read_columns,
)
from repro.trace.pcaplite import read_pcap, write_pcap
from repro.trace.export import (
    ExportResult,
    export_format_for,
    export_packet_stream,
)
from repro.trace.stats import FlowLengthDistribution, TraceStatistics, compute_statistics
from repro.trace.filters import select_time_window, select_web_traffic, split_by_seconds
from repro.trace.anonymize import PrefixPreservingAnonymizer, anonymize_prefix_preserving

__all__ = [
    "Trace",
    "TSH_RECORD_BYTES",
    "read_tsh",
    "read_tsh_bytes",
    "write_tsh",
    "write_tsh_bytes",
    "DEFAULT_CHUNK_PACKETS",
    "count_tsh_packets",
    "first_tsh_timestamp",
    "iter_tsh_chunks",
    "iter_tsh_packets",
    "iter_tsh_records",
    "read_columns",
    "read_pcap",
    "write_pcap",
    "ExportResult",
    "export_format_for",
    "export_packet_stream",
    "FlowLengthDistribution",
    "TraceStatistics",
    "compute_statistics",
    "select_time_window",
    "select_web_traffic",
    "split_by_seconds",
    "PrefixPreservingAnonymizer",
    "anonymize_prefix_preserving",
]
