"""Incremental trace export: stream packets to disk without a Trace.

:meth:`~repro.trace.trace.Trace.save_tsh` needs the whole trace in
memory first; the streaming decompression and replay paths explicitly
never build one.  These writers couple any packet iterator directly to
the on-disk encoders — :func:`repro.trace.tsh.write_tsh` and
:func:`repro.trace.pcaplite.write_pcap` both encode one packet at a
time — so exporting holds exactly one packet, regardless of trace
length.  The target format is inferred from the output suffix
(``.pcap`` → pcap-lite, anything else → TSH) unless forced.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.net.packet import PacketRecord
from repro.trace.pcaplite import write_pcap
from repro.trace.tsh import write_tsh

FORMAT_TSH = "tsh"
FORMAT_PCAP = "pcap"


@dataclass(frozen=True)
class ExportResult:
    """What one export wrote: packet count, byte size, chosen format."""

    packets: int
    size_bytes: int
    format: str


def export_format_for(path: str | Path) -> str:
    """The export format a path's suffix implies (default: TSH)."""
    return FORMAT_PCAP if Path(path).suffix == ".pcap" else FORMAT_TSH


def export_packet_stream(
    packets: Iterable[PacketRecord],
    path: str | Path,
    format: str | None = None,
) -> ExportResult:
    """Write a packet stream to ``path`` incrementally.

    The iterable is consumed exactly once and never materialized; peak
    memory is one packet plus stdio buffering.  Returns the count and
    on-disk size, matching what :meth:`Trace.save_tsh` would report for
    the same packets.
    """
    chosen = format or export_format_for(path)
    with open(path, "wb") as stream:
        if chosen == FORMAT_PCAP:
            count = write_pcap(packets, stream)
        elif chosen == FORMAT_TSH:
            count = write_tsh(packets, stream)
        else:
            raise ValueError(f"unknown export format: {chosen!r}")
        size = stream.tell()
    return ExportResult(packets=count, size_bytes=size, format=chosen)
