"""Chunked TSH file reading for the streaming engine.

:meth:`~repro.trace.trace.Trace.load_tsh` materializes a whole trace in
memory before any processing starts — fine for the paper's 90-second
RedIRIS captures, a non-starter for the multi-hour NLANR traces the
evaluation also covers.  This module reads a ``.tsh`` file in fixed-size
packet chunks so the streaming compressor can bound its working set by
the *active-flow* population instead of the trace length.

The readers decode the same 44-byte records as :mod:`repro.trace.tsh`
and raise ``ValueError`` on a truncated trailing record, matching
:func:`repro.trace.tsh.read_tsh`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.net.packet import PacketRecord
from repro.obs import current as obs_current
from repro.trace.framing import RecordChunker
from repro.trace.tsh import TSH_RECORD_BYTES, decode_columns, decode_record_from

DEFAULT_CHUNK_PACKETS = 8192
"""Packets decoded per read; ~360 KiB of file per chunk."""


def _iter_record_blocks(path: str | Path, chunk_size: int) -> Iterator[bytes]:
    """Yield byte blocks of up to ``chunk_size`` whole 44-byte records.

    One file read per block; a read can straddle a record boundary, so a
    sub-record tail is carried into the next block.  Raises
    ``ValueError`` for a non-positive ``chunk_size`` or a truncated
    trailing record.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
    read_bytes = chunk_size * TSH_RECORD_BYTES
    # Metric handles resolved once per file, bumped once per block — the
    # per-record loop below stays untouched.
    registry = obs_current()
    bytes_read = registry.counter(
        "trace.read.bytes", "TSH bytes read from disk"
    )
    records_read = registry.counter(
        "trace.read.records", "whole 44-byte TSH records decoded"
    )
    # The re-blocking itself is the shared incremental chunker the live
    # decoders use (repro.trace.framing) — one buffering implementation
    # for files and sockets, one truncation check.
    chunker = RecordChunker(TSH_RECORD_BYTES, label="TSH record")
    with open(path, "rb") as stream:
        while True:
            data = stream.read(read_bytes)
            if not data:
                if chunker.pending_bytes:
                    registry.counter(
                        "trace.read.truncated_records",
                        "reads ending in a partial TSH record",
                    ).inc()
                chunker.finish()
                return
            bytes_read.inc(len(data))
            block = chunker.feed(data)
            if block:
                records_read.inc(len(block) // TSH_RECORD_BYTES)
                yield block


def iter_tsh_records(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_PACKETS
) -> Iterator[bytes]:
    """Yield raw 44-byte records with chunked reads, without decoding.

    Lets callers filter records cheaply (the parallel compressor's shard
    test needs only the 5-tuple bytes) and decode just the survivors.
    """
    for block in _iter_record_blocks(path, chunk_size):
        for offset in range(0, len(block), TSH_RECORD_BYTES):
            yield block[offset : offset + TSH_RECORD_BYTES]


def iter_tsh_chunks(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_PACKETS
) -> Iterator[list[PacketRecord]]:
    """Yield lists of up to ``chunk_size`` packets from a ``.tsh`` file.

    Memory use is bounded by one chunk regardless of file size.  Raises
    ``ValueError`` for a non-positive ``chunk_size`` or a file whose size
    is not a multiple of the 44-byte record length.
    """
    for block in _iter_record_blocks(path, chunk_size):
        # One memoryview per block, decoded in place with unpack_from —
        # not one sliced byte copy per record.
        view = memoryview(block)
        yield [
            decode_record_from(view, offset)
            for offset in range(0, len(block), TSH_RECORD_BYTES)
        ]


def read_columns(path: str | Path, chunk_size: int = DEFAULT_CHUNK_PACKETS):
    """Yield :class:`~repro.net.columns.PacketColumns` chunks of a file.

    The columnar engine's input path: each block of up to ``chunk_size``
    records is decoded in one vectorized pass
    (:func:`~repro.trace.tsh.decode_columns`).  Chunk boundaries come
    from the shared block reader, so they are identical across storage
    backends and identical to :func:`iter_tsh_chunks`; truncated
    trailing records raise the same ``ValueError``.
    """
    for block in _iter_record_blocks(path, chunk_size):
        yield decode_columns(block)


def iter_tsh_packets(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_PACKETS
) -> Iterator[PacketRecord]:
    """Yield packets from a ``.tsh`` file without loading it whole.

    The streaming counterpart of :meth:`Trace.load_tsh`: decodes
    ``chunk_size`` records per file read and yields them one at a time.
    """
    for chunk in iter_tsh_chunks(path, chunk_size):
        yield from chunk


def count_tsh_packets(path: str | Path) -> int:
    """Packet count of a ``.tsh`` file from its size, without reading it."""
    size = os.stat(path).st_size
    if size % TSH_RECORD_BYTES:
        raise ValueError(
            f"{path}: size {size} is not a multiple of {TSH_RECORD_BYTES}"
        )
    return size // TSH_RECORD_BYTES


def first_tsh_timestamp(path: str | Path) -> float | None:
    """Timestamp of the first packet, or None for an empty file.

    The parallel compressor anchors every shard's relative clock to the
    trace start; reading one record is enough to find it.
    """
    with open(path, "rb") as stream:
        record = stream.read(TSH_RECORD_BYTES)
    if not record:
        return None
    if len(record) != TSH_RECORD_BYTES:
        raise ValueError(
            f"truncated TSH record: expected {TSH_RECORD_BYTES} bytes, "
            f"got {len(record)}"
        )
    return decode_record_from(record).timestamp
