"""TSH (Time Sequence Header) trace format.

NLANR's TSH format stores one 44-byte record per packet:

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       4     timestamp, seconds (big-endian)
4       1     interface number
5       3     timestamp, microseconds (24-bit big-endian)
8       20    IPv4 header (no options)
28      16    first 16 bytes of the TCP header
======  ====  =====================================================

The 16 TCP bytes cover source/destination ports, sequence and
acknowledgment numbers, data offset, flags, and window — everything the
flow-clustering compressor needs.  The checksum and urgent pointer are the
4 bytes that fall off the end; the paper's Van Jacobson adaptation also
drops the checksum.

Records are fixed-size, so ``file size = 44 * packets``; this is the
"Original TSH file" curve of Figure 1.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, Iterator

from repro.net.checksum import ipv4_header_checksum
from repro.net.packet import HEADER_BYTES, PacketRecord, validate_packet

TSH_RECORD_BYTES = 44
"""On-disk bytes per packet in a TSH trace."""

_IP_HEADER = struct.Struct(">BBHHHBBHII")
_TCP_PREFIX = struct.Struct(">HHIIBBH")
_MICROSECOND = 1_000_000

# The whole 44-byte record as one struct: timing header, IPv4 header and
# TCP prefix flattened.  One unpack per record instead of three, and the
# iter_unpack/unpack_from forms never slice per-record byte copies.
_TSH_RECORD = struct.Struct(">IB3sBBHHHBBHIIHHIIBBH")
assert _TSH_RECORD.size == TSH_RECORD_BYTES


def encode_record(packet: PacketRecord, interface: int = 1) -> bytes:
    """Encode one packet as a 44-byte TSH record."""
    validate_packet(packet)
    seconds = int(packet.timestamp)
    micros = int(round((packet.timestamp - seconds) * _MICROSECOND))
    if micros >= _MICROSECOND:  # rounding may spill into the next second
        seconds += 1
        micros -= _MICROSECOND
    header = struct.pack(
        ">IB3s", seconds, interface & 0xFF, micros.to_bytes(3, "big")
    )
    bare_ip_header = _IP_HEADER.pack(
        0x45,  # version 4, IHL 5
        0,  # TOS
        packet.total_length(),
        packet.ip_id,
        0,  # flags / fragment offset
        packet.ttl,
        packet.protocol,
        0,  # checksum placeholder
        packet.src_ip,
        packet.dst_ip,
    )
    checksum = ipv4_header_checksum(bare_ip_header)
    ip_header = bare_ip_header[:10] + checksum.to_bytes(2, "big") + bare_ip_header[12:]
    tcp_prefix = _TCP_PREFIX.pack(
        packet.src_port,
        packet.dst_port,
        packet.seq,
        packet.ack,
        0x50,  # data offset 5, no reserved bits
        packet.flags,
        packet.window,
    )
    return header + ip_header + tcp_prefix


def decode_record(record: bytes) -> PacketRecord:
    """Decode one 44-byte TSH record into a :class:`PacketRecord`."""
    if len(record) != TSH_RECORD_BYTES:
        raise ValueError(
            f"TSH record must be {TSH_RECORD_BYTES} bytes, got {len(record)}"
        )
    seconds, _interface, micro_bytes = struct.unpack(">IB3s", record[:8])
    micros = int.from_bytes(micro_bytes, "big")
    (
        _ver_ihl,
        _tos,
        total_length,
        ip_id,
        _frag,
        ttl,
        protocol,
        _checksum,
        src_ip,
        dst_ip,
    ) = _IP_HEADER.unpack(record[8:28])
    (src_port, dst_port, seq, ack, _offset, flags, window) = _TCP_PREFIX.unpack(
        record[28:44]
    )
    return PacketRecord(
        timestamp=seconds + micros / _MICROSECOND,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        flags=flags,
        payload_len=max(0, total_length - HEADER_BYTES),
        seq=seq,
        ack=ack,
        ttl=ttl,
        ip_id=ip_id,
        window=window,
    )


def decode_record_from(buffer, offset: int = 0) -> PacketRecord:
    """Decode the 44-byte record at ``offset`` of ``buffer`` in place.

    The chunked reader's per-record form: ``unpack_from`` over one
    hoisted :class:`memoryview` instead of a sliced byte copy per
    record, and one struct unpack instead of three.
    """
    (
        seconds,
        _interface,
        micro_bytes,
        _ver_ihl,
        _tos,
        total_length,
        ip_id,
        _frag,
        ttl,
        protocol,
        _checksum,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        seq,
        ack,
        _offset,
        flags,
        window,
    ) = _TSH_RECORD.unpack_from(buffer, offset)
    return PacketRecord(
        timestamp=seconds + int.from_bytes(micro_bytes, "big") / _MICROSECOND,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        flags=flags,
        payload_len=max(0, total_length - HEADER_BYTES),
        seq=seq,
        ack=ack,
        ttl=ttl,
        ip_id=ip_id,
        window=window,
    )


# numpy structured view of the 44-byte record: packed, big-endian where
# multi-byte.  The 24-bit microsecond field is split into three u1s.
_TSH_DTYPE_FIELDS = [
    ("sec", ">u4"),
    ("iface", "u1"),
    ("usec_hi", "u1"),
    ("usec_mid", "u1"),
    ("usec_lo", "u1"),
    ("ver_ihl", "u1"),
    ("tos", "u1"),
    ("total_len", ">u2"),
    ("ip_id", ">u2"),
    ("frag", ">u2"),
    ("ttl", "u1"),
    ("proto", "u1"),
    ("cksum", ">u2"),
    ("src_ip", ">u4"),
    ("dst_ip", ">u4"),
    ("src_port", ">u2"),
    ("dst_port", ">u2"),
    ("seq", ">u4"),
    ("ack", ">u4"),
    ("offset", "u1"),
    ("flags", "u1"),
    ("window", ">u2"),
]
_tsh_dtype = None


def decode_columns(data):
    """Decode a block of whole 44-byte records into a ``PacketColumns``.

    The columnar twin of :func:`decode_record`: one vectorized parse per
    block under numpy (a structured-dtype ``frombuffer`` plus per-column
    casts), one ``iter_unpack`` sweep on the fallback backend.  Field
    values — including the float timestamps, computed as
    ``seconds + micros / 1e6`` in IEEE doubles on both backends — are
    bit-identical to per-record decoding.  Raises ``ValueError`` when
    ``data`` is not a whole number of records.
    """
    from array import array

    from repro.net.columns import PacketColumns, numpy_or_none

    if len(data) % TSH_RECORD_BYTES:
        raise ValueError(
            f"TSH block must be a multiple of {TSH_RECORD_BYTES} bytes, "
            f"got {len(data)}"
        )
    np = numpy_or_none()
    if np is not None:
        global _tsh_dtype
        if _tsh_dtype is None:
            _tsh_dtype = np.dtype(_TSH_DTYPE_FIELDS)
        rows = np.frombuffer(data, dtype=_tsh_dtype)
        micros = (
            (rows["usec_hi"].astype(np.uint32) << 16)
            | (rows["usec_mid"].astype(np.uint32) << 8)
            | rows["usec_lo"]
        )
        return PacketColumns(
            timestamps=rows["sec"].astype(np.float64) + micros / _MICROSECOND,
            src_ip=rows["src_ip"].astype(np.uint32),
            dst_ip=rows["dst_ip"].astype(np.uint32),
            src_port=rows["src_port"].astype(np.uint16),
            dst_port=rows["dst_port"].astype(np.uint16),
            protocol=rows["proto"].copy(),
            flags=rows["flags"].copy(),
            payload_len=np.maximum(
                rows["total_len"].astype(np.int32) - HEADER_BYTES, 0
            ),
            seq=rows["seq"].astype(np.uint32),
            ack=rows["ack"].astype(np.uint32),
            ttl=rows["ttl"].copy(),
            ip_id=rows["ip_id"].astype(np.uint16),
            window=rows["window"].astype(np.uint16),
        )
    fields = tuple(zip(*_TSH_RECORD.iter_unpack(data)))
    if not fields:
        fields = ((),) * 20
    (
        sec,
        _iface,
        usec,
        _ver_ihl,
        _tos,
        total_len,
        ip_id,
        _frag,
        ttl,
        proto,
        _cksum,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        seq,
        ack,
        _offset,
        flags,
        window,
    ) = fields
    return PacketColumns(
        timestamps=array(
            "d",
            (
                s + int.from_bytes(u, "big") / _MICROSECOND
                for s, u in zip(sec, usec)
            ),
        ),
        src_ip=array("Q", src_ip),
        dst_ip=array("Q", dst_ip),
        src_port=array("H", src_port),
        dst_port=array("H", dst_port),
        protocol=array("B", proto),
        flags=array("B", flags),
        payload_len=array("i", (max(0, t - HEADER_BYTES) for t in total_len)),
        seq=array("Q", seq),
        ack=array("Q", ack),
        ttl=array("B", ttl),
        ip_id=array("H", ip_id),
        window=array("H", window),
    )


def write_tsh(packets: Iterable[PacketRecord], stream: BinaryIO) -> int:
    """Write packets to a binary stream; returns the number written."""
    count = 0
    for packet in packets:
        stream.write(encode_record(packet))
        count += 1
    return count


def read_tsh(stream: BinaryIO) -> Iterator[PacketRecord]:
    """Yield packets from a binary TSH stream.

    Raises ``ValueError`` on a truncated trailing record.
    """
    while True:
        record = stream.read(TSH_RECORD_BYTES)
        if not record:
            return
        if len(record) != TSH_RECORD_BYTES:
            raise ValueError(
                f"truncated TSH record: expected {TSH_RECORD_BYTES} bytes, "
                f"got {len(record)}"
            )
        yield decode_record(record)


def write_tsh_bytes(packets: Iterable[PacketRecord]) -> bytes:
    """Serialize packets to a TSH byte string (for size measurements)."""
    buffer = io.BytesIO()
    write_tsh(packets, buffer)
    return buffer.getvalue()


def read_tsh_bytes(data: bytes) -> list[PacketRecord]:
    """Parse a TSH byte string into a list of packets."""
    return list(read_tsh(io.BytesIO(data)))


def tsh_file_size(packet_count: int) -> int:
    """On-disk size in bytes of a TSH trace with ``packet_count`` packets."""
    if packet_count < 0:
        raise ValueError("packet count cannot be negative")
    return packet_count * TSH_RECORD_BYTES
