"""Prefix-preserving trace anonymization.

The paper's introduction motivates compression partly by the damage
sanitization does: public traces "are delivered after some
transformations, such as sanitization, which modify some basic semantic
properties (such as IP address structure)".

This module provides both ends of that spectrum so the claim is testable:

* :func:`anonymize_prefix_preserving` — a Crypto-PAn-style deterministic
  mapping where two addresses sharing a k-bit prefix map to outputs
  sharing exactly a k-bit prefix.  Address *structure* survives, so
  radix-tree behaviour is preserved.
* naive randomization lives in :mod:`repro.synth.randomize` — structure
  is destroyed, which is what Figure 2/3's "random" control shows.

The anonymization experiment (E8) runs the Route benchmark on both and
confirms only the prefix-preserving variant keeps the memory profile.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.trace.trace import Trace


class PrefixPreservingAnonymizer:
    """Deterministic prefix-preserving IPv4 address mapping.

    For each bit position i, the output bit is the input bit XOR a
    pseudo-random function of the input's first i bits — the classic
    Crypto-PAn construction with HMAC-free keyed SHA-256 as the PRF
    (cryptographic strength is not the point here; structure preservation
    and determinism are).
    """

    def __init__(self, key: bytes | str = b"repro-anonymizer") -> None:
        if isinstance(key, str):
            key = key.encode("utf-8")
        self._key = key
        self._cache: dict[int, int] = {}

    def _prf_bit(self, prefix_bits: int, length: int) -> int:
        digest = hashlib.sha256(
            self._key + length.to_bytes(1, "big") + prefix_bits.to_bytes(4, "big")
        ).digest()
        return digest[0] & 1

    def anonymize(self, address: int) -> int:
        """Map one address (memoized)."""
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"not a 32-bit address: {address}")
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        output = 0
        prefix = 0
        for position in range(32):
            bit = (address >> (31 - position)) & 1
            flip = self._prf_bit(prefix, position)
            output = (output << 1) | (bit ^ flip)
            prefix = (prefix << 1) | bit
        self._cache[address] = output
        return output

    def anonymize_trace(self, trace: Trace) -> Trace:
        """Anonymize every source and destination address of a trace."""
        packets = [
            replace(
                packet,
                src_ip=self.anonymize(packet.src_ip),
                dst_ip=self.anonymize(packet.dst_ip),
            )
            for packet in trace.packets
        ]
        return Trace(packets, name=f"{trace.name}-anon")


def anonymize_prefix_preserving(
    trace: Trace, key: bytes | str = b"repro-anonymizer"
) -> Trace:
    """One-call prefix-preserving anonymization of a trace."""
    return PrefixPreservingAnonymizer(key).anonymize_trace(trace)


def shared_prefix_length(a: int, b: int) -> int:
    """Number of leading bits two addresses share (0..32)."""
    difference = (a ^ b) & 0xFFFFFFFF
    if difference == 0:
        return 32
    return 32 - difference.bit_length()
