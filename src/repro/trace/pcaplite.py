"""Minimal pcap reader/writer (headers only).

The library's native format is TSH (:mod:`repro.trace.tsh`); this module
exists for interoperability so generated or decompressed traces can be
inspected with standard tools.  It writes classic (non-ng) pcap files with
raw-IP link type, emitting for each packet a synthetic 40-byte TCP/IP
header whose ``total length`` field carries the true packet length (the
payload itself is not stored — snap length 40, exactly what a header
capture produces).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import HEADER_BYTES, PacketRecord, validate_packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # raw IPv4/IPv6

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_IP_HEADER = struct.Struct(">BBHHHBBHII")
_TCP_HEADER = struct.Struct(">HHIIBBHHH")
_MICROSECOND = 1_000_000


def _packet_bytes(packet: PacketRecord) -> bytes:
    """The 40 header bytes of a packet as they would appear on the wire."""
    ip_header = _IP_HEADER.pack(
        0x45,
        0,
        packet.total_length(),
        packet.ip_id,
        0,
        packet.ttl,
        packet.protocol,
        0,
        packet.src_ip,
        packet.dst_ip,
    )
    tcp_header = _TCP_HEADER.pack(
        packet.src_port,
        packet.dst_port,
        packet.seq,
        packet.ack,
        0x50,
        packet.flags,
        packet.window,
        0,  # checksum
        0,  # urgent pointer
    )
    return ip_header + tcp_header


def write_pcap(packets: Iterable[PacketRecord], stream: BinaryIO) -> int:
    """Write a pcap file with 40-byte header snapshots; returns count."""
    stream.write(
        _GLOBAL_HEADER.pack(
            PCAP_MAGIC,
            PCAP_VERSION[0],
            PCAP_VERSION[1],
            0,  # thiszone
            0,  # sigfigs
            HEADER_BYTES,  # snaplen
            LINKTYPE_RAW,
        )
    )
    count = 0
    for packet in packets:
        validate_packet(packet)
        seconds = int(packet.timestamp)
        micros = int(round((packet.timestamp - seconds) * _MICROSECOND))
        if micros >= _MICROSECOND:
            seconds += 1
            micros -= _MICROSECOND
        payload = _packet_bytes(packet)
        stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(payload), packet.total_length())
        )
        stream.write(payload)
        count += 1
    return count


def read_pcap(stream: BinaryIO) -> Iterator[PacketRecord]:
    """Yield packets from a pcap file written by :func:`write_pcap`.

    Only the subset this library writes is supported (little-endian,
    raw-IP link type, TCP/UDP headers present).
    """
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) != _GLOBAL_HEADER.size:
        raise ValueError("truncated pcap global header")
    magic, _major, _minor, _zone, _sigfigs, _snaplen, linktype = _GLOBAL_HEADER.unpack(
        header
    )
    if magic != PCAP_MAGIC:
        raise ValueError(f"unsupported pcap magic: {magic:#x}")
    if linktype != LINKTYPE_RAW:
        raise ValueError(f"unsupported link type: {linktype}")
    while True:
        record_header = stream.read(_RECORD_HEADER.size)
        if not record_header:
            return
        if len(record_header) != _RECORD_HEADER.size:
            raise ValueError("truncated pcap record header")
        seconds, micros, captured, original = _RECORD_HEADER.unpack(record_header)
        data = stream.read(captured)
        if len(data) != captured:
            raise ValueError("truncated pcap record body")
        if captured < HEADER_BYTES:
            raise ValueError(f"record too short for TCP/IP headers: {captured}")
        (
            _ver_ihl,
            _tos,
            _total_length,
            ip_id,
            _frag,
            ttl,
            protocol,
            _checksum,
            src_ip,
            dst_ip,
        ) = _IP_HEADER.unpack(data[:20])
        (src_port, dst_port, seq, ack, _off, flags, window, _ck, _urg) = (
            _TCP_HEADER.unpack(data[20:40])
        )
        yield PacketRecord(
            timestamp=seconds + micros / _MICROSECOND,
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            flags=flags,
            payload_len=max(0, original - HEADER_BYTES),
            seq=seq,
            ack=ack,
            ttl=ttl,
            ip_id=ip_id,
            window=window,
        )
