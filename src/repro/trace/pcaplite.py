"""Minimal pcap reader/writer (headers only).

The library's native format is TSH (:mod:`repro.trace.tsh`); this module
exists for interoperability so generated or decompressed traces can be
inspected with standard tools.  It writes classic (non-ng) pcap files with
raw-IP link type, emitting for each packet a synthetic 40-byte TCP/IP
header whose ``total length`` field carries the true packet length (the
payload itself is not stored — snap length 40, exactly what a header
capture produces).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import HEADER_BYTES, PacketRecord, validate_packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # raw IPv4/IPv6

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_IP_HEADER = struct.Struct(">BBHHHBBHII")
_TCP_HEADER = struct.Struct(">HHIIBBHHH")
_MICROSECOND = 1_000_000


def _packet_bytes(packet: PacketRecord) -> bytes:
    """The 40 header bytes of a packet as they would appear on the wire."""
    ip_header = _IP_HEADER.pack(
        0x45,
        0,
        packet.total_length(),
        packet.ip_id,
        0,
        packet.ttl,
        packet.protocol,
        0,
        packet.src_ip,
        packet.dst_ip,
    )
    tcp_header = _TCP_HEADER.pack(
        packet.src_port,
        packet.dst_port,
        packet.seq,
        packet.ack,
        0x50,
        packet.flags,
        packet.window,
        0,  # checksum
        0,  # urgent pointer
    )
    return ip_header + tcp_header


def write_pcap(packets: Iterable[PacketRecord], stream: BinaryIO) -> int:
    """Write a pcap file with 40-byte header snapshots; returns count."""
    stream.write(
        _GLOBAL_HEADER.pack(
            PCAP_MAGIC,
            PCAP_VERSION[0],
            PCAP_VERSION[1],
            0,  # thiszone
            0,  # sigfigs
            HEADER_BYTES,  # snaplen
            LINKTYPE_RAW,
        )
    )
    count = 0
    for packet in packets:
        validate_packet(packet)
        seconds = int(packet.timestamp)
        micros = int(round((packet.timestamp - seconds) * _MICROSECOND))
        if micros >= _MICROSECOND:
            seconds += 1
            micros -= _MICROSECOND
        payload = _packet_bytes(packet)
        stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(payload), packet.total_length())
        )
        stream.write(payload)
        count += 1
    return count


_READ_CHUNK_BYTES = 1 << 16


def read_pcap(stream: BinaryIO) -> Iterator[PacketRecord]:
    """Yield packets from a pcap file written by :func:`write_pcap`.

    Only the subset this library writes is supported (little-endian,
    raw-IP link type, TCP/UDP headers present).  A thin file pump over
    the incremental :class:`~repro.trace.framing.PcapStreamDecoder` —
    the same decoder a ``repro serve`` socket source runs — so the file
    and live paths can never diverge on what they accept.
    """
    from repro.trace.framing import PcapStreamDecoder

    decoder = PcapStreamDecoder()
    while True:
        data = stream.read(_READ_CHUNK_BYTES)
        if not data:
            decoder.finish()
            return
        yield from decoder.feed(data)
