"""The in-memory trace container.

A :class:`Trace` is an ordered list of :class:`~repro.net.packet.PacketRecord`
with convenience constructors for the on-disk formats and the size
accounting used throughout the evaluation (Figure 1 compares *file sizes*,
so every trace knows its TSH byte size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.net.packet import HEADER_BYTES, PacketRecord
from repro.trace import tsh as tsh_format
from repro.trace import pcaplite


@dataclass
class Trace:
    """An ordered packet-header trace.

    Packets are expected in non-decreasing timestamp order; use
    :meth:`sorted_by_time` to enforce it after merging traces.
    """

    packets: list[PacketRecord] = field(default_factory=list)
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.packets)

    def __getitem__(self, index: int) -> PacketRecord:
        return self.packets[index]

    def append(self, packet: PacketRecord) -> None:
        """Append one packet to the trace."""
        self.packets.append(packet)

    def extend(self, packets: Iterable[PacketRecord]) -> None:
        """Append many packets to the trace."""
        self.packets.extend(packets)

    # -- time properties -------------------------------------------------

    def duration(self) -> float:
        """Elapsed seconds between first and last packet (0 if < 2)."""
        if len(self.packets) < 2:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    def start_time(self) -> float:
        """Timestamp of the first packet (0 for an empty trace)."""
        return self.packets[0].timestamp if self.packets else 0.0

    def end_time(self) -> float:
        """Timestamp of the last packet (0 for an empty trace)."""
        return self.packets[-1].timestamp if self.packets else 0.0

    def is_time_ordered(self) -> bool:
        """True when timestamps never decrease."""
        return all(
            earlier.timestamp <= later.timestamp
            for earlier, later in zip(self.packets, self.packets[1:])
        )

    def sorted_by_time(self) -> "Trace":
        """A new trace with packets stably sorted by timestamp."""
        ordered = sorted(self.packets, key=lambda p: p.timestamp)
        return Trace(ordered, name=self.name)

    # -- size accounting --------------------------------------------------

    def stored_size_bytes(self) -> int:
        """On-disk TSH size: 44 bytes per packet (Figure 1's x-input)."""
        return tsh_format.tsh_file_size(len(self.packets))

    def header_bytes(self) -> int:
        """Total stored header bytes (40 per packet, eq. 5/7 denominator)."""
        return HEADER_BYTES * len(self.packets)

    def wire_bytes(self) -> int:
        """Total bytes as seen on the link (headers + payloads)."""
        return sum(p.total_length() for p in self.packets)

    # -- transforms --------------------------------------------------------

    def filter(self, predicate: Callable[[PacketRecord], bool]) -> "Trace":
        """A new trace containing the packets matching ``predicate``."""
        return Trace([p for p in self.packets if predicate(p)], name=self.name)

    def map_packets(
        self, transform: Callable[[PacketRecord], PacketRecord]
    ) -> "Trace":
        """A new trace with ``transform`` applied to every packet."""
        return Trace([transform(p) for p in self.packets], name=self.name)

    def head(self, count: int) -> "Trace":
        """A new trace with only the first ``count`` packets."""
        return Trace(self.packets[:count], name=self.name)

    def renamed(self, name: str) -> "Trace":
        """The same packet list under a different trace name."""
        return Trace(self.packets, name=name)

    # -- I/O ----------------------------------------------------------------

    def to_tsh_bytes(self) -> bytes:
        """Serialize to the TSH byte format."""
        return tsh_format.write_tsh_bytes(self.packets)

    @classmethod
    def from_tsh_bytes(cls, data: bytes, name: str = "trace") -> "Trace":
        """Parse a TSH byte string."""
        return cls(tsh_format.read_tsh_bytes(data), name=name)

    def save_tsh(self, path: str | Path) -> int:
        """Write a ``.tsh`` file; returns bytes written."""
        data = self.to_tsh_bytes()
        Path(path).write_bytes(data)
        return len(data)

    @classmethod
    def load_tsh(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a ``.tsh`` file."""
        from repro.obs import current as obs_current

        data = Path(path).read_bytes()
        trace = cls.from_tsh_bytes(data, name=name or Path(path).stem)
        # Same read accounting as the chunked reader, so batch and
        # streaming runs report identical trace.read.* totals.
        registry = obs_current()
        registry.counter("trace.read.bytes", "TSH bytes read from disk").inc(
            len(data)
        )
        registry.counter(
            "trace.read.records", "whole 44-byte TSH records decoded"
        ).inc(len(trace.packets))
        return trace

    def save_pcap(self, path: str | Path) -> int:
        """Write a header-only pcap file; returns the packet count."""
        with open(path, "wb") as stream:
            return pcaplite.write_pcap(self.packets, stream)

    @classmethod
    def load_pcap(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a pcap file produced by :meth:`save_pcap`."""
        with open(path, "rb") as stream:
            packets = list(pcaplite.read_pcap(stream))
        return cls(packets, name=name or Path(path).stem)


def merge_traces(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Merge several traces into one, sorted by timestamp."""
    combined: list[PacketRecord] = []
    for trace in traces:
        combined.extend(trace.packets)
    combined.sort(key=lambda p: p.timestamp)
    return Trace(combined, name=name)
