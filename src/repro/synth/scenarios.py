"""The traffic-scenario registry — named, uniform, deterministic workloads.

Every synthetic workload the project knows is registered here under a
stable name with one uniform builder signature::

    build(duration: float, flow_rate: float, seed: int) -> Trace

``web`` is the historical default (``repro generate`` without
``--scenario`` produces exactly what it always did); the rest widen the
input distribution the compressor is tested against — partition/
aggregate incast mixes, protocol blends, floods, multipath striping.
Each scenario doubles as a differential correctness probe: the fidelity
harness (:mod:`repro.analysis.fidelity`) compresses and reconstructs
every registered scenario and scores the roundtrip.

Generator modules are imported lazily inside each builder so importing
the registry (e.g. for ``--list-scenarios``) stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.trace.trace import Trace

Builder = Callable[[float, float, int], Trace]


@dataclass(frozen=True)
class Scenario:
    """One registered workload: a name, a one-line summary, a builder."""

    name: str
    summary: str
    default_seed: int
    _builder: Builder

    def build(
        self,
        duration: float = 100.0,
        flow_rate: float = 40.0,
        seed: int | None = None,
    ) -> Trace:
        """Generate this scenario's trace (deterministic per seed)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        if flow_rate <= 0:
            raise ValueError(f"flow_rate must be positive: {flow_rate}")
        actual_seed = self.default_seed if seed is None else seed
        return self._builder(duration, flow_rate, actual_seed)


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(
    name: str, summary: str, default_seed: int
) -> Callable[[Builder], Builder]:
    """Decorator: register ``builder`` under ``name``.

    Registration order is presentation order (``scenario_names`` and
    ``--list-scenarios`` follow it), so keep the classics first.
    """

    def decorate(builder: Builder) -> Builder:
        if name in _REGISTRY:
            raise ValueError(f"scenario already registered: {name!r}")
        _REGISTRY[name] = Scenario(
            name=name,
            summary=summary,
            default_seed=default_seed,
            _builder=builder,
        )
        return builder

    return decorate


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; unknown names list the valid ones."""
    try:
        return _REGISTRY[name]
    except KeyError:
        valid = ", ".join(_REGISTRY)
        raise ValueError(
            f"unknown scenario: {name!r} (valid: {valid})"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """All registered names, in registration (presentation) order."""
    return tuple(_REGISTRY)


def iter_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, in registration (presentation) order."""
    return tuple(_REGISTRY.values())


@register_scenario(
    "web",
    "HTTP sessions with slow-start bursts (the paper's Web workload)",
    default_seed=1,
)
def _build_web(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.webgen import generate_web_trace

    return generate_web_trace(duration=duration, flow_rate=flow_rate, seed=seed)


@register_scenario(
    "p2p",
    "Peer-to-peer swarms: chunk exchange among transient peers",
    default_seed=1,
)
def _build_p2p(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.p2pgen import generate_p2p_trace

    return generate_p2p_trace(
        duration=duration, session_rate=flow_rate, seed=seed
    )


@register_scenario(
    "web-search",
    "Partition/aggregate incast with the published web-search flow-size CDF",
    default_seed=11,
)
def _build_web_search(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.cdfgen import WEB_SEARCH_FLOW_SIZES, generate_cdf_trace

    return generate_cdf_trace(
        duration=duration,
        flow_rate=flow_rate,
        seed=seed,
        sizes=WEB_SEARCH_FLOW_SIZES,
    )


@register_scenario(
    "data-mining",
    "Partition/aggregate incast with the heavy-tailed data-mining CDF",
    default_seed=19,
)
def _build_data_mining(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.cdfgen import DATA_MINING_FLOW_SIZES, generate_cdf_trace

    return generate_cdf_trace(
        duration=duration,
        flow_rate=flow_rate,
        seed=seed,
        sizes=DATA_MINING_FLOW_SIZES,
    )


@register_scenario(
    "mixed-protocol",
    "HTTP, DNS, interactive SSH and one-way datagram background",
    default_seed=23,
)
def _build_mixed(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.mixedgen import generate_mixed_trace

    return generate_mixed_trace(
        duration=duration, flow_rate=flow_rate, seed=seed
    )


@register_scenario(
    "flood",
    "SYN/UDP bursts: spoofed fractal sources, LRU-stack victim locality",
    default_seed=37,
)
def _build_flood(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.floodgen import generate_flood_trace

    return generate_flood_trace(
        duration=duration, flow_rate=flow_rate, seed=seed
    )


@register_scenario(
    "mptcp",
    "Multipath TCP: one connection striped over joined subflows",
    default_seed=53,
)
def _build_mptcp(duration: float, flow_rate: float, seed: int) -> Trace:
    from repro.synth.mptcpgen import generate_mptcp_trace

    return generate_mptcp_trace(
        duration=duration, flow_rate=flow_rate, seed=seed
    )
