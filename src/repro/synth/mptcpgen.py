"""Multipath TCP traffic — one logical connection striped over subflows.

An MPTCP connection opens 2–4 TCP subflows (different client addresses
and ports — think WiFi plus cellular — toward one server) and stripes
one response body across them.  To a per-flow compressor each subflow is
an independent five-tuple, yet their payload progressions are slices of
one stream, their clocks are coupled, and *reinjection* (a segment
resent on a second subflow after the scheduler gives up on the first)
duplicates payload across flows.  That correlated-but-distinct structure
is what this scenario probes.

The subflow/aggregation/reinjection vocabulary follows the
mptcp-analysis literature.  Every draw comes from one seeded
:class:`random.Random`, so the trace is a pure function of its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN
from repro.synth.addresses import AddressPool, AddressPoolConfig
from repro.synth.distributions import BoundedPareto, LogNormal
from repro.trace.trace import Trace

MSS = 1460
REQUEST_BYTES = 220
"""Client request on the primary subflow."""


@dataclass(frozen=True)
class MptcpTrafficConfig:
    """Knobs of the multipath generator.

    ``flow_rate`` counts *subflows* per second (connections arrive at
    ``flow_rate / mean subflow count``), keeping flow-table pressure
    comparable to single-path scenarios at the same rate.  Secondary
    subflows join ``join_delay`` apart and run over slower paths
    (``secondary_rtt_factor`` spreads their RTTs), so the stripes
    interleave rather than march in lockstep.
    """

    duration: float = 100.0
    flow_rate: float = 40.0
    seed: int = 53
    subflows_min: int = 2
    subflows_max: int = 4
    response_bytes: BoundedPareto = BoundedPareto(
        alpha=1.2, xmin=8000.0, xmax=400000.0
    )
    reinject_prob: float = 0.06
    join_delay: float = 0.030
    rtt: LogNormal = LogNormal.from_median_sigma(0.030, 0.4)
    secondary_rtt_factor: tuple[float, float] = (1.3, 3.0)
    back_to_back_gap: float = 0.0002
    ack_every: int = 2
    pool: AddressPoolConfig = field(default_factory=AddressPoolConfig)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.flow_rate <= 0:
            raise ValueError(f"flow_rate must be positive: {self.flow_rate}")
        if not 1 <= self.subflows_min <= self.subflows_max:
            raise ValueError("need 1 <= subflows_min <= subflows_max")
        if not 0.0 <= self.reinject_prob <= 1.0:
            raise ValueError(
                f"reinject_prob must be in [0,1]: {self.reinject_prob}"
            )
        if self.join_delay < 0:
            raise ValueError(f"join_delay cannot be negative: {self.join_delay}")
        low, high = self.secondary_rtt_factor
        if not 1.0 <= low <= high:
            raise ValueError(
                f"need 1 <= low <= high in secondary_rtt_factor: "
                f"{self.secondary_rtt_factor}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {self.ack_every}")

    @property
    def mean_subflows(self) -> float:
        return (self.subflows_min + self.subflows_max) / 2.0


class _Subflow:
    """Mutable per-subflow state: endpoints, RTT, clocks, sequence space."""

    __slots__ = (
        "client", "server", "port", "rtt", "clock",
        "cseq", "sseq", "unacked",
    )

    def __init__(
        self,
        client: int,
        server: int,
        port: int,
        rtt: float,
        start: float,
        rng: random.Random,
    ) -> None:
        self.client = client
        self.server = server
        self.port = port
        self.rtt = rtt
        self.clock = start
        self.cseq = rng.getrandbits(32)
        self.sseq = rng.getrandbits(32)
        self.unacked = 0


class MptcpTrafficGenerator:
    """Deterministic (seeded) multipath traffic source."""

    def __init__(self, config: MptcpTrafficConfig | None = None) -> None:
        self.config = config or MptcpTrafficConfig()
        self._rng = random.Random(self.config.seed)
        self._pool = AddressPool(self.config.pool, seed=self.config.seed ^ 0x6B7C)
        self._next_port = 1024

    def generate(self) -> Trace:
        """Generate the whole trace (time-sorted)."""
        config = self.config
        rng = self._rng
        connection_rate = config.flow_rate / config.mean_subflows
        packets: list[PacketRecord] = []
        arrival = 0.0
        while True:
            arrival += rng.expovariate(connection_rate)
            if arrival >= config.duration:
                break
            packets.extend(self._play_connection(arrival))
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name=f"mptcp-{config.seed}")

    def _emit(
        self,
        out: list[PacketRecord],
        subflow: _Subflow,
        timestamp: float,
        client_to_server: bool,
        flags: int,
        payload: int,
    ) -> None:
        rng = self._rng
        if client_to_server:
            src_ip, dst_ip = subflow.client, subflow.server
            src_port, dst_port = subflow.port, 443
            seq, ack = subflow.cseq, subflow.sseq
            subflow.cseq = (subflow.cseq + max(payload, 1)) & 0xFFFFFFFF
        else:
            src_ip, dst_ip = subflow.server, subflow.client
            src_port, dst_port = 443, subflow.port
            seq, ack = subflow.sseq, subflow.cseq
            subflow.sseq = (subflow.sseq + max(payload, 1)) & 0xFFFFFFFF
        out.append(
            PacketRecord(
                timestamp=timestamp,
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                flags=flags,
                payload_len=payload,
                seq=seq,
                ack=ack,
                ip_id=rng.getrandbits(16),
                ttl=plausible_ttl(src_ip),
                window=plausible_window(src_ip),
            )
        )

    def _play_connection(self, start: float) -> list[PacketRecord]:
        """One MPTCP connection: joined subflows, striped + reinjected data."""
        config = self.config
        rng = self._rng
        server = self._pool.pick_server(rng)
        # Two physical paths (addresses); subflows alternate between them.
        paths = (self._pool.pick_client(rng), self._pool.pick_client(rng))
        count = rng.randint(config.subflows_min, config.subflows_max)
        out: list[PacketRecord] = []

        subflows: list[_Subflow] = []
        base_rtt = max(0.002, config.rtt.sample(rng))
        low, high = config.secondary_rtt_factor
        for index in range(count):
            self._next_port += 1
            if self._next_port > 64000:
                self._next_port = 1024
            rtt = base_rtt if index == 0 else base_rtt * rng.uniform(low, high)
            subflow = _Subflow(
                paths[index % 2], server, self._next_port, rtt,
                start + index * config.join_delay, rng,
            )
            subflows.append(subflow)
            # SYN / SYN-ACK / ACK (the MP_CAPABLE / MP_JOIN exchange).
            self._emit(out, subflow, subflow.clock, True, TCP_SYN, 0)
            subflow.clock += rtt
            self._emit(out, subflow, subflow.clock, False, TCP_SYN | TCP_ACK, 0)
            subflow.clock += rtt
            self._emit(out, subflow, subflow.clock, True, TCP_ACK, 0)
            subflow.clock += config.back_to_back_gap

        primary = subflows[0]
        self._emit(out, primary, primary.clock, True, TCP_ACK, REQUEST_BYTES)
        primary.clock += primary.rtt

        # Stripe the response: each segment goes to the earliest-ready
        # subflow (the default MPTCP scheduler's lowest-RTT-first shape
        # emerges because fast subflows re-arm sooner).
        gap = config.back_to_back_gap
        total = int(config.response_bytes.sample(rng))
        segments = max(1, (total + MSS - 1) // MSS)
        for _ in range(segments):
            subflow = min(subflows, key=lambda s: s.clock)
            self._emit(out, subflow, subflow.clock, False, TCP_ACK, MSS)
            subflow.clock += gap
            subflow.unacked += 1
            if subflow.unacked >= config.ack_every:
                self._emit(
                    out, subflow, subflow.clock + subflow.rtt, True, TCP_ACK, 0
                )
                subflow.clock += subflow.rtt / 2.0
                subflow.unacked = 0
            if count > 1 and rng.random() < config.reinject_prob:
                # Reinjection: the same payload resent on another subflow.
                other = subflows[
                    (subflows.index(subflow) + 1 + rng.randrange(count - 1))
                    % count
                ]
                self._emit(out, other, other.clock, False, TCP_ACK, MSS)
                other.clock += gap

        for subflow in subflows:
            self._emit(
                out, subflow, subflow.clock + subflow.rtt, True,
                TCP_FIN | TCP_ACK, 0,
            )
        return out


def generate_mptcp_trace(
    duration: float = 100.0,
    flow_rate: float = 40.0,
    seed: int = 53,
    config: MptcpTrafficConfig | None = None,
) -> Trace:
    """Convenience wrapper: one call, one multipath trace."""
    if config is None:
        config = MptcpTrafficConfig(
            duration=duration, flow_rate=flow_rate, seed=seed
        )
    return MptcpTrafficGenerator(config).generate()
