"""Mixed-protocol traffic — HTTP, DNS, SSH and background datagrams.

The Web generator exercises one protocol's session grammar.  Production
captures are a *mix*: short TCP request/response flows, two-packet UDP
DNS lookups, long sparse interactive SSH sessions, and one-way
datagram background (NTP/syslog-style).  Each class stresses a
different compressor assumption — UDP flows have no handshake or flag
grammar, SSH flows are packet-many but byte-light with human think-time
gaps, background streams never turn around.

Flow classes are drawn per arrival from configured probabilities; every
draw comes from one seeded :class:`random.Random`, so the trace is a
pure function of its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.packet import PROTO_TCP, PROTO_UDP, PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN
from repro.synth.addresses import AddressPool, AddressPoolConfig
from repro.synth.distributions import BoundedPareto, Exponential, LogNormal
from repro.trace.trace import Trace

MSS = 1460
HTTP_REQUEST_BYTES = 280
SSH_SEGMENT = 48
"""Encrypted keystroke/echo payload of an interactive SSH round."""

BACKGROUND_PORTS = (123, 514, 1812, 4500)
"""Well-known one-way datagram services (NTP, syslog, RADIUS, IPsec-NAT)."""


@dataclass(frozen=True)
class MixedTrafficConfig:
    """Knobs of the protocol mix.

    The class probabilities (``http``/``dns``/``ssh``; the remainder is
    background datagrams) shape the flow population; the per-class knobs
    shape each session.  ``flow_rate`` is total flows per second across
    all classes.
    """

    duration: float = 100.0
    flow_rate: float = 40.0
    seed: int = 23
    http_prob: float = 0.55
    dns_prob: float = 0.25
    ssh_prob: float = 0.05
    response_bytes: BoundedPareto = BoundedPareto(
        alpha=1.3, xmin=1500.0, xmax=60000.0
    )
    ssh_rounds_min: int = 4
    ssh_rounds_max: int = 48
    ssh_think: Exponential = Exponential(rate=4.0)
    background_packets_min: int = 8
    background_packets_max: int = 64
    background_interval: float = 0.012
    rtt: LogNormal = LogNormal.from_median_sigma(0.050, 0.5)
    back_to_back_gap: float = 0.0002
    ack_every: int = 2
    pool: AddressPoolConfig = field(default_factory=AddressPoolConfig)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.flow_rate <= 0:
            raise ValueError(f"flow_rate must be positive: {self.flow_rate}")
        for label, value in (
            ("http_prob", self.http_prob),
            ("dns_prob", self.dns_prob),
            ("ssh_prob", self.ssh_prob),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0,1]: {value}")
        if self.http_prob + self.dns_prob + self.ssh_prob > 1.0:
            raise ValueError("class probabilities must sum to at most 1")
        if not 1 <= self.ssh_rounds_min <= self.ssh_rounds_max:
            raise ValueError("need 1 <= ssh_rounds_min <= ssh_rounds_max")
        if not 1 <= self.background_packets_min <= self.background_packets_max:
            raise ValueError(
                "need 1 <= background_packets_min <= background_packets_max"
            )
        if self.background_interval <= 0:
            raise ValueError(
                f"background_interval must be positive: {self.background_interval}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {self.ack_every}")


class MixedTrafficGenerator:
    """Deterministic (seeded) multi-protocol traffic source."""

    initial_cwnd = 2
    max_cwnd = 16

    def __init__(self, config: MixedTrafficConfig | None = None) -> None:
        self.config = config or MixedTrafficConfig()
        self._rng = random.Random(self.config.seed)
        self._pool = AddressPool(self.config.pool, seed=self.config.seed ^ 0x31ED)
        self._next_port = 1024

    def generate(self) -> Trace:
        """Generate the whole trace (time-sorted)."""
        config = self.config
        rng = self._rng
        packets: list[PacketRecord] = []
        arrival = 0.0
        while True:
            arrival += rng.expovariate(config.flow_rate)
            if arrival >= config.duration:
                break
            draw = rng.random()
            if draw < config.http_prob:
                packets.extend(self._play_http(arrival))
            elif draw < config.http_prob + config.dns_prob:
                packets.extend(self._play_dns(arrival))
            elif draw < config.http_prob + config.dns_prob + config.ssh_prob:
                packets.extend(self._play_ssh(arrival))
            else:
                packets.extend(self._play_background(arrival))
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name=f"mixed-{config.seed}")

    # -- shared plumbing ----------------------------------------------------

    def _endpoints(self) -> tuple[int, int, int]:
        """(client, server, ephemeral client port) for one new flow."""
        rng = self._rng
        self._next_port += 1
        if self._next_port > 64000:
            self._next_port = 1024
        return (
            self._pool.pick_client(rng),
            self._pool.pick_server(rng),
            self._next_port,
        )

    def _packet(
        self,
        timestamp: float,
        src_ip: int,
        dst_ip: int,
        src_port: int,
        dst_port: int,
        *,
        protocol: int = PROTO_TCP,
        flags: int = 0,
        payload: int = 0,
        seq: int = 0,
        ack: int = 0,
    ) -> PacketRecord:
        return PacketRecord(
            timestamp=timestamp,
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            flags=flags,
            payload_len=payload,
            seq=seq,
            ack=ack,
            ip_id=self._rng.getrandbits(16),
            ttl=plausible_ttl(src_ip),
            window=plausible_window(src_ip),
        )

    def _play_tcp_session(
        self,
        start: float,
        server_port: int,
        rounds: list[tuple[int, int, float]],
    ) -> list[PacketRecord]:
        """Handshake, then (client_bytes, server_bytes, pre_gap) rounds, FIN.

        Each round waits ``pre_gap`` after the previous exchange, sends
        the client payload, and answers one RTT later with the server
        payload as MSS segments (client ACKs every ``ack_every``).
        """
        config = self.config
        rng = self._rng
        gap = config.back_to_back_gap
        rtt = max(0.002, config.rtt.sample(rng))
        client, server, port = self._endpoints()
        state = {"cseq": rng.getrandbits(32), "sseq": rng.getrandbits(32)}
        out: list[PacketRecord] = []

        def emit(
            timestamp: float, client_to_server: bool, flags: int, payload: int
        ) -> None:
            if client_to_server:
                seq, ack = state["cseq"], state["sseq"]
                state["cseq"] = (state["cseq"] + max(payload, 1)) & 0xFFFFFFFF
                out.append(
                    self._packet(
                        timestamp, client, server, port, server_port,
                        flags=flags, payload=payload, seq=seq, ack=ack,
                    )
                )
            else:
                seq, ack = state["sseq"], state["cseq"]
                state["sseq"] = (state["sseq"] + max(payload, 1)) & 0xFFFFFFFF
                out.append(
                    self._packet(
                        timestamp, server, client, server_port, port,
                        flags=flags, payload=payload, seq=seq, ack=ack,
                    )
                )

        now = start
        emit(now, True, TCP_SYN, 0)
        now += rtt
        emit(now, False, TCP_SYN | TCP_ACK, 0)
        now += rtt
        emit(now, True, TCP_ACK, 0)

        for client_bytes, server_bytes, pre_gap in rounds:
            now += pre_gap
            if client_bytes:
                emit(now, True, TCP_ACK, client_bytes)
                now += rtt
            segments, last = divmod(server_bytes, MSS)
            sizes = [MSS] * segments + ([last] if last else [])
            for index, size in enumerate(sizes):
                emit(now + index * gap, False, TCP_ACK, size)
                if (index + 1) % config.ack_every == 0:
                    emit(now + index * gap + rtt, True, TCP_ACK, 0)
            if sizes:
                now += (len(sizes) - 1) * gap + rtt
        now += gap
        emit(now, True, TCP_FIN | TCP_ACK, 0)
        return out

    # -- the flow classes ---------------------------------------------------

    def _play_http(self, start: float) -> list[PacketRecord]:
        """One request/response HTTP flow (port 80)."""
        response = int(self.config.response_bytes.sample(self._rng))
        gap = self.config.back_to_back_gap
        return self._play_tcp_session(
            start, 80, [(HTTP_REQUEST_BYTES, response, gap)]
        )

    def _play_dns(self, start: float) -> list[PacketRecord]:
        """A two-packet UDP lookup: query out, answer one RTT later."""
        rng = self._rng
        client, server, port = self._endpoints()
        rtt = max(0.002, self.config.rtt.sample(rng))
        query = rng.randint(28, 90)
        answer = rng.randint(60, 480)
        return [
            self._packet(
                start, client, server, port, 53,
                protocol=PROTO_UDP, payload=query,
            ),
            self._packet(
                start + rtt, server, client, 53, port,
                protocol=PROTO_UDP, payload=answer,
            ),
        ]

    def _play_ssh(self, start: float) -> list[PacketRecord]:
        """Interactive SSH (port 22): sparse keystroke/echo rounds.

        Human think time separates the rounds (exponential), which gives
        the flow a duration far longer than its byte count suggests —
        the opposite corner of the timing model from HTTP bursts.
        """
        config = self.config
        rng = self._rng
        rounds: list[tuple[int, int, float]] = [
            # Banner + key exchange: server talks first, big payloads.
            (0, 784, config.back_to_back_gap),
            (520, 720, config.back_to_back_gap),
        ]
        for _ in range(rng.randint(config.ssh_rounds_min, config.ssh_rounds_max)):
            rounds.append((SSH_SEGMENT, SSH_SEGMENT, config.ssh_think.sample(rng)))
        return self._play_tcp_session(start, 22, rounds)

    def _play_background(self, start: float) -> list[PacketRecord]:
        """One-way datagram stream: no handshake, no turnaround."""
        config = self.config
        rng = self._rng
        client, server, port = self._endpoints()
        service = BACKGROUND_PORTS[rng.randrange(len(BACKGROUND_PORTS))]
        count = rng.randint(
            config.background_packets_min, config.background_packets_max
        )
        payload = rng.choice((180, 360, 760, 1180))
        out: list[PacketRecord] = []
        now = start
        for _ in range(count):
            out.append(
                self._packet(
                    now, client, server, port, service,
                    protocol=PROTO_UDP, payload=payload,
                )
            )
            now += rng.expovariate(1.0 / config.background_interval)
        return out


def generate_mixed_trace(
    duration: float = 100.0,
    flow_rate: float = 40.0,
    seed: int = 23,
    config: MixedTrafficConfig | None = None,
) -> Trace:
    """Convenience wrapper: one call, one mixed-protocol trace."""
    if config is None:
        config = MixedTrafficConfig(
            duration=duration, flow_rate=flow_rate, seed=seed
        )
    return MixedTrafficGenerator(config).generate()
