"""CDF-sampled partition/aggregate traffic — web-search and data-mining.

The datacenter-workload literature publishes measured flow-size CDFs for
two canonical applications: the *web-search* mix (query responses from a
few KB to tens of MB, heavy middle) and the *data-mining* mix (half of
the flows a single KB, a tail six orders of magnitude longer).  The
generator reproduces the partition/aggregate traffic shape those numbers
come from: queries arrive at an aggregator, fan out to ``fanin`` workers,
and the workers' responses arrive back *simultaneously* — the incast
pattern that makes these mixes a stress test for any per-flow machinery.

Flow sizes are drawn by inverse-CDF over the published sample points
(:class:`CdfSizeDistribution` — a step function, exactly how the
reference generators replay them), split evenly over the fan-in, and
streamed back as MSS segments in slow-start bursts with delayed ACKs.
Everything draws from one seeded :class:`random.Random`, so a scenario
is a pure function of its seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN
from repro.synth.addresses import AddressPool, AddressPoolConfig
from repro.synth.distributions import LogNormal
from repro.trace.trace import Trace

MSS = 1460
"""Maximum segment size of worker response data."""

QUERY_BYTES = 160
"""Aggregator request payload (the partition step's query)."""


@dataclass(frozen=True)
class CdfSizeDistribution:
    """A flow-size distribution given as ``(cdf, size_kb)`` sample points.

    Sampling is the step-function inverse CDF over the published points
    (the smallest size whose cumulative probability covers the draw) —
    the same replay the reference datacenter generators use, so the
    produced mix matches the published numbers bucket for bucket.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("need at least one CDF sample point")
        previous = 0.0
        for cdf, size_kb in self.points:
            if not previous < cdf <= 1.0:
                raise ValueError(
                    f"CDF values must ascend within (0, 1]: {self.points}"
                )
            if size_kb <= 0:
                raise ValueError(f"flow sizes must be positive: {size_kb}")
            previous = cdf
        if self.points[-1][0] != 1.0:
            raise ValueError("the last CDF point must close at 1.0")

    def sample_bytes(self, rng: random.Random) -> int:
        """One flow-size draw in bytes."""
        u = rng.random()
        for cdf, size_kb in self.points:
            if u <= cdf:
                return int(size_kb * 1024)
        return int(self.points[-1][1] * 1024)

    def mean_bytes(self) -> float:
        """Analytic mean of the step distribution, in bytes."""
        total = 0.0
        previous = 0.0
        for cdf, size_kb in self.points:
            total += (cdf - previous) * size_kb * 1024
            previous = cdf
        return total


WEB_SEARCH_FLOW_SIZES = CdfSizeDistribution(
    points=(
        (0.15, 6.0), (0.2, 13.0), (0.3, 19.0), (0.4, 33.0), (0.53, 53.0),
        (0.6, 133.0), (0.7, 667.0), (0.8, 1333.0), (0.9, 3333.0),
        (0.97, 6667.0), (1.0, 20000.0),
    )
)
"""The published web-search flow-size CDF (KB)."""

DATA_MINING_FLOW_SIZES = CdfSizeDistribution(
    points=(
        (0.5, 1.0), (0.6, 2.0), (0.7, 3.0), (0.8, 7.0), (0.9, 267.0),
        (0.95, 2107.0), (0.99, 66667.0), (1.0, 666667.0),
    )
)
"""The published data-mining flow-size CDF (KB) — half mice, a huge tail."""


@dataclass(frozen=True)
class CdfTrafficConfig:
    """Knobs of the partition/aggregate generator.

    ``flow_rate`` counts *worker flows* per second (queries arrive at
    ``flow_rate / fanin``), so packet volume stays comparable across
    scenarios for the same rate.  ``max_segments_per_flow`` truncates the
    data-mining tail — the published maximum is hundreds of MB, which no
    bounded test workload should literally replay.
    """

    duration: float = 100.0
    flow_rate: float = 40.0
    seed: int = 11
    sizes: CdfSizeDistribution = WEB_SEARCH_FLOW_SIZES
    fanin: int = 8
    start_jitter: float = 0.002
    max_segments_per_flow: int = 1024
    rtt: LogNormal = LogNormal.from_median_sigma(0.004, 0.4)
    back_to_back_gap: float = 0.00002
    ack_every: int = 2
    pool: AddressPoolConfig = field(default_factory=AddressPoolConfig)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.flow_rate <= 0:
            raise ValueError(f"flow_rate must be positive: {self.flow_rate}")
        if self.fanin < 1:
            raise ValueError(f"fanin must be >= 1: {self.fanin}")
        if self.start_jitter < 0:
            raise ValueError(f"start_jitter cannot be negative: {self.start_jitter}")
        if self.max_segments_per_flow < 1:
            raise ValueError(
                f"max_segments_per_flow must be >= 1: {self.max_segments_per_flow}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {self.ack_every}")


class CdfTrafficGenerator:
    """Deterministic (seeded) partition/aggregate traffic source."""

    initial_cwnd = 4
    max_cwnd = 32

    def __init__(self, config: CdfTrafficConfig | None = None) -> None:
        self.config = config or CdfTrafficConfig()
        self._rng = random.Random(self.config.seed)
        self._pool = AddressPool(self.config.pool, seed=self.config.seed ^ 0xCDF)
        self._next_port = 1024

    def generate(self) -> Trace:
        """Generate the whole trace (time-sorted)."""
        config = self.config
        rng = self._rng
        query_rate = config.flow_rate / config.fanin
        packets: list[PacketRecord] = []
        arrival = 0.0
        while True:
            arrival += rng.expovariate(query_rate)
            if arrival >= config.duration:
                break
            packets.extend(self._play_query(arrival))
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name=f"cdf-{config.seed}")

    def _play_query(self, arrival: float) -> list[PacketRecord]:
        """One partition/aggregate round: ``fanin`` simultaneous responses."""
        config = self.config
        rng = self._rng
        aggregator = self._pool.pick_client(rng)
        total_segments = max(
            1, math.ceil(config.sizes.sample_bytes(rng) / MSS)
        )
        per_worker = min(
            config.max_segments_per_flow,
            max(1, math.ceil(total_segments / config.fanin)),
        )
        out: list[PacketRecord] = []
        for _ in range(config.fanin):
            worker = self._pool.pick_server(rng)
            start = arrival + rng.uniform(0.0, config.start_jitter)
            out.extend(self._play_flow(aggregator, worker, start, per_worker))
        return out

    def _play_flow(
        self, aggregator: int, worker: int, start: float, segments: int
    ) -> list[PacketRecord]:
        """One aggregator→worker request and its bursted response."""
        config = self.config
        rng = self._rng
        gap = config.back_to_back_gap
        rtt = max(0.0005, config.rtt.sample(rng))
        self._next_port += 1
        if self._next_port > 64000:
            self._next_port = 1024
        port = self._next_port
        state = {"cseq": rng.getrandbits(32), "sseq": rng.getrandbits(32)}
        out: list[PacketRecord] = []

        def emit(
            timestamp: float, client_to_server: bool, flags: int, payload: int
        ) -> None:
            if client_to_server:
                src_ip, dst_ip = aggregator, worker
                src_port, dst_port = port, 80
                seq, ack = state["cseq"], state["sseq"]
                state["cseq"] = (state["cseq"] + max(payload, 1)) & 0xFFFFFFFF
            else:
                src_ip, dst_ip = worker, aggregator
                src_port, dst_port = 80, port
                seq, ack = state["sseq"], state["cseq"]
                state["sseq"] = (state["sseq"] + max(payload, 1)) & 0xFFFFFFFF
            out.append(
                PacketRecord(
                    timestamp=timestamp,
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=src_port,
                    dst_port=dst_port,
                    flags=flags,
                    payload_len=payload,
                    seq=seq,
                    ack=ack,
                    ip_id=rng.getrandbits(16),
                    ttl=plausible_ttl(src_ip),
                    window=plausible_window(src_ip),
                )
            )

        now = start
        emit(now, True, TCP_SYN, 0)
        now += rtt
        emit(now, False, TCP_SYN | TCP_ACK, 0)
        now += rtt
        emit(now, True, TCP_ACK, 0)
        now += gap
        emit(now, True, TCP_ACK, QUERY_BYTES)

        cwnd = self.initial_cwnd
        remaining = segments
        burst_start = now + rtt
        while remaining > 0:
            burst = min(cwnd, remaining)
            for index in range(burst):
                emit(burst_start + index * gap, False, TCP_ACK, MSS)
            remaining -= burst
            ack_count = math.ceil(burst / config.ack_every)
            ack_time = burst_start + rtt
            for index in range(ack_count):
                emit(ack_time + index * gap, True, TCP_ACK, 0)
            burst_start = ack_time + ack_count * gap
            cwnd = min(cwnd * 2, self.max_cwnd)

        emit(burst_start, True, TCP_FIN | TCP_ACK, 0)
        return out


def generate_cdf_trace(
    duration: float = 100.0,
    flow_rate: float = 40.0,
    seed: int = 11,
    sizes: CdfSizeDistribution = WEB_SEARCH_FLOW_SIZES,
    config: CdfTrafficConfig | None = None,
) -> Trace:
    """Convenience wrapper: one call, one partition/aggregate trace."""
    if config is None:
        config = CdfTrafficConfig(
            duration=duration, flow_rate=flow_rate, seed=seed, sizes=sizes
        )
    return CdfTrafficGenerator(config).generate()
