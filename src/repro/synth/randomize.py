"""The "random destinations" control trace of section 6.1.

"A third trace was generated assigning random IP destinations addresses,
but maintaining the same temporal distribution of the Original trace."

Every packet keeps its timestamp, size, flags and ports; only the
addresses are replaced by uniform random draws.  Each *flow* keeps one
consistent random destination (otherwise the notion of a flow would
dissolve entirely and even the packet count per destination would lose
meaning); clients are re-randomized the same way.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.net.flowkey import FiveTuple
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace


def _random_address(rng: random.Random) -> int:
    """Uniform random unicast-looking address (first octet 1..223)."""
    first = rng.randrange(1, 224)
    return (first << 24) | rng.getrandbits(24)


def randomize_destinations(
    trace: Trace, seed: int = 97, per_flow: bool = True
) -> Trace:
    """Replace addresses with uniform random ones, keeping timing.

    ``per_flow=True`` (default) draws one address pair per flow;
    ``per_flow=False`` re-draws per packet (the most hostile variant —
    destroys all locality including flow identity).
    """
    rng = random.Random(seed)
    packets: list[PacketRecord] = []
    mapping: dict[FiveTuple, tuple[int, int]] = {}

    for packet in trace.packets:
        if per_flow:
            key = packet.five_tuple().canonical()
            pair = mapping.get(key)
            if pair is None:
                pair = (_random_address(rng), _random_address(rng))
                mapping[key] = pair
            # Preserve direction: the canonical key's src gets pair[0].
            if packet.five_tuple() == key:
                src, dst = pair
            else:
                dst, src = pair
        else:
            src, dst = _random_address(rng), _random_address(rng)
        packets.append(replace(packet, src_ip=src, dst_ip=dst))

    return Trace(packets, name=f"{trace.name}-random")
