"""Flood traffic — SYN and UDP burst patterns against locality-driven victims.

Floods are the adversarial corner of the workload space: millions of
half-open "flows" that never complete a handshake, spoofed sources drawn
fresh per packet from the whole address space, and victim selection with
strong temporal locality (an attack dwells on a target, then moves on).
Per-flow machinery that amortizes state over long conversations gets no
amortization here — which is exactly why a flood belongs in the zoo.

Victims come from the paper's own :class:`~repro.synth.lrustack.LruStackModel`
(hot targets stay hot), spoofed sources from the fractal
:class:`~repro.synth.fractal.MultiplicativeCascade`.  Burst arrivals are
Poisson; every draw comes from one seeded :class:`random.Random`, so the
trace is a pure function of its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.packet import PROTO_TCP, PROTO_UDP, PacketRecord
from repro.net.tcp import TCP_SYN
from repro.synth.fractal import MultiplicativeCascade
from repro.synth.lrustack import LruStackModel
from repro.trace.trace import Trace

SYN_PORTS = (80, 443, 22, 25)
"""Services a SYN flood aims at."""

UDP_PORTS = (53, 123, 1900, 11211)
"""Reflection/amplification targets of a UDP flood."""

UDP_PAYLOADS = (64, 512, 1024, 1472)
"""Datagram sizes a UDP flood cycles through (up to near-MTU)."""


@dataclass(frozen=True)
class FloodTrafficConfig:
    """Knobs of the flood generator.

    ``flow_rate`` is repurposed as intensity: bursts arrive at
    ``flow_rate / burst_rate_divisor`` (about one burst per eight flow
    arrivals at the defaults), keeping packet volume in the same league
    as the benign scenarios at the same rate.  ``syn_prob``
    splits bursts between SYN floods (TCP, 40-byte packets, random
    spoofed sources per packet) and UDP floods (large datagrams, a small
    rotating source set per burst).
    """

    duration: float = 100.0
    flow_rate: float = 40.0
    seed: int = 37
    syn_prob: float = 0.7
    packets_per_burst_min: int = 40
    packets_per_burst_max: int = 400
    burst_pps: float = 4000.0
    burst_rate_divisor: float = 8.0
    victims: LruStackModel = field(default_factory=LruStackModel)
    sources: MultiplicativeCascade = field(default_factory=MultiplicativeCascade)
    udp_source_count: int = 8

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.flow_rate <= 0:
            raise ValueError(f"flow_rate must be positive: {self.flow_rate}")
        if not 0.0 <= self.syn_prob <= 1.0:
            raise ValueError(f"syn_prob must be in [0,1]: {self.syn_prob}")
        if not 1 <= self.packets_per_burst_min <= self.packets_per_burst_max:
            raise ValueError(
                "need 1 <= packets_per_burst_min <= packets_per_burst_max"
            )
        if self.burst_pps <= 0:
            raise ValueError(f"burst_pps must be positive: {self.burst_pps}")
        if self.burst_rate_divisor <= 0:
            raise ValueError(
                f"burst_rate_divisor must be positive: {self.burst_rate_divisor}"
            )
        if self.udp_source_count < 1:
            raise ValueError(
                f"udp_source_count must be >= 1: {self.udp_source_count}"
            )


class FloodTrafficGenerator:
    """Deterministic (seeded) SYN/UDP burst traffic source."""

    def __init__(self, config: FloodTrafficConfig | None = None) -> None:
        self.config = config or FloodTrafficConfig()
        self._rng = random.Random(self.config.seed)

    def generate(self) -> Trace:
        """Generate the whole trace (time-sorted).

        Burst arrival times are drawn first and the victim list second
        (one batched :meth:`LruStackModel.address_stream` call), so the
        locality model sees the same draw sequence regardless of how the
        individual bursts later unfold.  If the Poisson draw leaves a
        short window empty, one burst is forced inside it — a flood
        trace is never packetless.
        """
        config = self.config
        rng = self._rng
        burst_rate = config.flow_rate / config.burst_rate_divisor
        arrivals: list[float] = []
        arrival = 0.0
        while True:
            arrival += rng.expovariate(burst_rate)
            if arrival >= config.duration:
                break
            arrivals.append(arrival)
        if not arrivals:
            arrivals.append(rng.uniform(0.0, config.duration / 2.0))
        victims = config.victims.address_stream(rng, len(arrivals))
        packets: list[PacketRecord] = []
        for start, victim in zip(arrivals, victims):
            if rng.random() < config.syn_prob:
                packets.extend(self._play_syn_burst(start, victim))
            else:
                packets.extend(self._play_udp_burst(start, victim))
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name=f"flood-{config.seed}")

    def _burst_times(self, start: float, count: int) -> list[float]:
        rng = self._rng
        times = []
        now = start
        for _ in range(count):
            times.append(now)
            now += rng.expovariate(self.config.burst_pps)
        return times

    def _play_syn_burst(self, start: float, victim: int) -> list[PacketRecord]:
        """Half-open connection attempts: a fresh spoofed source per SYN."""
        config = self.config
        rng = self._rng
        count = rng.randint(
            config.packets_per_burst_min, config.packets_per_burst_max
        )
        service = SYN_PORTS[rng.randrange(len(SYN_PORTS))]
        out = []
        for timestamp in self._burst_times(start, count):
            source = config.sources.sample(rng)
            out.append(
                PacketRecord(
                    timestamp=timestamp,
                    src_ip=source,
                    dst_ip=victim,
                    src_port=rng.randint(1024, 65000),
                    dst_port=service,
                    protocol=PROTO_TCP,
                    flags=TCP_SYN,
                    payload_len=0,
                    seq=rng.getrandbits(32),
                    ack=0,
                    ip_id=rng.getrandbits(16),
                    ttl=plausible_ttl(source),
                    window=plausible_window(source),
                )
            )
        return out

    def _play_udp_burst(self, start: float, victim: int) -> list[PacketRecord]:
        """Volumetric datagrams from a small rotating spoofed-source set."""
        config = self.config
        rng = self._rng
        count = rng.randint(
            config.packets_per_burst_min, config.packets_per_burst_max
        )
        service = UDP_PORTS[rng.randrange(len(UDP_PORTS))]
        sources = [
            (config.sources.sample(rng), rng.randint(1024, 65000))
            for _ in range(config.udp_source_count)
        ]
        payload = UDP_PAYLOADS[rng.randrange(len(UDP_PAYLOADS))]
        out = []
        for index, timestamp in enumerate(self._burst_times(start, count)):
            source, port = sources[index % len(sources)]
            out.append(
                PacketRecord(
                    timestamp=timestamp,
                    src_ip=source,
                    dst_ip=victim,
                    src_port=port,
                    dst_port=service,
                    protocol=PROTO_UDP,
                    flags=0,
                    payload_len=payload,
                    seq=0,
                    ack=0,
                    ip_id=rng.getrandbits(16),
                    ttl=plausible_ttl(source),
                    window=plausible_window(source),
                )
            )
        return out


def generate_flood_trace(
    duration: float = 100.0,
    flow_rate: float = 40.0,
    seed: int = 37,
    config: FloodTrafficConfig | None = None,
) -> Trace:
    """Convenience wrapper: one call, one flood trace."""
    if config is None:
        config = FloodTrafficConfig(
            duration=duration, flow_rate=flow_rate, seed=seed
        )
    return FloodTrafficGenerator(config).generate()
