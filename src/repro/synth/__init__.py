"""Synthetic traffic substrate.

The paper evaluates on captured RedIRIS/NLANR traces that are not
available; this subpackage generates calibrated substitutes:

* :mod:`repro.synth.webgen` — Web traffic with TCP session semantics and
  the paper's measured flow statistics (98% of flows short, 75% of
  packets, 80% of bytes in short flows);
* :mod:`repro.synth.randomize` — the "random IP destinations, same
  temporal distribution" control trace of section 6.1;
* :mod:`repro.synth.fractal` + :mod:`repro.synth.lrustack` — the
  "fracexp" control trace (multiplicative-process addresses launched
  with an LRU stack model and exponential inter-packet times);
* :mod:`repro.synth.scenarios` — the named-workload registry over all of
  the above plus the zoo additions: partition/aggregate incast mixes
  (:mod:`repro.synth.cdfgen`), multi-protocol blends
  (:mod:`repro.synth.mixedgen`), SYN/UDP floods
  (:mod:`repro.synth.floodgen`) and multipath striping
  (:mod:`repro.synth.mptcpgen`).
"""

from repro.synth.distributions import (
    BoundedPareto,
    DiscreteDistribution,
    Exponential,
    LogNormal,
    Zipf,
)
from repro.synth.webgen import WebTrafficConfig, WebTrafficGenerator, generate_web_trace
from repro.synth.p2pgen import P2PTrafficConfig, P2PTrafficGenerator, generate_p2p_trace
from repro.synth.addresses import AddressPool, AddressPoolConfig
from repro.synth.randomize import randomize_destinations
from repro.synth.fractal import MultiplicativeCascade
from repro.synth.lrustack import LruStackModel, generate_fracexp_trace
from repro.synth.cdfgen import (
    DATA_MINING_FLOW_SIZES,
    WEB_SEARCH_FLOW_SIZES,
    CdfSizeDistribution,
    CdfTrafficConfig,
    CdfTrafficGenerator,
    generate_cdf_trace,
)
from repro.synth.mixedgen import (
    MixedTrafficConfig,
    MixedTrafficGenerator,
    generate_mixed_trace,
)
from repro.synth.floodgen import (
    FloodTrafficConfig,
    FloodTrafficGenerator,
    generate_flood_trace,
)
from repro.synth.mptcpgen import (
    MptcpTrafficConfig,
    MptcpTrafficGenerator,
    generate_mptcp_trace,
)
from repro.synth.scenarios import (
    Scenario,
    get_scenario,
    iter_scenarios,
    scenario_names,
)

__all__ = [
    "BoundedPareto",
    "DiscreteDistribution",
    "Exponential",
    "LogNormal",
    "Zipf",
    "WebTrafficConfig",
    "WebTrafficGenerator",
    "generate_web_trace",
    "P2PTrafficConfig",
    "P2PTrafficGenerator",
    "generate_p2p_trace",
    "AddressPool",
    "AddressPoolConfig",
    "randomize_destinations",
    "MultiplicativeCascade",
    "LruStackModel",
    "generate_fracexp_trace",
    "CdfSizeDistribution",
    "CdfTrafficConfig",
    "CdfTrafficGenerator",
    "WEB_SEARCH_FLOW_SIZES",
    "DATA_MINING_FLOW_SIZES",
    "generate_cdf_trace",
    "MixedTrafficConfig",
    "MixedTrafficGenerator",
    "generate_mixed_trace",
    "FloodTrafficConfig",
    "FloodTrafficGenerator",
    "generate_flood_trace",
    "MptcpTrafficConfig",
    "MptcpTrafficGenerator",
    "generate_mptcp_trace",
    "Scenario",
    "get_scenario",
    "iter_scenarios",
    "scenario_names",
]
