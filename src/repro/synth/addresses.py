"""Address pools with Web-like spatial and temporal locality.

The paper's "semantic properties" include "spatial and temporal locality
of IP address" and "IP address structure".  The pool models them with:

* a fixed set of server addresses clustered into class B/C subnets
  (spatial locality / address structure), and
* Zipf popularity over servers (temporal locality — hot servers recur,
  which is what makes the radix-tree cache behaviour of section 6
  non-uniform).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synth.distributions import Zipf


@dataclass(frozen=True)
class AddressPoolConfig:
    """Shape of the synthetic address population.

    ``server_count`` servers spread over ``server_subnets`` class-C-like
    /24 subnets; ``client_count`` clients over ``client_subnets`` subnets;
    ``popularity_s`` is the Zipf exponent of server popularity (≈1 is the
    classic Web value).
    """

    server_count: int = 400
    server_subnets: int = 40
    client_count: int = 4000
    client_subnets: int = 200
    popularity_s: float = 1.0

    def __post_init__(self) -> None:
        if self.server_count < 1 or self.client_count < 1:
            raise ValueError("need at least one server and one client")
        if self.server_subnets < 1 or self.client_subnets < 1:
            raise ValueError("need at least one subnet on each side")


class AddressPool:
    """Deterministic population of server and client addresses."""

    def __init__(
        self, config: AddressPoolConfig | None = None, seed: int = 7
    ) -> None:
        self.config = config or AddressPoolConfig()
        rng = random.Random(seed)
        self._servers = self._build_population(
            rng,
            self.config.server_count,
            self.config.server_subnets,
            first_octet_range=(192, 224),  # class C space
        )
        self._clients = self._build_population(
            rng,
            self.config.client_count,
            self.config.client_subnets,
            first_octet_range=(128, 192),  # class B space
        )
        self._popularity = Zipf(self.config.server_count, self.config.popularity_s)

    @staticmethod
    def _build_population(
        rng: random.Random,
        count: int,
        subnets: int,
        first_octet_range: tuple[int, int],
    ) -> list[int]:
        """``count`` unique addresses clustered into ``subnets`` /24s."""
        bases: list[int] = []
        seen: set[int] = set()
        while len(bases) < subnets:
            first = rng.randrange(*first_octet_range)
            base = (first << 24) | (rng.getrandbits(16) << 8)
            if base not in seen:
                seen.add(base)
                bases.append(base)
        addresses: list[int] = []
        used: set[int] = set()
        while len(addresses) < count:
            base = bases[rng.randrange(subnets)]
            address = base | rng.randrange(1, 255)
            if address not in used:
                used.add(address)
                addresses.append(address)
        return addresses

    @property
    def servers(self) -> list[int]:
        """All server addresses (copy-safe: treat as read-only)."""
        return self._servers

    @property
    def clients(self) -> list[int]:
        """All client addresses (treat as read-only)."""
        return self._clients

    def pick_server(self, rng: random.Random) -> int:
        """A Zipf-popular server address (temporal locality)."""
        return self._servers[self._popularity.sample(rng)]

    def pick_client(self, rng: random.Random) -> int:
        """A uniform random client address."""
        return self._clients[rng.randrange(len(self._clients))]
