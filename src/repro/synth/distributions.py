"""Random distributions used by the traffic generators.

All distributions draw from an injected :class:`random.Random` so every
generated trace is reproducible from its seed.  The heavy-tailed shapes
(bounded Pareto for response sizes, Zipf for server popularity) are the
standard choices for Web traffic models — the "mice and elephants"
literature the paper cites ([10], [11]) motivates exactly these tails.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto distribution truncated to ``[xmin, xmax]``.

    Sampled by inverse-CDF; ``alpha`` is the tail index (smaller = heavier
    tail).
    """

    alpha: float
    xmin: float
    xmax: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive: {self.alpha}")
        if not 0 < self.xmin < self.xmax:
            raise ValueError(f"need 0 < xmin < xmax: {self.xmin}, {self.xmax}")

    def sample(self, rng: random.Random) -> float:
        """One draw in ``[xmin, xmax]``."""
        u = rng.random()
        ha = self.xmax**self.alpha
        la = self.xmin**self.alpha
        # Inverse CDF of the bounded Pareto.
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        """Analytic mean of the bounded Pareto."""
        a, lo, hi = self.alpha, self.xmin, self.xmax
        if a == 1.0:
            return math.log(hi / lo) * lo * hi / (hi - lo)
        num = lo**a / (1 - (lo / hi) ** a)
        return num * (a / (a - 1)) * (lo ** (1 - a) - hi ** (1 - a))


@dataclass(frozen=True)
class LogNormal:
    """Log-normal distribution (used for RTTs)."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma cannot be negative: {self.sigma}")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        """Analytic mean ``exp(mu + sigma^2 / 2)``."""
        return math.exp(self.mu + self.sigma**2 / 2)

    @classmethod
    def from_median_sigma(cls, median: float, sigma: float) -> "LogNormal":
        """Construct from the (more intuitive) median."""
        if median <= 0:
            raise ValueError(f"median must be positive: {median}")
        return cls(math.log(median), sigma)


@dataclass(frozen=True)
class Exponential:
    """Exponential distribution (Poisson arrivals, fracexp inter-packets)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate}")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)

    def mean(self) -> float:
        return 1.0 / self.rate


class Zipf:
    """Zipf distribution over ranks ``0..n-1`` with exponent ``s``.

    ``P(rank k) ∝ 1 / (k+1)**s``.  Sampling is O(log n) via a
    precomputed CDF.
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n < 1:
            raise ValueError(f"need at least one rank: {n}")
        if s < 0:
            raise ValueError(f"exponent cannot be negative: {s}")
        self.n = n
        self.s = s
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        running = 0.0
        for w in weights:
            running += w / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        """One rank draw in ``[0, n)``."""
        return bisect.bisect_left(self._cdf, rng.random())

    def probability(self, rank: int) -> float:
        """``P(rank)``."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank out of range: {rank}")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous


class DiscreteDistribution:
    """An explicit finite distribution ``{value: probability}``.

    Used to feed measured flow-length PMFs (``P_n``) back into the
    analytic models and generators.
    """

    def __init__(self, pmf: dict[int, float]) -> None:
        if not pmf:
            raise ValueError("empty distribution")
        if any(p < 0 for p in pmf.values()):
            raise ValueError("negative probability")
        total = sum(pmf.values())
        if total <= 0:
            raise ValueError("zero total probability")
        self._values: list[int] = sorted(pmf)
        self._cdf: list[float] = []
        running = 0.0
        for value in self._values:
            running += pmf[value] / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0
        self._pmf = {v: pmf[v] / total for v in self._values}

    def sample(self, rng: random.Random) -> int:
        """One value draw."""
        index = bisect.bisect_left(self._cdf, rng.random())
        return self._values[index]

    def probability(self, value: int) -> float:
        """``P(value)`` (0 for unknown values)."""
        return self._pmf.get(value, 0.0)

    def values(self) -> Sequence[int]:
        """Support of the distribution, ascending."""
        return tuple(self._values)

    def mean(self) -> float:
        """Expected value."""
        return sum(v * p for v, p in self._pmf.items())
