"""Synthetic Web-traffic generator — the RedIRIS-trace substitute.

Generates TCP/HTTP sessions with full protocol semantics so that every
code path of the compressor (handshake flags, acknowledgment dependence,
payload classes, RTT estimation, short/long split) is exercised.

Two session populations reproduce the paper's section 3 statistics
(~98% of flows below 51 packets carrying ~75% of packets and ~80% of
bytes):

* **simple sessions** (the vast majority) — one HTTP request, a
  heavy-tailed (bounded Pareto) response streamed as MSS segments with
  delayed client ACKs; these are the short "mice".
* **persistent sessions** (~2%) — long-lived keep-alive connections with
  many small request/response rounds; these are the >50-packet
  "elephants", packet-heavy but byte-light, which is what tilts the byte
  share of short flows above their packet share as the paper measured.

Timing: per-flow log-normal RTT; *dependent* packets (section 2's
acknowledgment dependence) wait one RTT, back-to-back packets are
separated by a small serialization gap.  Addresses: Zipf-popular servers,
uniform clients (:mod:`repro.synth.addresses`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN
from repro.synth.addresses import AddressPool, AddressPoolConfig
from repro.synth.distributions import BoundedPareto, LogNormal
from repro.trace.trace import Trace

MSS = 1460
"""Maximum segment size for simple-session response data."""

PERSISTENT_SEGMENT = 536
"""Small response segment of persistent-session rounds."""

REQUEST_BYTES = 300
"""Representative HTTP request payload."""


@dataclass(frozen=True)
class WebTrafficConfig:
    """Knobs of the Web generator; defaults reproduce the paper's stats.

    ``response_bytes`` shapes the simple-session tail; ``persistent_prob``
    and the round range shape the long-flow population.  The defaults were
    calibrated against the paper's 98% / 75% / 80% short-flow shares.
    """

    duration: float = 100.0
    flow_rate: float = 40.0
    seed: int = 42
    response_bytes: BoundedPareto = BoundedPareto(alpha=1.3, xmin=2000.0, xmax=70000.0)
    persistent_prob: float = 0.02
    persistent_rounds_min: int = 16
    persistent_rounds_max: int = 90
    aborted_prob: float = 0.03
    rtt: LogNormal = LogNormal.from_median_sigma(0.060, 0.5)
    back_to_back_gap: float = 0.0002
    ack_every: int = 2
    pool: AddressPoolConfig = AddressPoolConfig()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.flow_rate <= 0:
            raise ValueError(f"flow_rate must be positive: {self.flow_rate}")
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1: {self.ack_every}")
        if not 0.0 <= self.persistent_prob <= 1.0:
            raise ValueError(
                f"persistent_prob must be in [0,1]: {self.persistent_prob}"
            )
        if not 1 <= self.persistent_rounds_min <= self.persistent_rounds_max:
            raise ValueError("need 1 <= rounds_min <= rounds_max")
        if not 0.0 <= self.aborted_prob <= 1.0:
            raise ValueError(f"aborted_prob must be in [0,1]: {self.aborted_prob}")


@dataclass
class _Session:
    """Bookkeeping for one generated TCP session."""

    client_ip: int
    server_ip: int
    client_port: int
    rtt: float
    start: float
    packets: list[PacketRecord] = field(default_factory=list)


class WebTrafficGenerator:
    """Deterministic (seeded) Web traffic source."""

    initial_cwnd = 2
    max_cwnd = 16

    def __init__(self, config: WebTrafficConfig | None = None) -> None:
        self.config = config or WebTrafficConfig()
        self._rng = random.Random(self.config.seed)
        self._pool = AddressPool(self.config.pool, seed=self.config.seed ^ 0x5EED)
        self._next_port = 1024

    def generate(self) -> Trace:
        """Generate the whole trace (time-sorted)."""
        config = self.config
        rng = self._rng
        packets: list[PacketRecord] = []
        arrival = 0.0
        while True:
            arrival += rng.expovariate(config.flow_rate)
            if arrival >= config.duration:
                break
            session = self._open_session(arrival)
            draw = rng.random()
            if draw < config.aborted_prob:
                self._play_aborted(session)
            elif draw < config.aborted_prob + config.persistent_prob:
                self._play_persistent(session)
            else:
                self._play_simple(session)
            packets.extend(session.packets)
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name=f"web-{config.seed}")

    # -- session construction ---------------------------------------------

    def _open_session(self, start: float) -> _Session:
        rng = self._rng
        self._next_port += 1
        if self._next_port > 64000:
            self._next_port = 1024
        return _Session(
            client_ip=self._pool.pick_client(rng),
            server_ip=self._pool.pick_server(rng),
            client_port=self._next_port,
            rtt=max(0.002, self.config.rtt.sample(rng)),
            start=start,
        )

    def _emit(
        self,
        session: _Session,
        timestamp: float,
        client_to_server: bool,
        flags: int,
        payload: int,
        state: dict,
    ) -> None:
        rng = self._rng
        if client_to_server:
            src_ip, dst_ip = session.client_ip, session.server_ip
            src_port, dst_port = session.client_port, 80
            seq, ack = state["cseq"], state["sseq"]
            state["cseq"] = (state["cseq"] + max(payload, 1)) & 0xFFFFFFFF
        else:
            src_ip, dst_ip = session.server_ip, session.client_ip
            src_port, dst_port = 80, session.client_port
            seq, ack = state["sseq"], state["cseq"]
            state["sseq"] = (state["sseq"] + max(payload, 1)) & 0xFFFFFFFF
        session.packets.append(
            PacketRecord(
                timestamp=timestamp,
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                flags=flags,
                payload_len=payload,
                seq=seq,
                ack=ack,
                ip_id=rng.getrandbits(16),
                ttl=plausible_ttl(src_ip),
                window=plausible_window(src_ip),
            )
        )

    def _handshake(self, session: _Session, state: dict) -> float:
        """Three-way handshake; returns the time after the final ACK."""
        now = session.start
        self._emit(session, now, True, TCP_SYN, 0, state)
        now += session.rtt
        self._emit(session, now, False, TCP_SYN | TCP_ACK, 0, state)
        now += session.rtt
        self._emit(session, now, True, TCP_ACK, 0, state)
        return now

    def _play_simple(self, session: _Session) -> None:
        """One request, slow-start-bursted response, FIN.

        The server streams in congestion-window rounds: a burst of
        back-to-back segments, then the client's delayed ACKs pass the
        capture point one RTT later, gating the next (doubled) burst.
        This is the timing a single-object HTTP transfer shows on the
        wire, and it keeps the paper's "dependent packets wait one RTT"
        decompression model close to physical flow durations.
        """
        config = self.config
        gap = config.back_to_back_gap
        rng = self._rng
        state = {"cseq": rng.getrandbits(32), "sseq": rng.getrandbits(32)}
        response = config.response_bytes.sample(rng)
        segments = max(1, math.ceil(response / MSS))

        now = self._handshake(session, state)
        now += gap
        self._emit(session, now, True, TCP_ACK, REQUEST_BYTES, state)

        cwnd = self.initial_cwnd
        remaining = segments
        burst_start = now + session.rtt
        while remaining > 0:
            burst = min(cwnd, remaining)
            for index in range(burst):
                self._emit(
                    session, burst_start + index * gap, False, TCP_ACK, MSS, state
                )
            remaining -= burst
            ack_count = math.ceil(burst / config.ack_every)
            ack_time = burst_start + session.rtt
            for index in range(ack_count):
                self._emit(
                    session, ack_time + index * gap, True, TCP_ACK, 0, state
                )
            burst_start = ack_time + ack_count * gap
            cwnd = min(cwnd * 2, self.max_cwnd)

        self._emit(session, burst_start, True, TCP_FIN | TCP_ACK, 0, state)

    def _play_aborted(self, session: _Session) -> None:
        """A connection reset right after the handshake (3-packet flow)."""
        state = {
            "cseq": self._rng.getrandbits(32),
            "sseq": self._rng.getrandbits(32),
        }
        now = session.start
        self._emit(session, now, True, TCP_SYN, 0, state)
        now += session.rtt
        self._emit(session, now, False, TCP_SYN | TCP_ACK, 0, state)
        now += session.rtt
        self._emit(session, now, True, TCP_RST, 0, state)

    def _play_persistent(self, session: _Session) -> None:
        """Keep-alive session: many small request/response rounds."""
        config = self.config
        gap = config.back_to_back_gap
        rng = self._rng
        state = {"cseq": rng.getrandbits(32), "sseq": rng.getrandbits(32)}
        rounds = rng.randint(
            config.persistent_rounds_min, config.persistent_rounds_max
        )

        now = self._handshake(session, state)
        for _ in range(rounds):
            # Request rides behind the previous client packet.
            now += gap
            self._emit(session, now, True, TCP_ACK, REQUEST_BYTES, state)
            # Small response waits one RTT (dependent on the request).
            now += session.rtt
            self._emit(session, now, False, TCP_ACK, PERSISTENT_SEGMENT, state)
            # Client ACK turns the direction again (dependent).
            now += session.rtt
            self._emit(session, now, True, TCP_ACK, 0, state)
        now += gap
        self._emit(session, now, True, TCP_FIN | TCP_ACK, 0, state)

    # -- analytic helpers ---------------------------------------------------

    def expected_packets_simple(self, segments: int) -> int:
        """Packets of a simple session with ``segments`` data segments."""
        acks = math.ceil(segments / self.config.ack_every)
        return 3 + 1 + segments + acks + 1

    def expected_packets_persistent(self, rounds: int) -> int:
        """Packets of a persistent session with ``rounds`` rounds."""
        return 3 + 3 * rounds + 1


def generate_web_trace(
    duration: float = 100.0,
    flow_rate: float = 40.0,
    seed: int = 42,
    config: WebTrafficConfig | None = None,
) -> Trace:
    """Convenience wrapper: one call, one calibrated Web trace."""
    if config is None:
        config = WebTrafficConfig(duration=duration, flow_rate=flow_rate, seed=seed)
    return WebTrafficGenerator(config).generate()
