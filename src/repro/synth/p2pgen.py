"""P2P-like traffic generation — probing the method beyond Web traffic.

The paper restricts itself to Web flows and lists P2P as future work
("verifying also the applicability of the method to other types of
applications like P2P").  This generator produces the traffic shape that
stresses the compressor's assumptions:

* ephemeral ports on *both* sides (no port-80 anchor);
* symmetric, long-lived chunk-exchange sessions — both peers upload;
* a much heavier long-flow population (swarm transfers), so the
  short/long split and template reuse behave very differently;
* keep-alive/have-message chatter inside transfers.

The E7 experiment (`repro.experiments.p2p`) compresses this traffic and
compares ratio and template reuse against the Web workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN
from repro.synth.distributions import BoundedPareto, LogNormal
from repro.trace.trace import Trace

CHUNK_SEGMENT = 1460
HAVE_MESSAGE = 68  # BitTorrent-like control message size


@dataclass(frozen=True)
class P2PTrafficConfig:
    """Knobs of the P2P generator.

    ``chunk_segments`` shapes per-session transferred data (heavy tail,
    far heavier than Web responses); ``swap_prob`` is the chance the
    transfer direction flips after a chunk (symmetric exchange).
    """

    duration: float = 100.0
    session_rate: float = 8.0
    seed: int = 77
    peer_count: int = 300
    chunk_segments: BoundedPareto = BoundedPareto(alpha=1.1, xmin=8.0, xmax=2000.0)
    rtt: LogNormal = LogNormal.from_median_sigma(0.090, 0.6)
    back_to_back_gap: float = 0.0002
    swap_prob: float = 0.35
    ack_every: int = 2

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.session_rate <= 0:
            raise ValueError(f"session_rate must be positive: {self.session_rate}")
        if self.peer_count < 2:
            raise ValueError(f"need at least two peers: {self.peer_count}")
        if not 0.0 <= self.swap_prob <= 1.0:
            raise ValueError(f"swap_prob must be in [0,1]: {self.swap_prob}")


class P2PTrafficGenerator:
    """Deterministic (seeded) P2P traffic source."""

    def __init__(self, config: P2PTrafficConfig | None = None) -> None:
        self.config = config or P2PTrafficConfig()
        self._rng = random.Random(self.config.seed)
        self._peers = self._build_peers()

    def _build_peers(self) -> list[int]:
        rng = random.Random(self.config.seed ^ 0x9EE9)
        peers: set[int] = set()
        while len(peers) < self.config.peer_count:
            first = rng.randrange(1, 224)
            peers.add((first << 24) | rng.getrandbits(24))
        return sorted(peers)

    def generate(self) -> Trace:
        """Generate the whole P2P trace (time-sorted)."""
        config = self.config
        rng = self._rng
        packets: list[PacketRecord] = []
        arrival = 0.0
        while True:
            arrival += rng.expovariate(config.session_rate)
            if arrival >= config.duration:
                break
            packets.extend(self._play_session(arrival))
        packets.sort(key=lambda p: p.timestamp)
        return Trace(packets, name=f"p2p-{config.seed}")

    def _play_session(self, start: float) -> list[PacketRecord]:
        config = self.config
        rng = self._rng
        gap = config.back_to_back_gap
        rtt = max(0.004, config.rtt.sample(rng))

        peer_a, peer_b = rng.sample(self._peers, 2)
        port_a = rng.randint(1025, 65000)
        port_b = rng.randint(1025, 65000)
        state = {"aseq": rng.getrandbits(32), "bseq": rng.getrandbits(32)}
        out: list[PacketRecord] = []

        def emit(timestamp: float, a_to_b: bool, flags: int, payload: int) -> None:
            if a_to_b:
                src, dst = peer_a, peer_b
                sport, dport = port_a, port_b
                seq, ack = state["aseq"], state["bseq"]
                state["aseq"] = (state["aseq"] + max(payload, 1)) & 0xFFFFFFFF
            else:
                src, dst = peer_b, peer_a
                sport, dport = port_b, port_a
                seq, ack = state["bseq"], state["aseq"]
                state["bseq"] = (state["bseq"] + max(payload, 1)) & 0xFFFFFFFF
            out.append(
                PacketRecord(
                    timestamp=timestamp,
                    src_ip=src,
                    dst_ip=dst,
                    src_port=sport,
                    dst_port=dport,
                    flags=flags,
                    payload_len=payload,
                    seq=seq,
                    ack=ack,
                    ip_id=rng.getrandbits(16),
                    ttl=plausible_ttl(src),
                    window=plausible_window(src),
                )
            )

        # Handshake (peer A initiates).
        now = start
        emit(now, True, TCP_SYN, 0)
        now += rtt
        emit(now, False, TCP_SYN | TCP_ACK, 0)
        now += rtt
        emit(now, True, TCP_ACK, 0)

        # Chunk exchange: bursts of data with periodic direction swaps
        # and have-message chatter from the receiving side.
        segments = max(1, int(round(config.chunk_segments.sample(rng))))
        uploader_is_a = rng.random() < 0.5
        sent = 0
        while sent < segments:
            burst = min(rng.randint(4, 16), segments - sent)
            for index in range(burst):
                now += gap
                emit(now, uploader_is_a, TCP_ACK, CHUNK_SEGMENT)
                if (index + 1) % config.ack_every == 0:
                    now += gap
                    emit(now, not uploader_is_a, TCP_ACK, 0)
            sent += burst
            # Receiving peer announces the finished chunk.
            now += rtt
            emit(now, not uploader_is_a, TCP_ACK, HAVE_MESSAGE)
            if rng.random() < config.swap_prob:
                uploader_is_a = not uploader_is_a
                now += rtt  # request/unchoke turnaround

        now += gap
        emit(now, True, TCP_FIN | TCP_ACK, 0)
        return out


def generate_p2p_trace(
    duration: float = 100.0,
    session_rate: float = 8.0,
    seed: int = 77,
    config: P2PTrafficConfig | None = None,
) -> Trace:
    """Convenience wrapper: one call, one P2P trace."""
    if config is None:
        config = P2PTrafficConfig(
            duration=duration, session_rate=session_rate, seed=seed
        )
    return P2PTrafficGenerator(config).generate()
