"""Experiment harness: one module per paper table/figure.

=============  =====================================================
module         paper artifact
=============  =====================================================
``figure1``    Figure 1 — file size vs elapsed time, five methods
``flowstats``  section 3 statistics (98% / 75% / 80%)
``ratios``     section 5 analytic ratios (equations 5–8)
``figure2``    Figure 2 — memory-access CDF, four traces
``figure3``    Figure 3 — cache-miss-rate buckets, four traces
``apps``       section 6 cross-benchmark check (Route, NAT, RTR)
``ablation_*`` design-choice sweeps (weights, threshold, cutoff)
=============  =====================================================

Run any of them with ``python -m repro.experiments <name>`` or the
``repro-experiments`` console script.
"""

from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_traces

__all__ = ["ExperimentConfig", "ExperimentResult", "standard_traces"]
