"""E10 — semantic-property scorecard for the decompressed trace.

The introduction names three semantic properties: spatial/temporal
locality of IP addresses, IP address structure, and TCP flag sequences.
This experiment scores all three on the decompressed trace against the
original (with the random-destination trace as the negative control for
the address properties):

* flag grammar — total-variation similarity of flag-class trigrams;
* temporal locality — destination LRU hit fraction within depth 64;
* address structure — mean shared-prefix length of consecutive distinct
  destinations (spatial clustering).
"""

from __future__ import annotations

from repro.analysis.flagseq import flag_grammar_similarity
from repro.analysis.locality import profile_locality
from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    standard_traces,
)
from repro.trace.anonymize import shared_prefix_length
from repro.trace.trace import Trace


def _locality_at_64(trace: Trace) -> float:
    return profile_locality(
        [p.dst_ip for p in trace.packets[:20000]]
    ).hit_fraction_within[64]


def _mean_neighbor_prefix(trace: Trace, limit: int = 20000) -> float:
    """Mean shared-prefix bits between consecutive distinct destinations."""
    last = None
    total = 0
    counted = 0
    for packet in trace.packets[:limit]:
        if last is not None and packet.dst_ip != last:
            total += shared_prefix_length(packet.dst_ip, last)
            counted += 1
        last = packet.dst_ip
    return total / counted if counted else 0.0


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Score the three §1 semantic properties."""
    config = config or ExperimentConfig()
    quartet = standard_traces(config)
    original = quartet.original
    decompressed = quartet.decompressed
    randomized = quartet.random

    flag_decomp = flag_grammar_similarity(original.packets, decompressed.packets)
    locality = {
        "original": _locality_at_64(original),
        "decompressed": _locality_at_64(decompressed),
        "random": _locality_at_64(randomized),
    }
    structure = {
        "original": _mean_neighbor_prefix(original),
        "decompressed": _mean_neighbor_prefix(decompressed),
        "random": _mean_neighbor_prefix(randomized),
    }

    headers = ["semantic property", "original", "decompressed", "random ctrl"]
    rows = [
        [
            "flag trigram similarity",
            "1.000",
            f"{flag_decomp:.3f}",
            "(flags not randomized)",
        ],
        [
            "dst locality (LRU depth<64)",
            f"{locality['original']:.1%}",
            f"{locality['decompressed']:.1%}",
            f"{locality['random']:.1%}",
        ],
        [
            "mean neighbor prefix bits",
            f"{structure['original']:.1f}",
            f"{structure['decompressed']:.1f}",
            f"{structure['random']:.1f}",
        ],
    ]

    flags_ok = flag_decomp > 0.90
    locality_ok = (
        abs(locality["decompressed"] - locality["original"]) < 0.10
        and locality["random"] < locality["original"]
    )
    structure_ok = (
        abs(structure["decompressed"] - structure["original"]) < 3.0
        and structure["random"] < structure["original"]
    )

    notes = [
        f"flag grammar preserved (similarity > 0.90): {flags_ok} "
        f"({flag_decomp:.3f})",
        f"temporal locality preserved, destroyed by randomization: "
        f"{locality_ok}",
        f"address structure preserved, destroyed by randomization: "
        f"{structure_ok}",
    ]
    text = "\n".join(
        [
            "E10 — semantic-property scorecard (§1's three properties)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="semantics",
        headers=headers,
        rows=rows,
        text=text,
        passed=flags_ok and locality_ok and structure_ok,
        notes=notes,
    )
