"""Ablation A2 — the similarity threshold (equation 4's 2%).

The paper fixes the similarity bound at 2% of the maximum inter-flow
distance.  Sweeping it exposes the compression/fidelity trade-off: a 0%
threshold stores only exact-duplicate vectors (more templates, larger
file, zero clustering loss); large thresholds merge dissimilar flows
(fewer templates, smaller file, higher intra-cluster distance).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.codec import serialize_compressed
from repro.core.compressor import CompressorConfig, FlowClusterCompressor
from repro.core.datasets import DatasetId
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.flows.assembler import assemble_flows
from repro.flows.characterize import characterize_flow
from repro.flows.distance import vector_distance
from repro.synth.webgen import WebTrafficConfig, WebTrafficGenerator
from repro.trace.trace import merge_traces

THRESHOLD_PERCENTS = [0.0, 1.0, 2.0, 5.0, 10.0, 20.0]


def mixed_workload(config: ExperimentConfig):
    """Two session populations with different ACK cadences.

    The standard generator's same-length flows are identical, so the
    similarity threshold never has anything to merge; mixing ack_every=2
    and ack_every=3 clients produces same-length flows whose vectors
    differ in a few dependence/payload positions — exactly the
    near-duplicates the 2% rule exists to absorb.
    """
    delayed_ack = WebTrafficGenerator(
        WebTrafficConfig(
            duration=config.duration, flow_rate=config.flow_rate / 2,
            seed=config.seed, ack_every=2,
        )
    ).generate()
    eager_ack = WebTrafficGenerator(
        WebTrafficConfig(
            duration=config.duration, flow_rate=config.flow_rate / 2,
            seed=config.seed ^ 0xA5A5, ack_every=3,
        )
    ).generate()
    return merge_traces([delayed_ack, eager_ack], name="mixed-ack")


def _mean_cluster_distance(trace, compressed, config: CompressorConfig) -> float:
    """Mean distance between each short flow's vector and its template.

    Reruns the template assignment offline to measure the lossiness the
    chosen threshold introduced.
    """
    flows = assemble_flows(trace.packets)
    short_records = [
        record for record in compressed.time_seq if record.dataset is DatasetId.SHORT
    ]
    flows_by_start = sorted(flows, key=lambda f: f.start_time())
    short_flows = [
        flow for flow in flows_by_start if len(flow) <= config.short_flow_max
    ]
    total = 0.0
    counted = 0
    for flow, record in zip(short_flows, short_records):
        template = compressed.short_templates[record.template_index]
        vector = characterize_flow(flow, config.characterization)
        if len(vector) == template.n:
            total += vector_distance(vector, template.values)
            counted += 1
    return total / counted if counted else 0.0


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Sweep the similarity threshold over a mixed-population trace."""
    config = config or ExperimentConfig()
    trace = mixed_workload(config)
    original = trace.stored_size_bytes()

    headers = [
        "threshold_%",
        "short_templates",
        "hit_ratio",
        "ratio",
        "mean_cluster_dist",
    ]
    rows: list[list[object]] = []
    template_counts: dict[float, int] = {}
    distances: dict[float, float] = {}

    for percent in THRESHOLD_PERCENTS:
        compressor_config = CompressorConfig(similarity_percent=percent)
        compressor = FlowClusterCompressor(compressor_config)
        for packet in trace.packets:
            compressor.add_packet(packet)
        compressed = compressor.finish()
        size = len(serialize_compressed(compressed))
        mean_distance = _mean_cluster_distance(trace, compressed, compressor_config)
        template_counts[percent] = len(compressed.short_templates)
        distances[percent] = mean_distance
        rows.append(
            [
                f"{percent:.0f}",
                len(compressed.short_templates),
                f"{compressor.stats.hit_ratio():.1%}",
                f"{size / original:.2%}",
                f"{mean_distance:.2f}",
            ]
        )

    monotone_templates = all(
        template_counts[a] >= template_counts[b]
        for a, b in zip(THRESHOLD_PERCENTS, THRESHOLD_PERCENTS[1:])
    )
    loss_grows = distances[THRESHOLD_PERCENTS[-1]] >= distances[0.0]
    notes = [
        f"template count monotonically non-increasing with threshold: "
        f"{monotone_templates}",
        f"cluster lossiness grows with threshold: {loss_grows}",
        "0% threshold = exact-match clustering (zero template loss)",
    ]
    text = "\n".join(
        [
            "Ablation A2 — similarity threshold sweep (paper: 2%)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="ablation_threshold",
        headers=headers,
        rows=rows,
        text=text,
        passed=monotone_templates and loss_grows,
        notes=notes,
    )
