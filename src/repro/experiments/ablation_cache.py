"""Ablation A4 — is the Figure 3 conclusion robust to cache geometry?

The paper does not publish its cache parameters.  This sweep re-runs the
Figure 3 comparison across a range of plausible geometries and verifies
the *conclusion* — decompressed closest to original, random farthest —
is not an artifact of one lucky configuration.
"""

from __future__ import annotations

from repro.analysis.compare import max_bucket_difference
from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    standard_traces,
)
from repro.memsim import CacheConfig
from repro.routing import RouteApp

GEOMETRIES = [
    CacheConfig(size_bytes=4 * 1024, line_bytes=32, associativity=1),
    CacheConfig(size_bytes=8 * 1024, line_bytes=32, associativity=2),
    CacheConfig(size_bytes=16 * 1024, line_bytes=32, associativity=2),
    CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=4),
    CacheConfig(size_bytes=64 * 1024, line_bytes=64, associativity=8),
]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Sweep cache geometries over the four-trace Figure 3 comparison."""
    config = config or ExperimentConfig()
    quartet = standard_traces(config)

    # Record once per trace; replay per geometry.
    results = {
        label: RouteApp().run(trace) for label, trace in quartet.named()
    }

    headers = [
        "cache",
        "orig_miss",
        "decomp_diff_pp",
        "random_diff_pp",
        "fracexp_diff_pp",
        "ranking_holds",
    ]
    rows: list[list[object]] = []
    discriminating_hold = True
    thrashing_geometries: list[str] = []
    for geometry in GEOMETRIES:
        buckets = {
            label: result.profile(geometry).miss_rate_buckets()
            for label, result in results.items()
        }
        original = buckets["RedIRIS (original)"]
        diff = {
            label: max_bucket_difference(original, shares)
            for label, shares in buckets.items()
            if label != "RedIRIS (original)"
        }
        holds = diff["Decomp"] < diff["RedIRIS random"]
        label = (
            f"{geometry.size_bytes // 1024}KiB/"
            f"{geometry.line_bytes}B/{geometry.associativity}w"
        )
        original_profile = results["RedIRIS (original)"].profile(geometry)
        # A cache too small to capture any locality thrashes on every
        # trace; all four look alike and the comparison is undefined.
        thrashing = original_profile.overall_miss_rate() > 0.25
        if thrashing:
            thrashing_geometries.append(label)
        else:
            discriminating_hold = discriminating_hold and holds
        rows.append(
            [
                label,
                f"{original_profile.overall_miss_rate():.1%}",
                f"{diff['Decomp']:.1f}",
                f"{diff['RedIRIS random']:.1f}",
                f"{diff['fracexp']:.1f}",
                "(thrash)" if thrashing else holds,
            ]
        )

    notes = [
        f"decompressed beats random at every discriminating geometry: "
        f"{discriminating_hold}",
        "the Figure 3 conclusion is a property of the traces, not of one "
        "cache configuration —",
        "with one boundary: a cache that thrashes on everything "
        f"(miss > 25%: {', '.join(thrashing_geometries) or 'none here'}) "
        "cannot distinguish the traces at all, so trace-driven cache "
        "studies need a geometry matched to the workload's locality.",
    ]
    text = "\n".join(
        [
            "Ablation A4 — Figure 3 robustness across cache geometries",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="ablation_cache",
        headers=headers,
        rows=rows,
        text=text,
        passed=discriminating_hold,
        notes=notes,
    )
