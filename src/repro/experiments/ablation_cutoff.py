"""Ablation A3 — the short/long flow cutoff (the paper's 50 packets).

Short flows are clustered; long flows are stored verbatim with their
inter-packet times.  Lowering the cutoff pushes more flows into the
expensive verbatim path; raising it clusters longer flows whose vectors
rarely match ("the probability of find two identical V_f vectors is
really very low"), inflating the short-template dataset instead.  The
sweep shows where the paper's 50 sits on that curve.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.codec import dataset_sizes, serialize_compressed
from repro.core.compressor import CompressorConfig, FlowClusterCompressor
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace

CUTOFFS = [10, 25, 50, 100, 200]


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Sweep the short/long cutoff over the standard trace."""
    config = config or ExperimentConfig()
    trace = standard_trace(config)
    original = trace.stored_size_bytes()

    headers = [
        "cutoff",
        "short_flows",
        "long_flows",
        "short_templates",
        "short_tmpl_B",
        "long_tmpl_B",
        "ratio",
    ]
    rows: list[list[object]] = []
    ratios: dict[int, float] = {}

    for cutoff in CUTOFFS:
        compressor = FlowClusterCompressor(CompressorConfig(short_flow_max=cutoff))
        for packet in trace.packets:
            compressor.add_packet(packet)
        compressed = compressor.finish()
        size = len(serialize_compressed(compressed))
        sizes = dataset_sizes(compressed)
        ratios[cutoff] = size / original
        rows.append(
            [
                cutoff,
                compressor.stats.short_flows,
                compressor.stats.long_flows,
                len(compressed.short_templates),
                sizes["short_flows_template"],
                sizes["long_flows_template"],
                f"{size / original:.2%}",
            ]
        )

    all_in_band = all(ratio < 0.10 for ratio in ratios.values())
    notes = [
        "paper's cutoff (50) ratio: " f"{ratios[50]:.2%}",
        f"every cutoff stays below 10% of the original size: {all_in_band}",
    ]
    text = "\n".join(
        [
            "Ablation A3 — short/long cutoff sweep (paper: 50 packets)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="ablation_cutoff",
        headers=headers,
        rows=rows,
        text=text,
        passed=all_in_band,
        notes=notes,
    )
