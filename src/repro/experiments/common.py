"""Shared experiment infrastructure: workload configs and result records."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.api.ops import roundtrip
from repro.memsim import CacheConfig
from repro.synth import generate_web_trace, generate_fracexp_trace, randomize_destinations
from repro.trace.trace import Trace


@dataclass(frozen=True)
class ExperimentConfig:
    """The standard workload every experiment shares.

    ``quick()`` shrinks the trace for fast test runs; the defaults match
    the paper's setting of a ~100-second Web trace.
    """

    duration: float = 100.0
    flow_rate: float = 40.0
    seed: int = 1
    cache: CacheConfig = CacheConfig()
    tolerance_scale: float = 1.0

    def quick(self) -> "ExperimentConfig":
        """A small variant for smoke tests (~10 s of traffic).

        Small samples are noisy, so pass/fail tolerances widen with
        ``tolerance_scale``.
        """
        return replace(self, duration=10.0, tolerance_scale=3.0)


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment run."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    text: str
    passed: bool = True
    notes: list[str] = field(default_factory=list)

    def row_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]


@dataclass
class FourTraces:
    """The section 6 quartet: original, decompressed, random, fractal."""

    original: Trace
    decompressed: Trace
    random: Trace
    fracexp: Trace

    def named(self) -> list[tuple[str, Trace]]:
        """(label, trace) pairs in the paper's presentation order."""
        return [
            ("RedIRIS (original)", self.original),
            ("Decomp", self.decompressed),
            ("RedIRIS random", self.random),
            ("fracexp", self.fracexp),
        ]


def standard_trace(config: ExperimentConfig) -> Trace:
    """The experiment's Web trace (the Original-trace substitute)."""
    return generate_web_trace(
        duration=config.duration, flow_rate=config.flow_rate, seed=config.seed
    )


def standard_traces(config: ExperimentConfig) -> FourTraces:
    """Build all four section 6 traces from the standard workload."""
    original = standard_trace(config)
    decompressed, _report = roundtrip(original)
    return FourTraces(
        original=original,
        decompressed=decompressed,
        random=randomize_destinations(original, seed=config.seed ^ 0x9E37),
        fracexp=generate_fracexp_trace(
            len(original),
            mean_inter_packet=max(original.duration(), 1.0) / max(len(original), 1),
            seed=config.seed ^ 0x51F0,
        ),
    )
