"""E9 — the template-based synthetic trace generator (future work).

Conclusions: "we intend to ... implement a synthetic packet trace
generator based on the described methodology."

The experiment fits a :class:`~repro.core.generator.TraceModel` from a
compressed trace, synthesizes a trace with *more* flows than the
original, and checks that the scaled-up traffic keeps the source's
statistics: flow-length distribution shape, short-flow shares, and
temporal locality of destinations.
"""

from __future__ import annotations

from repro.analysis.locality import profile_locality
from repro.analysis.report import format_table
from repro.core.compressor import compress_trace
from repro.core.generator import TraceModel
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.trace.stats import compute_statistics

SCALE = 2.0


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Fit, scale up 2x, and compare statistics."""
    config = config or ExperimentConfig()
    original = standard_trace(config)
    compressed = compress_trace(original)
    model = TraceModel.fit(compressed)
    synthetic = model.synthesize(
        flow_count=int(SCALE * compressed.flow_count()), seed=config.seed
    )

    original_stats = compute_statistics(original)
    synthetic_stats = compute_statistics(synthetic)
    original_locality = profile_locality(
        [p.dst_ip for p in original.packets[:20000]]
    )
    synthetic_locality = profile_locality(
        [p.dst_ip for p in synthetic.packets[:20000]]
    )

    headers = ["statistic", "original", "synthetic (2x flows)"]
    rows = [
        ["flows", original_stats.flow_count, synthetic_stats.flow_count],
        ["packets", original_stats.packet_count, synthetic_stats.packet_count],
        [
            "mean flow length",
            f"{original_stats.length_distribution.mean_length():.2f}",
            f"{synthetic_stats.length_distribution.mean_length():.2f}",
        ],
        [
            "short flow fraction",
            f"{original_stats.short_flow_fraction:.1%}",
            f"{synthetic_stats.short_flow_fraction:.1%}",
        ],
        [
            "short packet fraction",
            f"{original_stats.short_packet_fraction:.1%}",
            f"{synthetic_stats.short_packet_fraction:.1%}",
        ],
        [
            "dst hits within depth 64",
            f"{original_locality.hit_fraction_within[64]:.1%}",
            f"{synthetic_locality.hit_fraction_within[64]:.1%}",
        ],
    ]

    scale_ok = (
        abs(synthetic_stats.flow_count - SCALE * original_stats.flow_count)
        / (SCALE * original_stats.flow_count)
        < 0.02
    )
    mean_ok = (
        abs(
            synthetic_stats.length_distribution.mean_length()
            - original_stats.length_distribution.mean_length()
        )
        / original_stats.length_distribution.mean_length()
        < 0.15
    )
    short_ok = (
        abs(
            synthetic_stats.short_flow_fraction
            - original_stats.short_flow_fraction
        )
        < 0.03
    )
    locality_ok = (
        abs(
            synthetic_locality.hit_fraction_within[64]
            - original_locality.hit_fraction_within[64]
        )
        < 0.15
    )

    notes = [
        f"flow count scales to 2x: {scale_ok}",
        f"mean flow length preserved (±15%): {mean_ok}",
        f"short-flow fraction preserved (±3pp): {short_ok}",
        f"destination temporal locality preserved (±15pp): {locality_ok}",
        f"model: {model.template_count()} templates, "
        f"arrival rate {model.arrival_rate:.1f} flows/s, "
        f"{len(model.rtt_samples)} RTT samples",
    ]
    text = "\n".join(
        [
            "E9 — template-based synthetic trace generator (future work)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="generator_study",
        headers=headers,
        rows=rows,
        text=text,
        passed=scale_ok and mean_ok and short_ok and locality_ok,
        notes=notes,
    )
