"""E7 — applicability to P2P traffic (the paper's future work).

Conclusions: "we intend to ... verify[] also the applicability of the
method to other types of applications like P2P."

The experiment compresses a P2P-like workload alongside the Web workload
and compares: compression ratio, short/long split, and template reuse.
Expectation from the method's design: P2P compresses *worse* — its flows
are long-lived, symmetric and dominated by the verbatim long-flow path,
so the flow-clustering advantage shrinks (while still beating GZIP).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.baselines import GzipCodec
from repro.core.codec import serialize_compressed
from repro.core.compressor import FlowClusterCompressor
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.synth import generate_p2p_trace
from repro.trace.stats import compute_statistics


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Compare compression behaviour on Web vs P2P traffic."""
    config = config or ExperimentConfig()
    web = standard_trace(config)
    p2p = generate_p2p_trace(
        duration=config.duration,
        session_rate=max(1.0, config.flow_rate / 5),
        seed=config.seed ^ 0x2B2B,
    )

    headers = [
        "workload",
        "packets",
        "flows",
        "short_flows",
        "hit_ratio",
        "proposed_ratio",
        "gzip_ratio",
    ]
    rows: list[list[object]] = []
    ratios: dict[str, float] = {}
    for label, trace in (("web", web), ("p2p", p2p)):
        compressor = FlowClusterCompressor()
        for packet in trace.packets:
            compressor.add_packet(packet)
        compressed = compressor.finish()
        size = len(serialize_compressed(compressed))
        original = trace.stored_size_bytes()
        stats = compute_statistics(trace)
        ratios[label] = size / original
        rows.append(
            [
                label,
                len(trace),
                stats.flow_count,
                f"{stats.short_flow_fraction:.1%}",
                f"{compressor.stats.hit_ratio():.1%}",
                f"{size / original:.2%}",
                f"{GzipCodec().ratio(trace):.1%}",
            ]
        )

    web_better = ratios["web"] < ratios["p2p"]
    p2p_still_wins = ratios["p2p"] < 0.25
    notes = [
        f"flow clustering favours Web over P2P: {web_better} "
        f"({ratios['web']:.2%} vs {ratios['p2p']:.2%})",
        f"method still far below GZIP on P2P: {p2p_still_wins}",
        "P2P flows are long-lived and symmetric, so most bytes take the "
        "verbatim long-flow path — the clustering advantage shrinks "
        "exactly as the method's design predicts.",
    ]
    text = "\n".join(
        [
            "E7 — applicability to P2P traffic (future work)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="p2p",
        headers=headers,
        rows=rows,
        text=text,
        passed=web_better and p2p_still_wins,
        notes=notes,
    )
