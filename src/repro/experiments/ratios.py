"""Section 5 compression ratios — equations 5 through 8 plus measurement.

Three views are reported:

1. the analytic models folded over the *paper-consistent* reference
   flow-length distribution (this reproduces the published 30% / 3%);
2. the same models folded over the distribution measured on our
   synthetic trace (flow lengths differ, so the numbers shift — the
   models are length-sensitive, which the paper itself notes via P_n);
3. the *measured* output sizes of the four working codecs on the trace.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.baselines import (
    GZIP_RATIO_ESTIMATE,
    PEUHKURI_RATIO_BOUND,
    GzipCodec,
    PeuhkuriCodec,
    VanJacobsonCodec,
    proposed_model,
    vj_model,
)
from repro.baselines.models import paper_reference_distribution
from repro.core import compress_trace, serialize_compressed
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.trace.stats import compute_statistics

PAPER_RATIOS = {
    "gzip": 0.50,
    "van-jacobson": 0.30,
    "peuhkuri": 0.16,
    "proposed": 0.03,
}


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Analytic (eq. 5–8) and measured ratios, side by side."""
    config = config or ExperimentConfig()
    trace = standard_trace(config)
    measured_distribution = compute_statistics(trace).length_distribution
    reference = paper_reference_distribution()

    vj = vj_model()
    proposed = proposed_model()

    analytic_reference = {
        "van-jacobson": vj.trace_ratio(reference),
        "proposed": proposed.trace_ratio(reference),
    }
    analytic_measured = {
        "van-jacobson": vj.trace_ratio(measured_distribution),
        "proposed": proposed.trace_ratio(measured_distribution),
    }

    original = trace.stored_size_bytes()
    proposed_bytes = serialize_compressed(compress_trace(trace))
    measured = {
        "gzip": len(GzipCodec().compress(trace)) / original,
        "van-jacobson": VanJacobsonCodec().ratio(trace),
        "peuhkuri": PeuhkuriCodec().ratio(trace),
        "proposed": len(proposed_bytes) / original,
    }

    headers = [
        "method",
        "paper",
        "model(ref P_n)",
        "model(measured P_n)",
        "measured codec",
    ]
    rows: list[list[object]] = []
    for method in ("gzip", "van-jacobson", "peuhkuri", "proposed"):
        if method == "gzip":
            model_ref = f"{GZIP_RATIO_ESTIMATE:.0%} (const)"
            model_meas = "-"
        elif method == "peuhkuri":
            model_ref = f"{PEUHKURI_RATIO_BOUND:.0%} (bound)"
            model_meas = "-"
        else:
            model_ref = f"{analytic_reference[method]:.1%}"
            model_meas = f"{analytic_measured[method]:.1%}"
        rows.append(
            [
                method,
                f"{PAPER_RATIOS[method]:.0%}",
                model_ref,
                model_meas,
                f"{measured[method]:.1%}",
            ]
        )

    # Pass criteria: the analytic models on the reference distribution
    # reproduce the paper's numbers, and the measured ordering holds.
    model_ok = (
        abs(analytic_reference["van-jacobson"] - 0.30) < 0.05
        and abs(analytic_reference["proposed"] - 0.03) < 0.01
    )
    ordering_ok = (
        measured["gzip"]
        > measured["van-jacobson"]
        > measured["peuhkuri"]
        > measured["proposed"]
    )
    proposed_band_ok = measured["proposed"] < 0.06

    notes = [
        f"analytic models on reference P_n reproduce paper: {model_ok}",
        f"measured ordering gzip > vj > peuhkuri > proposed: {ordering_ok}",
        f"measured proposed ratio in the 'around 3%' band (<6%): "
        f"{proposed_band_ok} ({measured['proposed']:.2%})",
        "model(measured P_n) differs because our synthetic flows are longer "
        f"(mean {measured_distribution.mean_length():.1f} pkts) than the "
        "paper's (≈5.7 pkts implied by eq. 6).",
    ]
    text = "\n".join(
        [
            "Section 5 compression ratios (equations 5-8)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="ratios",
        headers=headers,
        rows=rows,
        text=text,
        passed=model_ok and ordering_ok and proposed_band_ok,
        notes=notes,
    )
