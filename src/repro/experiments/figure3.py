"""Figure 3 — cache miss rate buckets, Radix-Tree routing, 4 traces.

"In Figure 3 ... we show the cumulative traffic (Y axis) against the
cache miss rate (X axis).  Here, again, we observe huge similarity among
the Original and the Decompressed trace, but in this case, the fractal
trace has a similar behavior and the random trace presenting not
concordance with the Original trace."

Pass criteria: per-bucket shares of original vs decompressed agree within
a margin, and the random trace's disagreement is larger than the
decompressed trace's.
"""

from __future__ import annotations

from repro.analysis.compare import max_bucket_difference
from repro.analysis.report import ascii_bar_chart, format_table
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    standard_traces,
)
from repro.memsim.metrics import MISS_RATE_BUCKET_LABELS
from repro.routing import RouteApp


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run Route over the four traces; bucket per-packet miss rates."""
    config = config or ExperimentConfig()
    quartet = standard_traces(config)

    buckets: dict[str, list[float]] = {}
    overall: dict[str, float] = {}
    for label, trace in quartet.named():
        app = RouteApp()
        result = app.run(trace)
        profile = result.profile(config.cache)
        buckets[label] = profile.miss_rate_buckets()
        overall[label] = profile.overall_miss_rate()

    headers = ["trace"] + list(MISS_RATE_BUCKET_LABELS) + ["overall_miss"]
    rows: list[list[object]] = []
    for label, shares in buckets.items():
        rows.append(
            [label]
            + [f"{share:.1f}%" for share in shares]
            + [f"{overall[label]:.1%}"]
        )

    original = buckets["RedIRIS (original)"]
    differences = {
        label: max_bucket_difference(original, shares)
        for label, shares in buckets.items()
        if label != "RedIRIS (original)"
    }
    similar = differences["Decomp"] < 10.0
    random_diverges = differences["RedIRIS random"] > differences["Decomp"]

    charts = []
    for label, shares in buckets.items():
        charts.append(label)
        charts.append(ascii_bar_chart(list(MISS_RATE_BUCKET_LABELS), shares))
        charts.append("")

    notes = [
        "max per-bucket difference vs original: "
        + ", ".join(f"{k}={v:.1f}pp" for k, v in differences.items()),
        f"original ≈ decompressed (max diff < 10pp): {similar}",
        f"random diverges more than decompressed: {random_diverges}",
        "paper: fractal similar in this metric, random not — "
        f"measured fractal diff {differences['fracexp']:.1f}pp vs "
        f"random diff {differences['RedIRIS random']:.1f}pp",
    ]
    text = "\n".join(
        [
            "Figure 3 — traffic share (%) per cache-miss-rate bucket",
            "",
            format_table(headers, rows),
            "",
            *charts,
            *notes,
        ]
    )
    return ExperimentResult(
        name="figure3",
        headers=headers,
        rows=rows,
        text=text,
        passed=similar and random_diverges,
        notes=notes,
    )
