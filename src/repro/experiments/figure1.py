"""Figure 1 — file size vs elapsed time for the five storage methods.

The paper plots, for growing prefixes of a TSH trace, the on-disk size of
the original file and of the GZIP, Van Jacobson, Peuhkuri and proposed
compressors' outputs.  The expected shape: GZIP ≈ 50% of the original,
VJ ≈ 30%, Peuhkuri ≈ 16%, proposed ≈ 3% — straight lines fanning out of
the origin.
"""

from __future__ import annotations

from repro.analysis.report import ascii_curve, format_table
from repro.baselines import GzipCodec, PeuhkuriCodec, VanJacobsonCodec
from repro.core import compress_trace, serialize_compressed
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.trace.filters import select_elapsed

MEGABYTE = 1_000_000


def run(
    config: ExperimentConfig | None = None, sample_count: int = 10
) -> ExperimentResult:
    """Measure the five curves on prefixes of the standard trace."""
    config = config or ExperimentConfig()
    trace = standard_trace(config)
    gzip_codec = GzipCodec()
    vj_codec = VanJacobsonCodec()
    peuhkuri_codec = PeuhkuriCodec()

    step = config.duration / sample_count
    elapsed_points = [step * (index + 1) for index in range(sample_count)]

    headers = [
        "elapsed_s",
        "original_MB",
        "gzip_MB",
        "vj_MB",
        "peuhkuri_MB",
        "proposed_MB",
    ]
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {
        "original": [],
        "gzip": [],
        "vj": [],
        "peuhkuri": [],
        "method (proposed)": [],
    }

    for elapsed in elapsed_points:
        prefix = select_elapsed(trace, elapsed)
        original = prefix.stored_size_bytes()
        gzip_size = len(gzip_codec.compress(prefix))
        vj_size = len(vj_codec.compress(prefix))
        peuhkuri_size = len(peuhkuri_codec.compress(prefix))
        proposed_bytes = serialize_compressed(compress_trace(prefix))
        proposed_size = len(proposed_bytes)

        rows.append(
            [
                f"{elapsed:.0f}",
                f"{original / MEGABYTE:.3f}",
                f"{gzip_size / MEGABYTE:.3f}",
                f"{vj_size / MEGABYTE:.3f}",
                f"{peuhkuri_size / MEGABYTE:.3f}",
                f"{proposed_size / MEGABYTE:.3f}",
            ]
        )
        series["original"].append(original / MEGABYTE)
        series["gzip"].append(gzip_size / MEGABYTE)
        series["vj"].append(vj_size / MEGABYTE)
        series["peuhkuri"].append(peuhkuri_size / MEGABYTE)
        series["method (proposed)"].append(proposed_size / MEGABYTE)

    final_original = series["original"][-1]
    ratios = {
        name: values[-1] / final_original if final_original else 0.0
        for name, values in series.items()
        if name != "original"
    }
    ordering_holds = (
        ratios["gzip"] > ratios["vj"] > ratios["peuhkuri"] > ratios["method (proposed)"]
    )

    notes = [
        f"final ratios: gzip={ratios['gzip']:.1%} (paper ~50%), "
        f"vj={ratios['vj']:.1%} (paper ~30%), "
        f"peuhkuri={ratios['peuhkuri']:.1%} (paper ~16%), "
        f"proposed={ratios['method (proposed)']:.1%} (paper ~3%)",
        f"method ordering gzip > vj > peuhkuri > proposed: {ordering_holds}",
    ]
    text = "\n".join(
        [
            "Figure 1 — file size comparison (MB) vs elapsed time (s)",
            "",
            format_table(headers, rows),
            "",
            ascii_curve(elapsed_points, series),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="figure1",
        headers=headers,
        rows=rows,
        text=text,
        passed=ordering_holds,
        notes=notes,
    )
