"""Figure 2 — memory accesses per packet, Radix-Tree routing, 4 traces.

"Figure 2 plots the cumulative traffic (Y axis) against the number of
memory access (X axis) when executing the Radix Tree Routing algorithm
for the four traces.  We observe that the Original and the Decompressed
trace show similar behavior while the others traces depict different
shapes."

The quantitative pass criterion: the KS distance between the original and
decompressed access distributions must be small, and smaller than the
original-vs-random and original-vs-fractal distances by a clear margin.
"""

from __future__ import annotations

from repro.analysis.compare import kolmogorov_smirnov
from repro.analysis.report import ascii_curve, format_table
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    standard_traces,
)
from repro.routing import RouteApp


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run Route over the four traces; compare access CDFs."""
    config = config or ExperimentConfig()
    quartet = standard_traces(config)

    access_samples: dict[str, list[int]] = {}
    for label, trace in quartet.named():
        app = RouteApp()
        result = app.run(trace)
        access_samples[label] = result.accesses_per_packet()

    lowest = min(min(samples) for samples in access_samples.values())
    highest = max(max(samples) for samples in access_samples.values())
    thresholds = list(range(lowest, highest + 1, max(1, (highest - lowest) // 30)))

    headers = ["#mem_accs"] + [label for label, _ in quartet.named()]
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {label: [] for label in access_samples}
    for threshold in thresholds:
        row: list[object] = [threshold]
        for label, samples in access_samples.items():
            sorted_samples = sorted(samples)
            below = sum(1 for s in sorted_samples if s <= threshold)
            share = 100.0 * below / len(samples)
            row.append(f"{share:.1f}")
            series[label].append(share)
        rows.append(row)

    original = access_samples["RedIRIS (original)"]
    ks = {
        label: kolmogorov_smirnov(original, samples)
        for label, samples in access_samples.items()
        if label != "RedIRIS (original)"
    }
    # Pass when the decompressed trace is both absolutely close and at
    # least 2x closer than the nearest control trace.
    control_floor = min(ks["RedIRIS random"], ks["fracexp"])
    similar = ks["Decomp"] < 0.15
    separated = ks["Decomp"] < 0.5 * control_floor

    notes = [
        "KS distance to the original trace: "
        + ", ".join(f"{label}={value:.3f}" for label, value in ks.items()),
        f"original ≈ decompressed (KS < 0.15): {similar}",
        f"decompressed at least 2x closer than controls: {separated}",
        "mean accesses/packet: "
        + ", ".join(
            f"{label}={sum(s) / len(s):.1f}" for label, s in access_samples.items()
        ),
    ]
    text = "\n".join(
        [
            "Figure 2 — cumulative traffic (%) vs memory accesses per packet",
            "",
            format_table(headers, rows),
            "",
            ascii_curve([float(t) for t in thresholds], series),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="figure2",
        headers=headers,
        rows=rows,
        text=text,
        passed=similar and separated,
        notes=notes,
    )
