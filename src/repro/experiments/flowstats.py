"""Section 3 flow statistics — the 98% / 75% / 80% table.

"98 percent of the flows have less than 51 packets.  These flows comprise
75 percent of all Web packets transmitted on the link and 80 percent of
the bytes on average."
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.trace.stats import compute_statistics

PAPER_SHORT_FLOW_FRACTION = 0.98
PAPER_SHORT_PACKET_FRACTION = 0.75
PAPER_SHORT_BYTE_FRACTION = 0.80
TOLERANCE = 0.06  # absolute


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Compare measured flow statistics against the paper's."""
    config = config or ExperimentConfig()
    trace = standard_trace(config)
    stats = compute_statistics(trace)

    headers = ["statistic", "paper", "measured", "abs_diff", "within_tol"]
    comparisons = [
        ("flows <= 50 packets", PAPER_SHORT_FLOW_FRACTION, stats.short_flow_fraction),
        ("packets in short flows", PAPER_SHORT_PACKET_FRACTION, stats.short_packet_fraction),
        ("bytes in short flows", PAPER_SHORT_BYTE_FRACTION, stats.short_byte_fraction),
    ]
    rows: list[list[object]] = []
    all_within = True
    tolerance = TOLERANCE * config.tolerance_scale
    for label, paper, measured in comparisons:
        diff = abs(paper - measured)
        within = diff <= tolerance
        all_within = all_within and within
        rows.append(
            [label, f"{paper:.0%}", f"{measured:.1%}", f"{diff:.3f}", within]
        )

    distribution = stats.length_distribution
    notes = [
        f"flows: {stats.flow_count}, packets: {stats.packet_count}",
        f"mean flow length: {distribution.mean_length():.2f} packets",
        f"98th percentile flow length: {distribution.percentile_length(0.98)} packets",
    ]
    text = "\n".join(
        [
            "Section 3 flow statistics (paper vs measured)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="flowstats",
        headers=headers,
        rows=rows,
        text=text,
        passed=all_within,
        notes=notes,
    )
