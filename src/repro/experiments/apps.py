"""Section 6 cross-benchmark check — Route, NAT and RTR.

The paper selected three programs precisely because they share the radix
tree ("All the selected programs involve the Radix Tree Routing inside
their algorithms"); the validation claim should therefore hold across all
three.  This experiment runs each app on the original and decompressed
traces and verifies the access distributions stay close.
"""

from __future__ import annotations

from repro.analysis.compare import kolmogorov_smirnov
from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    standard_traces,
)
from repro.routing import NatApp, RouteApp, RtrApp


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Original vs decompressed across the three benchmark apps."""
    config = config or ExperimentConfig()
    quartet = standard_traces(config)

    headers = [
        "app",
        "orig_mean_accs",
        "decomp_mean_accs",
        "orig_miss",
        "decomp_miss",
        "KS(orig,decomp)",
        "similar",
    ]
    rows: list[list[object]] = []
    all_similar = True
    for app_factory in (RouteApp, NatApp, RtrApp):
        results = {}
        for label, trace in (
            ("orig", quartet.original),
            ("decomp", quartet.decompressed),
        ):
            app = app_factory()
            run_result = app.run(trace)
            results[label] = {
                "accs": run_result.accesses_per_packet(),
                "profile": run_result.profile(config.cache),
            }
        ks = kolmogorov_smirnov(
            results["orig"]["accs"], results["decomp"]["accs"]
        )
        similar = ks < 0.12
        all_similar = all_similar and similar
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local shorthand
        rows.append(
            [
                app_factory.name,
                f"{mean(results['orig']['accs']):.1f}",
                f"{mean(results['decomp']['accs']):.1f}",
                f"{results['orig']['profile'].overall_miss_rate():.1%}",
                f"{results['decomp']['profile'].overall_miss_rate():.1%}",
                f"{ks:.3f}",
                similar,
            ]
        )

    notes = [f"all three apps see similar original/decompressed behaviour: {all_similar}"]
    text = "\n".join(
        [
            "Section 6 cross-benchmark check (Route / NAT / RTR)",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="apps",
        headers=headers,
        rows=rows,
        text=text,
        passed=all_similar,
        notes=notes,
    )
