"""E8 — sanitization vs semantic preservation (the paper's motivation).

Introduction: public traces "are delivered after some transformations,
such as sanitization, which modify some basic semantic properties (such
as IP address structure)".

The experiment quantifies that: run the Route benchmark on (a) the
original trace, (b) a prefix-preserving anonymization of it, and (c) the
naive random-address control.  Prefix-preserving anonymization keeps
IP address *structure*, so the radix-tree profile should survive; naive
randomization destroys it.
"""

from __future__ import annotations

from repro.analysis.compare import kolmogorov_smirnov
from repro.analysis.report import format_table
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.routing import RouteApp
from repro.synth import randomize_destinations
from repro.trace.anonymize import anonymize_prefix_preserving


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Compare Route profiles across anonymization styles."""
    config = config or ExperimentConfig()
    original = standard_trace(config)
    traces = [
        ("original", original),
        ("prefix-preserving", anonymize_prefix_preserving(original)),
        ("naive random", randomize_destinations(original, seed=config.seed)),
    ]

    samples: dict[str, list[int]] = {}
    headers = ["trace", "mean_accs", "KS_vs_original"]
    rows: list[list[object]] = []
    for label, trace in traces:
        result = RouteApp().run(trace)
        accesses = result.accesses_per_packet()
        samples[label] = accesses
        ks = (
            kolmogorov_smirnov(samples["original"], accesses)
            if label != "original"
            else 0.0
        )
        rows.append(
            [label, f"{sum(accesses) / len(accesses):.1f}", f"{ks:.3f}"]
        )

    ks_prefix = kolmogorov_smirnov(
        samples["original"], samples["prefix-preserving"]
    )
    ks_naive = kolmogorov_smirnov(samples["original"], samples["naive random"])
    structure_survives = ks_prefix < 0.5 * ks_naive

    notes = [
        f"prefix-preserving KS={ks_prefix:.3f}, naive KS={ks_naive:.3f}",
        f"prefix-preserving anonymization keeps the memory profile "
        f"markedly better than naive randomization: {structure_survives}",
        "this is the paper's sanitization concern made measurable: what "
        "matters for memory studies is address *structure*, which naive "
        "sanitization destroys.",
    ]
    text = "\n".join(
        [
            "E8 — anonymization styles vs radix-tree memory profile",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="anonymization",
        headers=headers,
        rows=rows,
        text=text,
        passed=structure_survives,
        notes=notes,
    )
