"""Ablation A1 — sensitivity to the characterization weights.

Section 2: "we have used the following weights ... w1=16, w2=4, w3=1.
Evidently, depending on the type of problem to be studied, we can apply
different weights."

What the weights actually buy is *invertibility*: with place-value
weights (w2 > 2·w3 and w1 > w2 + 2·w3) every one of the 24 valid
``(g1, g2, g3)`` triples maps to a distinct ``f`` value, so the
decompressor can recover flags, dependence and payload class exactly.
Degenerate weights collide triples — the compressed form then cannot be
replayed faithfully.  The sweep reports that code distinctness, whether
decoding is possible, and the (workload-level) template count and ratio.

On this workload the template count is insensitive to the weights: the
generator's same-length flows share one shape, so template diversity is
length-driven — an observation the report notes explicitly.
"""

from __future__ import annotations

import itertools

from repro.analysis.report import format_table
from repro.core.codec import serialize_compressed
from repro.core.compressor import CompressorConfig, FlowClusterCompressor
from repro.experiments.common import ExperimentConfig, ExperimentResult, standard_trace
from repro.flows.characterize import (
    CharacterizationConfig,
    Weights,
    decode_packet_value,
)

WEIGHT_VECTORS = [
    (16, 4, 1),  # the paper's choice
    (32, 8, 2),  # scaled up (same ordering, wider spacing)
    (8, 4, 1),   # narrower flag separation (still invertible)
    (1, 1, 1),   # degenerate: features collide
    (16, 0, 1),  # dependence ignored
    (16, 4, 0),  # payload ignored
]

VALID_TRIPLES = list(itertools.product(range(4), range(2), range(3)))
"""All (g1, g2, g3) combinations the characterization can emit."""


def code_statistics(weights: Weights) -> tuple[int, bool]:
    """(distinct f values over the 24 triples, exactly decodable?)."""
    codes = {
        weights.flags * g1 + weights.dependence * g2 + weights.payload * g3
        for g1, g2, g3 in VALID_TRIPLES
    }
    config = CharacterizationConfig(weights=weights)
    try:
        decodable = all(
            decode_packet_value(
                weights.flags * g1 + weights.dependence * g2 + weights.payload * g3,
                config,
            )
            == (g1, g2, g3)
            for g1, g2, g3 in VALID_TRIPLES
        )
    except ValueError:
        decodable = False
    return len(codes), decodable


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Sweep weight vectors: code distinctness + workload metrics."""
    config = config or ExperimentConfig()
    trace = standard_trace(config)
    original = trace.stored_size_bytes()

    headers = [
        "weights(w1,w2,w3)",
        "distinct_codes/24",
        "decodable",
        "short_templates",
        "ratio",
    ]
    rows: list[list[object]] = []
    distinct: dict[tuple[int, int, int], int] = {}
    decodable_map: dict[tuple[int, int, int], bool] = {}

    for weights_tuple in WEIGHT_VECTORS:
        weights = Weights(*weights_tuple)
        codes, decodable = code_statistics(weights)
        distinct[weights_tuple] = codes
        decodable_map[weights_tuple] = decodable

        compressor = FlowClusterCompressor(
            CompressorConfig(
                characterization=CharacterizationConfig(weights=weights)
            )
        )
        for packet in trace.packets:
            compressor.add_packet(packet)
        compressed = compressor.finish()
        size = len(serialize_compressed(compressed))
        rows.append(
            [
                str(weights_tuple),
                f"{codes}/24",
                decodable,
                len(compressed.short_templates),
                f"{size / original:.2%}",
            ]
        )

    paper_ok = distinct[(16, 4, 1)] == 24 and decodable_map[(16, 4, 1)]
    degenerate_collides = distinct[(1, 1, 1)] < 24 and not decodable_map[(1, 1, 1)]
    notes = [
        f"paper weights are a perfect (invertible) code: {paper_ok}",
        f"degenerate (1,1,1) collides triples and cannot be decoded: "
        f"{degenerate_collides} ({distinct[(1, 1, 1)]}/24 codes)",
        "template counts are weight-insensitive on this workload: same-"
        "length flows share one shape, so template diversity is length-"
        "driven; the weights matter for decode fidelity, not dataset size.",
    ]
    text = "\n".join(
        [
            "Ablation A1 — characterization weight sensitivity",
            "",
            format_table(headers, rows),
            "",
            *notes,
        ]
    )
    return ExperimentResult(
        name="ablation_weights",
        headers=headers,
        rows=rows,
        text=text,
        passed=paper_ok and degenerate_collides,
        notes=notes,
    )
