"""Experiment runner CLI.

``python -m repro.experiments <name ...|all> [--quick] [--out DIR]``

Runs the requested experiments, prints each report, and exits non-zero if
any experiment's reproduction criteria fail.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import (
    ablation_cache,
    ablation_cutoff,
    ablation_threshold,
    ablation_weights,
    anonymization,
    apps,
    figure1,
    figure2,
    figure3,
    flowstats,
    generator_study,
    p2p,
    ratios,
    semantics,
)
from repro.experiments.common import ExperimentConfig, ExperimentResult

EXPERIMENTS: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "figure1": figure1.run,
    "flowstats": flowstats.run,
    "ratios": ratios.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "apps": apps.run,
    "ablation_weights": ablation_weights.run,
    "ablation_threshold": ablation_threshold.run,
    "ablation_cutoff": ablation_cutoff.run,
    "ablation_cache": ablation_cache.run,
    "p2p": p2p.run,
    "anonymization": anonymization.run,
    "generator_study": generator_study.run,
    "semantics": semantics.run,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=f"experiment names or 'all' ({', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workload (smoke run)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default 1)"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write reports to this directory"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    config = ExperimentConfig(seed=args.seed)
    if args.quick:
        config = config.quick()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    failures = []
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](config)
        elapsed = time.time() - started
        banner = "=" * 72
        print(banner)
        print(f"{name}  [{'PASS' if result.passed else 'FAIL'}]  ({elapsed:.1f}s)")
        print(banner)
        print(result.text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(result.text + "\n")
        if not result.passed:
            failures.append(name)

    if failures:
        print(f"FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"all {len(names)} experiment(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
