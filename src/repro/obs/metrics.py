"""Metric primitives and the process-local registry.

Design constraints, in order:

1. **Near-zero hot-path overhead.**  Instrumented code records at
   *chunk* / *flow-close* / *segment* granularity, never per packet, and
   a metric handle is one dict lookup away (cache it in a local for
   loops).  When collection is disabled every factory returns a shared
   no-op metric, so a disabled run costs one attribute check per chunk.
2. **Thread safety.**  Every mutation takes the metric's lock — at chunk
   granularity the contention is unmeasurable, and counters can never
   lose increments under concurrent feeds.
3. **Multiprocessing aggregation.**  :meth:`MetricsRegistry.snapshot`
   returns a plain-data picklable value; :meth:`MetricsRegistry.merge`
   folds a worker's snapshot into the parent registry (counters add,
   gauges keep the extremum their mode dictates, histograms add
   bucket-wise) — the parallel compressor ships one snapshot per shard
   back through the pool and merges at join.

The active registry is resolved dynamically (:func:`current`): the
process-wide default unless a :func:`scoped` registry is installed for
the calling context (a ``contextvars`` context, so threads and asyncio
tasks scope independently).  ``REPRO_NO_METRICS=1`` disables the
default registry at import time — the benchmark overhead guard's
baseline.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "StageTimer",
    "Timer",
    "current",
    "get_registry",
    "scoped",
    "set_enabled",
]

DEFAULT_BUCKETS = (
    1.0,
    8.0,
    64.0,
    512.0,
    4096.0,
    8192.0,
    65536.0,
    float("inf"),
)
"""Default histogram bounds — sized for packet-per-chunk distributions."""


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def state(self) -> int:
        return self._value

    def restore(self, state: int) -> None:
        with self._lock:
            self._value += state


class Gauge:
    """A point-in-time value with an optional high-water mode.

    ``set`` records the latest value; ``set_max`` only ever raises it —
    the natural mode for working-set high-water marks, and the mode the
    snapshot merge assumes (merging keeps the maximum).
    """

    kind = "gauge"
    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> float:
        return self._value

    def restore(self, state: float) -> None:
        self.set_max(state)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bounds`` are upper bucket bounds; an implicit ``+Inf`` bucket is
    appended when missing, so every observation lands somewhere.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self, name: str, help: str = "", bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds:
            bounds = DEFAULT_BUCKETS
        if bounds != tuple(sorted(bounds)):
            raise ValueError(f"histogram {name}: bounds must be sorted: {bounds}")
        if bounds[-1] != float("inf"):
            bounds = (*bounds, float("inf"))
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative (bound, count<=bound) pairs, Prometheus-style."""
        total = 0
        out = []
        for bound, count in zip(self.bounds, self._counts):
            total += count
            out.append((bound, total))
        return out

    def state(self) -> tuple:
        return (self.bounds, tuple(self._counts), self._sum, self._count)

    def restore(self, state: tuple) -> None:
        bounds, counts, total, count = state
        if tuple(bounds) != self.bounds:
            raise ValueError(
                f"histogram {self.name}: snapshot bounds {bounds} do not "
                f"match {self.bounds}"
            )
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._sum += total
            self._count += count


class Timer:
    """Accumulated wall time of a named stage (count/total/min/max)."""

    kind = "timer"
    __slots__ = ("name", "help", "_lock", "_count", "_total", "_min", "_max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            self._total += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    def time(self) -> "StageTimer":
        """A context manager observing the block's wall time."""
        return StageTimer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_seconds(self) -> float:
        return self._total

    @property
    def min_seconds(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max_seconds(self) -> float:
        return self._max

    def state(self) -> tuple:
        return (self._count, self._total, self._min, self._max)

    def restore(self, state: tuple) -> None:
        count, total, low, high = state
        with self._lock:
            self._count += count
            self._total += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high


class StageTimer:
    """``with registry.timer("stage.decode").time():`` — wall-clock a stage.

    Reusable and re-entrant-per-instance is *not* supported (one timing
    in flight per instance); create one per ``with`` via
    :meth:`Timer.time`.  ``elapsed`` holds the last measured duration.
    """

    __slots__ = ("_timer", "_start", "elapsed")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._timer.observe(self.elapsed)


class _NullMetric:
    """The shared do-nothing metric a disabled registry hands out."""

    kind = "null"
    name = ""
    help = ""
    bounds = DEFAULT_BUCKETS
    value = 0
    count = 0
    sum = 0.0
    total_seconds = 0.0
    min_seconds = 0.0
    max_seconds = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "StageTimer":
        return StageTimer(_NULL_TIMER)

    def buckets(self) -> list[tuple[float, int]]:
        return []


_NULL_METRIC = _NullMetric()
_NULL_TIMER = Timer("null")  # sink for StageTimer on the null path


@dataclass(frozen=True)
class MetricsSnapshot:
    """A picklable copy of a registry's state at one instant.

    ``metrics`` maps name → (kind, state); states are the plain values
    each metric's ``state()`` returns.  Ship it across a process
    boundary and fold it back with :meth:`MetricsRegistry.merge`.
    """

    metrics: dict[str, tuple[str, object]] = field(default_factory=dict)

    def counters(self) -> dict[str, int]:
        return {
            name: state
            for name, (kind, state) in self.metrics.items()
            if kind == "counter"
        }


_METRIC_TYPES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "timer": Timer,
}


class MetricsRegistry:
    """A named collection of metrics; the unit of scoping and snapshotting.

    Metric factories are get-or-create and type-checked: asking for an
    existing name with a different kind raises, so two subsystems can
    never fight over one name.  With ``enabled=False`` every factory
    returns the shared no-op metric — the only overhead left in
    instrumented code is the factory call itself.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    # -- factories ---------------------------------------------------------

    def _get(self, kind: str, name: str, help: str, **kwargs):
        if not self.enabled:
            return _NULL_METRIC
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _METRIC_TYPES[kind](name, help, **kwargs)
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get("counter", name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get("gauge", name, help)

    def histogram(
        self, name: str, help: str = "", bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get("histogram", name, help, bounds=bounds)

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get("timer", name, help)

    # -- introspection -----------------------------------------------------

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str):
        """The registered metric, or None — for tests and reports."""
        return self._metrics.get(name)

    def value(self, name: str, default=0):
        """A counter/gauge's value by name (default when unregistered)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                metrics={
                    name: (metric.kind, metric.state())
                    for name, metric in self._metrics.items()
                }
            )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into this registry.

        Counters/histograms/timers accumulate; gauges keep the maximum —
        every gauge this library exposes is a high-water mark, and a
        cross-process "latest" has no meaningful order anyway.
        """
        if not self.enabled:
            return
        for name, (kind, state) in snapshot.metrics.items():
            if kind == "histogram":
                # Create-on-merge must adopt the snapshot's bounds; the
                # restore still validates when the metric already exists.
                metric = self._get(kind, name, "", bounds=tuple(state[0]))
            else:
                metric = self._get(kind, name, "")
            metric.restore(state)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# -- the process-local default and context scoping ---------------------------

_DEFAULT = MetricsRegistry(
    enabled=not os.environ.get("REPRO_NO_METRICS")
)
_DISABLED = MetricsRegistry(enabled=False)
_ACTIVE: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_registry", default=None
)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what a ``/metrics`` endpoint serves)."""
    return _DEFAULT


def current() -> MetricsRegistry:
    """The registry instrumented code should record into *right now*."""
    active = _ACTIVE.get()
    return _DEFAULT if active is None else active


@contextmanager
def scoped(registry: MetricsRegistry | None = None):
    """Route this context's instrumentation into ``registry``.

    ``None`` installs a disabled registry — the "metrics off" scope.
    Yields the installed registry.  Scopes nest; threads started inside
    a scope copy it (``contextvars`` semantics), worker *processes*
    start fresh on their own defaults and report back via snapshots.
    """
    registry = _DISABLED if registry is None else registry
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def set_enabled(enabled: bool) -> None:
    """Turn the process-default registry on or off (scoped ones are explicit)."""
    _DEFAULT.enabled = enabled
