"""repro.obs — the always-compiled-in instrumentation subsystem.

The paper's argument is quantitative — ratio and throughput per
pipeline stage — and this package makes those numbers observable at
runtime instead of only in benchmarks.  Three layers:

* **Primitives** (:mod:`repro.obs.metrics`): :class:`Counter`,
  :class:`Gauge`, :class:`Histogram`, :class:`Timer` +
  :class:`StageTimer`, collected in a thread-safe
  :class:`MetricsRegistry` whose :meth:`~MetricsRegistry.snapshot` is
  picklable and mergeable across multiprocessing shards.
* **Run reports** (:mod:`repro.obs.report`): :class:`RunReport`, a
  structured JSON document of everything one run measured —
  ``store.compress(..., report=True)`` and the CLI's
  ``--metrics`` / ``--metrics-out`` flags produce these.
* **Exposition** (:mod:`repro.obs.prometheus`):
  :func:`render_prometheus` turns a registry into the Prometheus text
  format, so a daemon can serve ``/metrics`` unchanged.

Instrumented library code records into :func:`current` — the process
default unless a :func:`scoped` registry is installed.  Collection
granularity is chunks / flow closes / segments, never packets, so the
overhead is held within the benchmark guard's 5 % budget
(``benchmarks/bench_smoke.py``); ``REPRO_NO_METRICS=1`` or
:func:`set_enabled` turn even that off.

Metric catalog and naming rules: ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    StageTimer,
    Timer,
    current,
    get_registry,
    scoped,
    set_enabled,
)
from repro.obs.prometheus import metric_name, render_prometheus
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport, record_run

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "StageTimer",
    "Timer",
    "current",
    "get_registry",
    "metric_name",
    "record_run",
    "render_prometheus",
    "scoped",
    "set_enabled",
]
