"""Structured run reports: one JSON document per instrumented run.

A :class:`RunReport` is the serializable face of a
:class:`~repro.obs.metrics.MetricsRegistry`: every counter, gauge,
timer and histogram the run touched, plus identifying metadata and the
wall-clock duration.  The document shape is a stability contract
(``SCHEMA`` / :data:`RUN_REPORT_SCHEMA`, pinned by
``tests/obs/test_report_schema.py``): dashboards and the future ingest
daemon parse these files, so fields are added, never renamed.

:func:`record_run` is the convenience wrapper the façade and the CLI
use::

    with record_run(command="compress", meta={"input": str(path)}) as run:
        ...instrumented work...
    run.report.write("metrics.json")
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    scoped,
)

SCHEMA = "repro.obs/run-report/v1"

RUN_REPORT_SCHEMA = {
    "schema": str,
    "command": str,
    "started_at": float,  # seconds since the epoch (time.time)
    "duration_seconds": float,
    "meta": dict,  # str -> str | int | float | bool | None
    "counters": dict,  # str -> int
    "gauges": dict,  # str -> float
    "timers": dict,  # str -> {count, total_seconds, min_seconds, max_seconds}
    "histograms": dict,  # str -> {count, sum, buckets: {le -> cumulative}}
}
"""Top-level document shape — the keys and value types ``to_dict`` emits.

A hand-rolled schema (no jsonschema dependency): each key maps to the
exact Python type the field must carry.  The stability test walks it.
"""


@dataclass(frozen=True)
class RunReport:
    """Everything one instrumented run measured, ready to serialize."""

    command: str
    started_at: float
    duration_seconds: float
    meta: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls,
        registry: MetricsRegistry,
        *,
        command: str,
        started_at: float,
        duration_seconds: float,
        meta: dict | None = None,
    ) -> "RunReport":
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        timers: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for metric in registry:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = float(metric.value)
            elif isinstance(metric, Timer):
                timers[metric.name] = {
                    "count": metric.count,
                    "total_seconds": metric.total_seconds,
                    "min_seconds": metric.min_seconds,
                    "max_seconds": metric.max_seconds,
                }
            elif isinstance(metric, Histogram):
                histograms[metric.name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": {
                        ("+Inf" if bound == float("inf") else repr(bound)): count
                        for bound, count in metric.buckets()
                    },
                }
        return cls(
            command=command,
            started_at=started_at,
            duration_seconds=duration_seconds,
            meta=dict(meta or {}),
            counters=counters,
            gauges=gauges,
            timers=timers,
            histograms=histograms,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "command": self.command,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: dict(value) for name, value in self.timers.items()},
            "histograms": {
                name: {**value, "buckets": dict(value["buckets"])}
                for name, value in self.histograms.items()
            },
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, document: dict) -> "RunReport":
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"not a run report (schema={document.get('schema')!r}, "
                f"expected {SCHEMA!r})"
            )
        return cls(
            command=document["command"],
            started_at=document["started_at"],
            duration_seconds=document["duration_seconds"],
            meta=document.get("meta", {}),
            counters=document.get("counters", {}),
            gauges=document.get("gauges", {}),
            timers=document.get("timers", {}),
            histograms=document.get("histograms", {}),
        )

    # -- presentation ------------------------------------------------------

    def summary_lines(self) -> list[str]:
        """The stderr table behind the CLI's ``--metrics`` flag."""
        lines = [
            f"-- metrics: {self.command} "
            f"({self.duration_seconds * 1000.0:.1f} ms) --"
        ]
        for name, value in sorted(self.counters.items()):
            lines.append(f"{name:<36s} {value}")
        for name, value in sorted(self.gauges.items()):
            rendered = f"{value:g}"
            lines.append(f"{name:<36s} {rendered}")
        for name, stats in sorted(self.timers.items()):
            lines.append(
                f"{name:<36s} {stats['total_seconds'] * 1000.0:.1f} ms "
                f"/ {stats['count']} call(s)"
            )
        for name, stats in sorted(self.histograms.items()):
            mean = stats["sum"] / stats["count"] if stats["count"] else 0.0
            lines.append(
                f"{name:<36s} n={stats['count']} mean={mean:g}"
            )
        return lines


class _RunRecorder:
    """What :func:`record_run` yields: the live registry + final report."""

    def __init__(self, registry: MetricsRegistry, command: str, meta: dict) -> None:
        self.registry = registry
        self.command = command
        self.meta = meta
        self.report: RunReport | None = None


@contextmanager
def record_run(
    command: str,
    *,
    meta: dict | None = None,
    registry: MetricsRegistry | None = None,
):
    """Scope a fresh registry around a block and report what it measured.

    Everything instrumented inside the ``with`` records into a private
    registry (the process default is untouched); on exit the recorder's
    ``report`` holds the finished :class:`RunReport`.  ``meta`` entries
    may be appended to (``run.meta[...] = ...``) until the block exits.
    """
    registry = registry if registry is not None else MetricsRegistry()
    recorder = _RunRecorder(registry, command, dict(meta or {}))
    started_at = time.time()
    start = time.perf_counter()
    with scoped(registry):
        yield recorder
    recorder.report = RunReport.from_registry(
        registry,
        command=command,
        started_at=started_at,
        duration_seconds=time.perf_counter() - start,
        meta=recorder.meta,
    )
