"""Prometheus text exposition for a metrics registry.

:func:`render_prometheus` turns a registry into the text format a
``/metrics`` endpoint serves (version 0.0.4 — the format every
Prometheus scraper accepts).  The future ingest daemon mounts this
unchanged; until then it is also handy for piping ``--metrics`` output
into promtool.

Naming: dotted metric names (``stream.packets``) become underscore
names under one namespace prefix (``repro_stream_packets``); counters
get the conventional ``_total`` suffix; timers render as two series
(``_seconds_total``, ``_calls_total``); histograms render cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count``, exactly as a
native Prometheus histogram would.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
)

NAMESPACE = "repro"


def metric_name(name: str, *, namespace: str = NAMESPACE) -> str:
    """``stream.packets`` → ``repro_stream_packets`` (charset-safe)."""
    safe = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name.replace(".", "_")
    )
    return f"{namespace}_{safe}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(
    registry: MetricsRegistry | None = None, *, namespace: str = NAMESPACE
) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    ``None`` renders the process-default registry — what ``/metrics``
    on the ingest daemon will serve.
    """
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for metric in registry:
        base = metric_name(metric.name, namespace=namespace)
        help_text = metric.help or metric.name
        if isinstance(metric, Counter):
            lines.append(f"# HELP {base}_total {help_text}")
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {base} {help_text}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(float(metric.value))}")
        elif isinstance(metric, Timer):
            lines.append(f"# HELP {base}_seconds_total {help_text}")
            lines.append(f"# TYPE {base}_seconds_total counter")
            lines.append(f"{base}_seconds_total {repr(metric.total_seconds)}")
            lines.append(f"# HELP {base}_calls_total {help_text} (call count)")
            lines.append(f"# TYPE {base}_calls_total counter")
            lines.append(f"{base}_calls_total {metric.count}")
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {base} {help_text}")
            lines.append(f"# TYPE {base} histogram")
            for bound, cumulative in metric.buckets():
                lines.append(
                    f'{base}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{base}_sum {repr(metric.sum)}")
            lines.append(f"{base}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
