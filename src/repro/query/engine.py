"""Predicate evaluation over an archive: plan on the index, decode late.

The engine walks the archive footer first, skips every segment whose
index entry cannot match the predicate, and decodes the survivors one at
a time.  Matching is evaluated directly against ``time-seq`` records and
the template/address datasets — no packet is ever synthesized — and
results stream out as :class:`FlowSummary` rows.  :class:`QueryStats`
records how much work the index saved (segments and bytes decoded vs.
total), which the benchmarks and the acceptance tests assert on.

:func:`filter_archive` reuses the same plan to materialize a filtered
sub-archive: each matching segment's selected records are re-packed
(templates and addresses re-indexed) and written through the ordinary
:class:`~repro.archive.writer.ArchiveWriter` machinery, preserving the
source epoch and segment boundaries.

:meth:`QueryEngine.stream_packets` goes one level deeper than
:class:`FlowSummary` rows: it *replays* the matching flows, streaming
their synthetic packets in global time order through the same
bounded-memory merge the archive replay uses — segments the index rules
out are never decoded, and non-matching flows inside a decoded segment
are skipped without synthesizing a packet.  Because occurrence ordinals
are counted over the full record walk (see
:func:`~repro.core.decompressor.flow_specs`), a filtered stream emits
exactly the packets the full replay would for those flows.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.archive.format import SegmentIndexEntry
from repro.archive.reader import ArchiveReader, ArchiveSpecFeed, segment_runs
from repro.archive.writer import ArchiveWriter
from repro.core.backends import backend_for_tag
from repro.core.codec import SECTION_NAMES, validate_backend_request
from repro.core.datasets import CompressedTrace, DatasetId, TimeSeqRecord
from repro.core.decompressor import DecompressorConfig, FlowSpec, flow_specs
from repro.core.errors import warn_deprecated
from repro.core.flowmeta import (
    FlowRecord,
    flow_records,
    flow_records_by_decode,
)
from repro.core.replay import merge_packet_stream
from repro.net.packet import PacketRecord
from repro.obs import current as obs_current
from repro.query.predicates import MatchAll, Predicate, TimeRange

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class FlowSummary:
    """One matching flow, resolved from its time-seq record.

    ``timestamp`` and ``rtt`` are seconds (timestamp relative to the
    archive epoch); ``packet_count`` is the flow's template length;
    ``destination`` is the 32-bit destination address.
    """

    segment: int
    timestamp: float
    kind: DatasetId
    template_index: int
    packet_count: int
    destination: int
    rtt: float


@dataclass
class QueryStats:
    """How much of the archive a query actually touched."""

    segments_total: int = 0
    segments_matched: int = 0  # index entries the predicate could not rule out
    segments_decoded: int = 0
    bytes_total: int = 0
    bytes_decoded: int = 0
    flows_scanned: int = 0
    flows_matched: int = 0

    def summary_lines(self) -> list[str]:
        return [
            f"segments decoded : {self.segments_decoded}/{self.segments_total}"
            f" (index matched {self.segments_matched})",
            f"bytes decoded    : {self.bytes_decoded}/{self.bytes_total}",
            f"flows matched    : {self.flows_matched}/{self.flows_scanned} scanned",
        ]

    def publish(self) -> None:
        """Fold this query's work accounting into the active obs registry."""
        registry = obs_current()
        registry.counter("query.runs", "queries evaluated").inc()
        registry.counter(
            "query.segments_pruned", "segments the index ruled out undecoded"
        ).inc(self.segments_total - self.segments_matched)
        registry.counter(
            "query.segments_decoded", "segments decoded to answer queries"
        ).inc(self.segments_decoded)
        registry.counter(
            "query.bytes_decoded", "segment bytes decoded to answer queries"
        ).inc(self.bytes_decoded)
        registry.counter("query.flows_scanned", "flow records evaluated").inc(
            self.flows_scanned
        )
        registry.counter("query.flows_matched", "flow records matched").inc(
            self.flows_matched
        )


@dataclass(frozen=True)
class WindowProbe:
    """One time window's cost estimate, from the footer index alone.

    ``segments_overlapping`` index entries could hold flows starting in
    ``[start, end]`` — a real windowed scan would decode at most those;
    ``bytes_to_decode`` is their serialized total and
    ``flows_upper_bound`` the sum of their flow counts (an upper bound:
    a segment usually straddles more than one window).
    """

    index: int
    start: float
    end: float
    segments_overlapping: int
    bytes_to_decode: int
    flows_upper_bound: int


@dataclass
class QueryResult:
    """Materialized query output: the rows plus the work accounting."""

    flows: list[FlowSummary] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)


def flow_summaries(
    segment: int, compressed: CompressedTrace
) -> Iterator[FlowSummary]:
    """Resolve every time-seq record of one decoded segment."""
    for record in compressed.time_seq:
        yield summarize_record(segment, compressed, record)


def summarize_record(
    segment: int, compressed: CompressedTrace, record: TimeSeqRecord
) -> FlowSummary:
    """Resolve one ``time-seq`` record into its :class:`FlowSummary` row."""
    return FlowSummary(
        segment=segment,
        timestamp=record.timestamp,
        kind=record.dataset,
        template_index=record.template_index,
        packet_count=compressed.packets_for(record),
        destination=compressed.addresses.lookup(record.address_index),
        rtt=record.rtt,
    )


def _entry_backend_spec(entry: SegmentIndexEntry) -> dict[str, str]:
    """Per-section backend names a source segment's index entry recorded.

    Feeding this to :meth:`~repro.archive.writer.ArchiveWriter.write_segment`
    re-packs a filtered segment with the same codecs its source used.
    """
    return {
        section: backend_for_tag(tag).name
        for section, tag in zip(SECTION_NAMES, entry.section_backends)
    }


class QueryEngine:
    """Run predicates against one open :class:`ArchiveReader`."""

    def __init__(self, reader: ArchiveReader) -> None:
        self.reader = reader

    def run(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> QueryResult:
        """Evaluate ``predicate``; returns matching flows plus statistics.

        ``limit`` stops the scan once that many flows matched (segments
        after the stop are neither decoded nor counted as scanned).
        """
        predicate = predicate or MatchAll()
        stats = QueryStats(
            segments_total=self.reader.segment_count,
            bytes_total=sum(entry.length for entry in self.reader.entries),
        )
        result = QueryResult(stats=stats)
        try:
            for index, entry in enumerate(self.reader.entries):
                if not predicate.match_segment(entry):
                    _log.debug("query: index pruned segment %d", index)
                    continue
                stats.segments_matched += 1
                compressed = self.reader.load_segment(index)
                stats.segments_decoded += 1
                stats.bytes_decoded += entry.length
                for flow in flow_summaries(index, compressed):
                    stats.flows_scanned += 1
                    if predicate.match_flow(flow):
                        stats.flows_matched += 1
                        result.flows.append(flow)
                        if limit is not None and stats.flows_matched >= limit:
                            return result
            return result
        finally:
            stats.publish()

    def index_probe(self, predicate: Predicate | None = None) -> QueryStats:
        """Dry-run ``predicate`` against the footer index alone.

        Evaluates only the segment-level test — no segment is decoded,
        no flow scanned, and (being a probe, not a query) nothing is
        published to the metrics registry.  ``segments_matched`` is what
        a real run would have to decode; ``bytes_decoded`` carries the
        matched segments' byte total so callers can report how much I/O
        the index saves.  This backs ``repro-trace archive info``'s
        prune statistics.
        """
        predicate = predicate or MatchAll()
        stats = QueryStats(
            segments_total=self.reader.segment_count,
            bytes_total=sum(entry.length for entry in self.reader.entries),
        )
        for entry in self.reader.entries:
            if predicate.match_segment(entry):
                stats.segments_matched += 1
                stats.bytes_decoded += entry.length
        return stats

    def window_probe(
        self,
        windows: int,
        *,
        since: float | None = None,
        until: float | None = None,
    ) -> list[WindowProbe]:
        """Cost-estimate a windowed scan: per-window segment overlap.

        Splits ``[since, until]`` (default: the archive's index time
        bounds) into ``windows`` equal windows and dry-runs a
        :class:`~repro.query.predicates.TimeRange` for each against the
        footer index alone — the per-window extension of
        :meth:`index_probe`.  Nothing is decoded and nothing is
        published; this is what lets an operator see whether a window
        span prunes before paying for the scan.
        """
        if windows < 1:
            raise ValueError(f"windows must be >= 1: {windows}")
        bounds = self.reader.time_bounds()
        if bounds is None:
            return []
        low = since if since is not None else bounds[0]
        high = until if until is not None else bounds[1]
        if high < low:
            raise ValueError(f"empty probe range: [{low}, {high}]")
        span = (high - low) / windows
        probes = []
        for index in range(windows):
            start = low + index * span
            end = high if index == windows - 1 else low + (index + 1) * span
            window = TimeRange(start, end)
            overlapping = bytes_to_decode = flows = 0
            for entry in self.reader.entries:
                if window.match_segment(entry):
                    overlapping += 1
                    bytes_to_decode += entry.length
                    flows += entry.flow_count
            probes.append(
                WindowProbe(
                    index=index,
                    start=start,
                    end=end,
                    segments_overlapping=overlapping,
                    bytes_to_decode=bytes_to_decode,
                    flows_upper_bound=flows,
                )
            )
        return probes

    def iter_flow_records(
        self,
        predicate: Predicate | None = None,
        *,
        config: DecompressorConfig | None = None,
        stats: QueryStats | None = None,
        method: str = "index",
    ) -> Iterator[FlowRecord]:
        """Stream matching flows' metadata — the analytics fast path.

        ``method="index"`` prunes segments on the footer index and
        derives each surviving flow's record without synthesizing a
        packet (:func:`~repro.core.flowmeta.flow_records`);
        ``method="decode"`` synthesizes every segment's packets and
        folds them back down (:func:`flow_records_by_decode`) — the
        differential baseline, which by construction cannot prune.
        Both orders are globally nondecreasing by start and the records
        are bit-identical; ``stats`` fills in as the stream drains and
        publishes when it ends.
        """
        if method not in ("index", "decode"):
            raise ValueError(f"method must be 'index' or 'decode': {method!r}")
        predicate = predicate or MatchAll()
        config = config or DecompressorConfig()
        if stats is None:
            stats = QueryStats()
        stats.segments_total = self.reader.segment_count
        stats.bytes_total = sum(entry.length for entry in self.reader.entries)
        if method == "index":
            indices = [
                index
                for index, entry in enumerate(self.reader.entries)
                if predicate.match_segment(entry)
            ]
        else:
            indices = list(range(self.reader.segment_count))
        stats.segments_matched = len(indices)
        records = flow_records if method == "index" else flow_records_by_decode

        match_all = type(predicate) is MatchAll

        def source(segment: int, compressed: CompressedTrace):
            stats.segments_decoded += 1
            stats.bytes_decoded += self.reader.entries[segment].length

            def keep(record: TimeSeqRecord) -> bool:
                stats.flows_scanned += 1
                # MatchAll accepts every flow by definition — skip
                # building a FlowSummary per record just to learn that.
                if match_all or predicate.match_flow(
                    summarize_record(segment, compressed, record)
                ):
                    stats.flows_matched += 1
                    return True
                return False

            return records(
                compressed, config, segment=segment, record_filter=keep
            )

        def stream() -> Iterator[FlowRecord]:
            try:
                yield from self.reader.iter_flow_records(
                    config, indices=indices, source=source
                )
            finally:
                stats.publish()

        return stream()

    def stream_packets(
        self,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        config: DecompressorConfig | None = None,
        stats: QueryStats | None = None,
        options=None,
    ) -> Iterator[PacketRecord]:
        """Replay the flows matching ``predicate`` as a packet stream.

        Packets arrive in the decompressor's global time order and are
        byte-identical to the corresponding packets of a full archive
        replay (:meth:`~repro.archive.reader.ArchiveReader.iter_packets`)
        — filtering skips flows, it does not perturb the survivors.
        Memory stays bounded by the concurrent matching flows; segments
        the index rules out are never decoded.  ``limit`` caps the
        *flows* replayed (their packets all stream out); pass a
        :class:`QueryStats` to receive the work accounting, which fills
        in as the stream is consumed.
        """
        predicate = predicate or MatchAll()
        if config is None:
            # The façade's layered Options threads through here; an
            # explicit config still wins (duck-typed — no api import).
            config = options.decompressor if options is not None else None
        config = config or DecompressorConfig()
        if stats is None:
            stats = QueryStats()
        stats.segments_total = self.reader.segment_count
        stats.bytes_total = sum(entry.length for entry in self.reader.entries)
        indices = [
            index
            for index, entry in enumerate(self.reader.entries)
            if predicate.match_segment(entry)
        ]
        stats.segments_matched = len(indices)

        def spec_source(
            segment: int, compressed: CompressedTrace
        ) -> Iterator[FlowSpec]:
            stats.segments_decoded += 1
            stats.bytes_decoded += self.reader.entries[segment].length

            def keep(record: TimeSeqRecord) -> bool:
                stats.flows_scanned += 1
                if limit is not None and stats.flows_matched >= limit:
                    return False
                if predicate.match_flow(summarize_record(segment, compressed, record)):
                    stats.flows_matched += 1
                    return True
                return False

            return flow_specs(
                compressed, config, order_prefix=(segment,), record_filter=keep
            )

        halt = None
        if limit is not None:
            halt = lambda: stats.flows_matched >= limit  # noqa: E731
        feed = ArchiveSpecFeed(
            self.reader,
            segment_runs(self.reader.entries, indices),
            spec_source,
            halt=halt,
        )

        def stream() -> Iterator[PacketRecord]:
            # The stats fill in lazily as the stream is consumed, so they
            # are published when the stream ends (or is closed early) —
            # the one point where the accounting is final.
            try:
                yield from merge_packet_stream(feed, config)
            finally:
                stats.publish()

        return stream()

    def filter_to(
        self,
        out_path: str | Path,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        name: str | None = None,
        backend: str | None = None,
        level: int | None = None,
        options=None,
    ) -> tuple[int, QueryStats]:
        """Write the flows matching ``predicate`` as a new sub-archive.

        Segment boundaries and the epoch are preserved; segments with no
        matching flow are dropped entirely.  ``limit`` caps the flows
        written, mirroring :meth:`run` — the scan stops once reached.
        ``backend``/``level`` re-encode the surviving segments through a
        chosen codec; when ``backend`` is ``None`` each re-packed
        segment keeps the per-section backends its source segment's
        index entry recorded (v1 sources re-pack as raw).  Returns
        (segments written, query statistics).
        """
        if options is not None:
            # Options threads the façade's codec layer through; explicit
            # keywords win, exactly as on ArchiveWriter.create.
            name = name if name is not None else options.name
            backend = backend if backend is not None else options.codec.backend
            level = level if level is not None else options.codec.level
        # Fail fast on a bad backend/level request: the writer only sees
        # the backend per segment (each write_segment call carries its
        # own spec), so validate before out_path is truncated and before
        # any segment is scanned.
        validate_backend_request(backend, level)
        predicate = predicate or MatchAll()
        stats = QueryStats(
            segments_total=self.reader.segment_count,
            bytes_total=sum(entry.length for entry in self.reader.entries),
        )
        with ArchiveWriter.create(
            out_path, epoch=self.reader.epoch, name=name, level=level
        ) as writer:
            for index, entry in enumerate(self.reader.entries):
                if not predicate.match_segment(entry):
                    _log.debug("filter: index pruned segment %d", index)
                    continue
                stats.segments_matched += 1
                compressed = self.reader.load_segment(index)
                stats.segments_decoded += 1
                stats.bytes_decoded += entry.length
                matched: list[TimeSeqRecord] = []
                for record in compressed.time_seq:
                    stats.flows_scanned += 1
                    if predicate.match_flow(summarize_record(index, compressed, record)):
                        matched.append(record)
                        if limit is not None and stats.flows_matched + len(matched) >= limit:
                            break
                stats.flows_matched += len(matched)
                if matched:
                    writer.write_segment(
                        compressed.select(matched, name=compressed.name),
                        backend=backend
                        if backend is not None
                        else _entry_backend_spec(entry),
                    )
                if limit is not None and stats.flows_matched >= limit:
                    break
            written = writer.segment_count
            writer.close()
        stats.publish()
        return written, stats


def query_archive(
    path: str | Path,
    predicate: Predicate | None = None,
    *,
    limit: int | None = None,
) -> QueryResult:
    """Open ``path``, run one query, close — the one-shot convenience.

    .. deprecated:: 1.1  Use ``repro.open(path).query(predicate)``.
    """
    warn_deprecated("query_archive", "repro.open(...).query(...)")
    with ArchiveReader(path) as reader:
        return QueryEngine(reader).run(predicate, limit=limit)


def filter_archive(
    path: str | Path,
    out_path: str | Path,
    predicate: Predicate | None = None,
    *,
    limit: int | None = None,
    name: str | None = None,
    backend: str | None = None,
    level: int | None = None,
) -> tuple[int, QueryStats]:
    """Open ``path``, write the matching sub-archive to ``out_path``.

    .. deprecated:: 1.1  Use ``repro.open(path).filter(out_path, ...)``.
    """
    warn_deprecated("filter_archive", "repro.open(...).filter(...)")
    with ArchiveReader(path) as reader:
        return QueryEngine(reader).filter_to(
            out_path, predicate, limit=limit, name=name,
            backend=backend, level=level,
        )
