"""Composable flow predicates with two-level evaluation.

Every predicate answers twice:

* :meth:`Predicate.match_segment` — against a segment's
  :class:`~repro.archive.format.SegmentIndexEntry`, *conservatively*:
  ``False`` guarantees the segment holds no matching flow (safe to skip
  without decoding), ``True`` only that it might.
* :meth:`Predicate.match_flow` — against one decoded
  :class:`~repro.query.engine.FlowSummary`, exactly.

Predicates compose with ``&``, ``|`` and ``~``.  Conjunction intersects
segment checks (any ``False`` prunes), disjunction unions them, and
negation degrades the segment check to "maybe" — an index entry saying
"may contain X" says nothing about whether every flow is X, so ``~p``
can never prune a segment.

Times are seconds since the archive epoch — the same clock the time-seq
records and the segment index use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.archive.format import SegmentIndexEntry
from repro.core.codec import quantize_rtt, quantize_timestamp
from repro.core.datasets import DatasetId
from repro.net.ip import IPv4Prefix, parse_ipv4

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.query.engine import FlowSummary


class Predicate:
    """Base class: subclasses override the two match methods."""

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        """May this segment contain a matching flow?  (No false negatives.)"""
        return True

    def match_flow(self, flow: "FlowSummary") -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class MatchAll(Predicate):
    """Matches every flow (the empty query)."""

    def match_flow(self, flow: "FlowSummary") -> bool:
        return True


@dataclass(frozen=True)
class TimeRange(Predicate):
    """Flows whose start timestamp lies in ``[start, end]`` (inclusive)."""

    start: float = 0.0
    end: float = float("inf")

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"empty time range: [{self.start}, {self.end}]")

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        # Index bounds are quantized (100 µs floor grid via round); put the
        # query bounds on the same grid so edge flows are never pruned.
        if self.end != float("inf") and entry.time_min_units > quantize_timestamp(self.end):
            return False
        return entry.time_max_units >= quantize_timestamp(self.start)

    def match_flow(self, flow: "FlowSummary") -> bool:
        return self.start <= flow.timestamp <= self.end


def _as_address(address: int | str) -> int:
    return parse_ipv4(address) if isinstance(address, str) else address


@dataclass(frozen=True)
class DestinationAddress(Predicate):
    """Flows whose destination is exactly ``address`` (int or dotted quad)."""

    address: int | str

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", _as_address(self.address))

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        return entry.summary.may_contain(self.address)

    def match_flow(self, flow: "FlowSummary") -> bool:
        return flow.destination == self.address


@dataclass(frozen=True)
class DestinationPrefix(Predicate):
    """Flows whose destination falls inside an IPv4 prefix."""

    prefix: IPv4Prefix | str

    def __post_init__(self) -> None:
        if isinstance(self.prefix, str):
            object.__setattr__(self, "prefix", IPv4Prefix.parse(self.prefix))

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        low = self.prefix.network
        high = low | (~self.prefix.mask() & 0xFFFFFFFF)
        return entry.summary.may_contain_range(low, high)

    def match_flow(self, flow: "FlowSummary") -> bool:
        return self.prefix.contains(flow.destination)


@dataclass(frozen=True)
class FlowKind(Predicate):
    """Short-template vs. long-template flows (``"short"`` / ``"long"``)."""

    kind: DatasetId | str

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            try:
                object.__setattr__(
                    self, "kind", DatasetId[self.kind.upper()]
                )
            except KeyError:
                raise ValueError(
                    f"flow kind must be 'short' or 'long': {self.kind!r}"
                ) from None

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        if self.kind is DatasetId.SHORT:
            return entry.short_flow_count > 0
        return entry.long_flow_count > 0

    def match_flow(self, flow: "FlowSummary") -> bool:
        return flow.kind is self.kind


@dataclass(frozen=True)
class PacketCountRange(Predicate):
    """Flows with ``minimum <= packets <= maximum`` (maximum None = open)."""

    minimum: int = 1
    maximum: int | None = None

    def __post_init__(self) -> None:
        if self.maximum is not None and self.minimum > self.maximum:
            raise ValueError(
                f"empty packet-count range: [{self.minimum}, {self.maximum}]"
            )

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        if entry.max_flow_packets < self.minimum:
            return False
        return self.maximum is None or entry.min_flow_packets <= self.maximum

    def match_flow(self, flow: "FlowSummary") -> bool:
        if flow.packet_count < self.minimum:
            return False
        return self.maximum is None or flow.packet_count <= self.maximum


@dataclass(frozen=True)
class RttRange(Predicate):
    """Flows whose stored RTT lies in ``[minimum, maximum]`` seconds.

    RTT is only estimated for short flows; long flows store 0.0, so pair
    this with ``FlowKind("short")`` unless zero should match.
    """

    minimum: float = 0.0
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.maximum is not None and self.minimum > self.maximum:
            raise ValueError(f"empty RTT range: [{self.minimum}, {self.maximum}]")

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        if self.maximum is not None and entry.min_rtt_units > quantize_rtt(self.maximum):
            return False
        return entry.max_rtt_units >= quantize_rtt(self.minimum)

    def match_flow(self, flow: "FlowSummary") -> bool:
        if flow.rtt < self.minimum:
            return False
        return self.maximum is None or flow.rtt <= self.maximum


@dataclass(frozen=True)
class And(Predicate):
    """Both operands match (segment check: both say maybe)."""

    left: Predicate
    right: Predicate

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        return self.left.match_segment(entry) and self.right.match_segment(entry)

    def match_flow(self, flow: "FlowSummary") -> bool:
        return self.left.match_flow(flow) and self.right.match_flow(flow)


@dataclass(frozen=True)
class Or(Predicate):
    """Either operand matches (segment check: either says maybe)."""

    left: Predicate
    right: Predicate

    def match_segment(self, entry: SegmentIndexEntry) -> bool:
        return self.left.match_segment(entry) or self.right.match_segment(entry)

    def match_flow(self, flow: "FlowSummary") -> bool:
        return self.left.match_flow(flow) or self.right.match_flow(flow)


@dataclass(frozen=True)
class Not(Predicate):
    """The operand does not match.

    Segment-level: a "may contain X" index can never prove *every* flow
    is X, so negation cannot prune — ``match_segment`` is always True.
    """

    operand: Predicate

    def match_flow(self, flow: "FlowSummary") -> bool:
        return not self.operand.match_flow(flow)
