"""Flow queries over segmented archives: predicates + planning engine."""

from repro.query.engine import (
    FlowSummary,
    QueryEngine,
    QueryResult,
    QueryStats,
    filter_archive,
    flow_summaries,
    query_archive,
)
from repro.query.predicates import (
    And,
    DestinationAddress,
    DestinationPrefix,
    FlowKind,
    MatchAll,
    Not,
    Or,
    PacketCountRange,
    Predicate,
    RttRange,
    TimeRange,
)

__all__ = [
    "FlowSummary",
    "QueryEngine",
    "QueryResult",
    "QueryStats",
    "filter_archive",
    "flow_summaries",
    "query_archive",
    "And",
    "DestinationAddress",
    "DestinationPrefix",
    "FlowKind",
    "MatchAll",
    "Not",
    "Or",
    "PacketCountRange",
    "Predicate",
    "RttRange",
    "TimeRange",
]
