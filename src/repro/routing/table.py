"""Synthetic routing tables.

The benchmarks need a forwarding table whose structure resembles a real
BGP-derived FIB: a default route, a realistic prefix-length mix peaking
at /24 and /16, and — crucially for section 6 — prefixes that actually
cover the trace's destination population, so that trace packets walk deep
trie paths while random-address packets mostly fall off early.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.ip import IPv4Prefix
from repro.routing.radix import RadixTree
from repro.trace.trace import Trace

#: Realistic FIB prefix-length mix (share of routes per length).
PREFIX_LENGTH_MIX: dict[int, float] = {
    8: 0.02,
    12: 0.03,
    16: 0.22,
    18: 0.05,
    20: 0.13,
    22: 0.10,
    24: 0.42,
    28: 0.03,
}


@dataclass(frozen=True)
class RoutingTableConfig:
    """Shape of the synthetic table.

    The covering fractions control how deep trace destinations match:
    the hottest ``host_route_fraction`` of destinations get /32 host
    routes, ``slash24_fraction`` of /24 subnets get a /24 route, and the
    remainder only match their /16 aggregate — producing the spread of
    per-packet access counts Figure 2 shows for real traffic.
    """

    background_routes: int = 2000
    next_hop_count: int = 16
    include_default: bool = True
    seed: int = 31
    host_route_fraction: float = 0.10
    slash24_fraction: float = 0.60

    def __post_init__(self) -> None:
        if self.background_routes < 0:
            raise ValueError("background_routes cannot be negative")
        if self.next_hop_count < 1:
            raise ValueError("need at least one next hop")
        if not 0.0 <= self.host_route_fraction <= 1.0:
            raise ValueError("host_route_fraction must be in [0,1]")
        if not 0.0 <= self.slash24_fraction <= 1.0:
            raise ValueError("slash24_fraction must be in [0,1]")


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One route: prefix plus next-hop identifier."""

    prefix: IPv4Prefix
    next_hop: int


def _sample_length(rng: random.Random) -> int:
    draw = rng.random()
    running = 0.0
    for length, share in PREFIX_LENGTH_MIX.items():
        running += share
        if draw < running:
            return length
    return 24


def generate_route_entries(config: RoutingTableConfig) -> list[RouteEntry]:
    """Background routes with the realistic length mix."""
    rng = random.Random(config.seed)
    entries: list[RouteEntry] = []
    seen: set[tuple[int, int]] = set()
    if config.include_default:
        entries.append(RouteEntry(IPv4Prefix(0, 0), next_hop=0))
    while len(entries) < config.background_routes + int(config.include_default):
        length = _sample_length(rng)
        first = rng.randrange(1, 224)
        network = ((first << 24) | rng.getrandbits(24)) & IPv4Prefix(0, length).mask()
        key = (network, length)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            RouteEntry(
                IPv4Prefix(network, length),
                next_hop=rng.randrange(1, config.next_hop_count),
            )
        )
    return entries


def covering_entries_for_trace(
    trace: Trace, config: RoutingTableConfig
) -> list[RouteEntry]:
    """Tiered routes for the trace's destinations.

    Every destination's /16 aggregate is present; ``slash24_fraction`` of
    the /24 subnets additionally get a /24; the hottest
    ``host_route_fraction`` of individual destinations get /32 host
    routes.  Popularity is measured on the trace itself, so the
    decompressed trace (same destination population and frequencies)
    builds the same table.
    """
    rng = random.Random(config.seed ^ 0xC0FFEE)
    destination_hits: dict[int, int] = {}
    for packet in trace.packets:
        destination_hits[packet.dst_ip] = destination_hits.get(packet.dst_ip, 0) + 1

    slash16 = {dst & 0xFFFF0000 for dst in destination_hits}
    slash24_all = sorted({dst & 0xFFFFFF00 for dst in destination_hits})
    slash24_selected = [
        network
        for network in slash24_all
        if rng.random() < config.slash24_fraction
    ]
    by_popularity = sorted(
        destination_hits, key=lambda dst: destination_hits[dst], reverse=True
    )
    host_count = int(len(by_popularity) * config.host_route_fraction)
    host_routes = by_popularity[:host_count]

    entries = [
        RouteEntry(IPv4Prefix(network, 16), rng.randrange(1, config.next_hop_count))
        for network in sorted(slash16)
    ]
    entries.extend(
        RouteEntry(IPv4Prefix(network, 24), rng.randrange(1, config.next_hop_count))
        for network in slash24_selected
    )
    entries.extend(
        RouteEntry(IPv4Prefix(address, 32), rng.randrange(1, config.next_hop_count))
        for address in sorted(host_routes)
    )
    return entries


def build_routing_table(
    config: RoutingTableConfig | None = None,
    tree: RadixTree | None = None,
) -> RadixTree:
    """A radix tree loaded with background routes only."""
    config = config or RoutingTableConfig()
    tree = tree or RadixTree()
    for entry in generate_route_entries(config):
        tree.insert(entry.prefix, entry.next_hop)
    return tree


def table_covering_trace(
    trace: Trace,
    config: RoutingTableConfig | None = None,
    tree: RadixTree | None = None,
) -> RadixTree:
    """A radix tree with background routes plus trace-covering routes.

    This mirrors the paper's setting: the RedIRIS router *had* routes for
    the destinations its link carried.
    """
    config = config or RoutingTableConfig()
    tree = tree or RadixTree()
    for entry in generate_route_entries(config):
        tree.insert(entry.prefix, entry.next_hop)
    for entry in covering_entries_for_trace(trace, config):
        tree.insert(entry.prefix, entry.next_hop)
    return tree
