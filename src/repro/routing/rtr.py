"""RTR — the CommBench radix-tree routing benchmark.

CommBench's RTR kernel is IPv4 forwarding through a radix trie plus the
per-packet header work a router does: the packet header is read from a
receive-buffer ring, the TTL is decremented and the checksum adjusted
(header stores), and the packet is handed to the egress queue.  The ring
buffers add a second, cyclically-reused memory region alongside the trie,
which is what distinguishes RTR's cache profile from Route's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import PacketRecord
from repro.routing.base import BenchmarkApp
from repro.routing.radix import RadixTree
from repro.routing.table import RoutingTableConfig, table_covering_trace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class RtrConfig:
    """Receive-ring geometry plus the routing-table settings."""

    ring_slots: int = 64
    slot_bytes: int = 64
    table: RoutingTableConfig = RoutingTableConfig()

    def __post_init__(self) -> None:
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be positive")


class RtrApp(BenchmarkApp):
    """Radix forwarding with receive-ring header handling."""

    name = "rtr"

    def __init__(self, config: RtrConfig | None = None) -> None:
        super().__init__()
        self.config = config or RtrConfig()
        self.tree: RadixTree | None = None
        self._ring: list[int] = []
        self._ring_cursor = 0
        self.forwarded = 0
        self.expired = 0

    def _prepare(self, trace: Trace) -> None:
        self.tree = table_covering_trace(
            trace, self.config.table, RadixTree(heap=self.heap, recorder=None)
        )
        self.tree.recorder = self.recorder
        self._ring = [
            self.heap.alloc(self.config.slot_bytes, label="rx-slot")
            for _ in range(self.config.ring_slots)
        ]

    def _process_packet(self, packet: PacketRecord) -> None:
        assert self.tree is not None, "run() prepares the tables"
        slot = self._ring[self._ring_cursor]
        self._ring_cursor = (self._ring_cursor + 1) % self.config.ring_slots

        # Header fetch from the receive buffer: IP header spans two
        # recorded words (destination read + TTL/checksum word).
        self.recorder.record(slot)
        self.recorder.record(slot + 16)

        if packet.ttl <= 1:
            self.expired += 1
            self.recorder.record(slot + 8)  # ICMP scratch write
            return

        next_hop = self.tree.lookup(packet.dst_ip)
        if next_hop is not None:
            self.forwarded += 1
        # TTL decrement + incremental checksum update: header stores.
        self.recorder.record(slot + 8)
        self.recorder.record(slot + 10)
