"""Route — the Netbench IPv4 forwarding benchmark.

The simplest of the three section 6 applications: for every packet,
perform a longest-prefix-match lookup of the destination address in the
radix tree and count the result.  All memory accesses happen inside the
trie descent, so the per-packet access count directly reflects the
destination's trie depth — which is why address structure (original vs
random vs fractal) separates the traces in Figure 2.
"""

from __future__ import annotations

from repro.net.packet import PacketRecord
from repro.routing.base import BenchmarkApp
from repro.routing.radix import RadixTree
from repro.routing.table import RoutingTableConfig, table_covering_trace
from repro.trace.trace import Trace


class RouteApp(BenchmarkApp):
    """Per-packet LPM forwarding over an instrumented radix tree."""

    name = "route"

    def __init__(self, table_config: RoutingTableConfig | None = None) -> None:
        super().__init__()
        self.table_config = table_config or RoutingTableConfig()
        self.tree: RadixTree | None = None
        self.forwarded = 0
        self.dropped = 0
        self._next_hop_histogram: dict[int, int] = {}

    def _prepare(self, trace: Trace) -> None:
        # The table covers the trace destinations (the RedIRIS router
        # had routes for its own traffic) — built uninstrumented, then
        # the recorder is attached for the packet-processing phase.
        self.tree = table_covering_trace(
            trace, self.table_config, RadixTree(heap=self.heap, recorder=None)
        )
        self.tree.recorder = self.recorder

    def _process_packet(self, packet: PacketRecord) -> None:
        assert self.tree is not None, "run() prepares the tree"
        next_hop = self.tree.lookup(packet.dst_ip)
        if next_hop is None:
            self.dropped += 1
        else:
            self.forwarded += 1
            self._next_hop_histogram[next_hop] = (
                self._next_hop_histogram.get(next_hop, 0) + 1
            )

    def next_hop_histogram(self) -> dict[int, int]:
        """Packets per chosen next hop (sanity check on table coverage)."""
        return dict(self._next_hop_histogram)
