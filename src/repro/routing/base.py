"""Shared benchmark-application harness.

Every section 6 application processes a trace packet-by-packet between
recorder checkpoints (the ATOM instrumentation pattern) and yields a
:class:`BenchmarkResult`: the raw recorder (for cache replays at any
geometry) plus the derived per-packet profile.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.memsim.access import AccessRecorder
from repro.memsim.cache import CacheConfig
from repro.memsim.memory import SimulatedHeap
from repro.memsim.metrics import TraceMemoryProfile, profile_from_recorder
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace


@dataclass
class BenchmarkResult:
    """Outcome of running one app over one trace."""

    app_name: str
    trace_name: str
    recorder: AccessRecorder
    packets_processed: int

    def profile(self, cache_config: CacheConfig | None = None) -> TraceMemoryProfile:
        """Per-packet access/miss profile under a cache geometry."""
        return profile_from_recorder(
            f"{self.app_name}:{self.trace_name}", self.recorder, cache_config
        )

    def accesses_per_packet(self) -> list[int]:
        """Raw Figure 2 data."""
        return self.recorder.accesses_per_packet()


class BenchmarkApp(abc.ABC):
    """Base class: builds its data structures, then processes traces.

    Subclasses implement :meth:`_prepare` (installing tables against the
    trace) and :meth:`_process_packet`.
    """

    name = "benchmark"

    def __init__(self) -> None:
        self.heap = SimulatedHeap()
        self.recorder = AccessRecorder()

    @abc.abstractmethod
    def _prepare(self, trace: Trace) -> None:
        """Build tables/state for ``trace`` (not instrumented per packet)."""

    @abc.abstractmethod
    def _process_packet(self, packet: PacketRecord) -> None:
        """Handle one packet; every data-structure touch is recorded."""

    def run(self, trace: Trace) -> BenchmarkResult:
        """Process a whole trace with per-packet checkpoints."""
        self._prepare(trace)
        for packet in trace.packets:
            self.recorder.begin_packet()
            self._process_packet(packet)
            self.recorder.end_packet()
        return BenchmarkResult(
            app_name=self.name,
            trace_name=trace.name,
            recorder=self.recorder,
            packets_processed=len(trace.packets),
        )
