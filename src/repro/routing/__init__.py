"""Radix-tree routing benchmarks (section 6).

The paper validates decompressed traces with three benchmark programs —
Route (Netbench), NAT (Netbench) and RTR (CommBench) — that "all ...
involve the Radix Tree Routing inside their algorithms".  This subpackage
provides the from-scratch instrumented radix tree, synthetic routing
tables, and the three applications.
"""

from repro.routing.radix import RadixNodeLayout, RadixTree
from repro.routing.table import RouteEntry, RoutingTableConfig, build_routing_table, table_covering_trace
from repro.routing.base import BenchmarkApp, BenchmarkResult
from repro.routing.route import RouteApp
from repro.routing.nat import NatApp, NatConfig
from repro.routing.rtr import RtrApp, RtrConfig
from repro.routing.classifier import ClassifierApp, ClassifierConfig

__all__ = [
    "RadixNodeLayout",
    "RadixTree",
    "RouteEntry",
    "RoutingTableConfig",
    "build_routing_table",
    "table_covering_trace",
    "BenchmarkApp",
    "BenchmarkResult",
    "RouteApp",
    "NatApp",
    "NatConfig",
    "RtrApp",
    "RtrConfig",
    "ClassifierApp",
    "ClassifierConfig",
]
