"""Instrumented radix (binary) routing trie.

"The Radix Tree is a binary tree, which starting at the root, stores the
prefix address and mask so far.  As you move down the tree, more bits are
matched going one way down the tree.  If they don't match, the other
branch holds the entry required. ... The returned value from looking up
an entry will typically be the next hop IP router."

The tree is a bit-per-level binary trie whose nodes live on a
:class:`~repro.memsim.memory.SimulatedHeap`; every field touch during
insertion and lookup is logged against the node's simulated address, so
the access recorder sees exactly the loads a pointer-chasing C
implementation would issue: read the node's entry slot, read the child
pointer, move down.  Longest-prefix match is the standard
remember-the-last-entry descent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.access import AccessRecorder
from repro.memsim.memory import SimulatedHeap
from repro.net.ip import IPv4Prefix


@dataclass(frozen=True)
class RadixNodeLayout:
    """Byte offsets of the simulated node fields.

    A C node would be ``struct { u32 entry; node *left; node *right; u32
    nexthop; }`` — 32 bytes with alignment.  Offsets are what the access
    recorder logs, so two fields of one node share a cache line while
    distinct nodes do not (with 32-byte lines).
    """

    node_bytes: int = 32
    entry_offset: int = 0
    left_offset: int = 8
    right_offset: int = 16
    value_offset: int = 24


class _Node:
    """In-Python node mirror; the address is its simulated identity."""

    __slots__ = ("address", "left", "right", "has_entry", "next_hop", "depth")

    def __init__(self, address: int, depth: int) -> None:
        self.address = address
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.has_entry = False
        self.next_hop = 0
        self.depth = depth


class RadixTree:
    """Longest-prefix-match radix trie with access instrumentation."""

    def __init__(
        self,
        heap: SimulatedHeap | None = None,
        recorder: AccessRecorder | None = None,
        layout: RadixNodeLayout | None = None,
    ) -> None:
        self.heap = heap or SimulatedHeap()
        self.recorder = recorder
        self.layout = layout or RadixNodeLayout()
        self._root = self._new_node(depth=0)
        self._entry_count = 0
        self.lookup_count = 0

    # -- instrumentation helpers -------------------------------------------

    def _touch(self, node: _Node, offset: int) -> None:
        if self.recorder is not None:
            self.recorder.record(node.address + offset)

    def _new_node(self, depth: int) -> _Node:
        address = self.heap.alloc(self.layout.node_bytes, label="radix-node")
        return _Node(address, depth)

    # -- construction ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of routes installed."""
        return self._entry_count

    @property
    def node_count(self) -> int:
        """Number of trie nodes allocated."""
        return self.heap.alloc_count

    def insert(self, prefix: IPv4Prefix, next_hop: int) -> None:
        """Install a route; replaces an existing identical prefix."""
        node = self._root
        self._touch(node, self.layout.entry_offset)
        for position in range(prefix.length):
            bit = prefix.bit(position)
            if bit == 0:
                self._touch(node, self.layout.left_offset)
                if node.left is None:
                    node.left = self._new_node(node.depth + 1)
                node = node.left
            else:
                self._touch(node, self.layout.right_offset)
                if node.right is None:
                    node.right = self._new_node(node.depth + 1)
                node = node.right
        if not node.has_entry:
            self._entry_count += 1
        node.has_entry = True
        node.next_hop = next_hop
        self._touch(node, self.layout.value_offset)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, address: int) -> int | None:
        """Longest-prefix-match next hop for ``address`` (None if no route).

        Models the 4.4BSD radix algorithm's cost structure: the descent
        reads each node (header + child pointer: two logged accesses per
        level) until it falls off the trie, then *backtracks* towards the
        root re-examining each node's entry slot (one access per level)
        until it finds the longest matching prefix.  Addresses covered by
        a deep route terminate almost immediately after fall-off;
        addresses that only match a shallow aggregate pay the walk back up
        — which is exactly why random/fractal destinations separate from
        real ones in Figure 2.
        """
        self.lookup_count += 1
        layout = self.layout
        node = self._root
        position = 0
        path: list[_Node] = []
        while True:
            self._touch(node, layout.entry_offset)
            path.append(node)
            if position == 32:
                break
            bit = (address >> (31 - position)) & 1
            if bit == 0:
                self._touch(node, layout.left_offset)
                child = node.left
            else:
                self._touch(node, layout.right_offset)
                child = node.right
            if child is None:
                break
            node = child
            position += 1

        for candidate in reversed(path):
            self._touch(candidate, layout.entry_offset)
            if candidate.has_entry:
                self._touch(candidate, layout.value_offset)
                return candidate.next_hop
        return None

    def lookup_depth(self, address: int) -> int:
        """Number of nodes a lookup for ``address`` visits (no logging)."""
        node = self._root
        depth = 1
        position = 0
        while position < 32:
            bit = (address >> (31 - position)) & 1
            child = node.left if bit == 0 else node.right
            if child is None:
                return depth
            node = child
            depth += 1
            position += 1
        return depth

    # -- introspection ----------------------------------------------------------

    def max_depth(self) -> int:
        """Deepest node in the trie."""
        deepest = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            deepest = max(deepest, node.depth)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return deepest

    def entries(self) -> list[tuple[IPv4Prefix, int]]:
        """All installed routes as (prefix, next hop)."""
        out: list[tuple[IPv4Prefix, int]] = []
        stack: list[tuple[_Node, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, bits, length = stack.pop()
            if node.has_entry:
                network = bits << (32 - length) if length else 0
                out.append((IPv4Prefix(network, length), node.next_hop))
            if node.left is not None:
                stack.append((node.left, bits << 1, length + 1))
            if node.right is not None:
                stack.append((node.right, (bits << 1) | 1, length + 1))
        return sorted(out, key=lambda item: (item[0].length, item[0].network))
