"""NAT — the Netbench network-address-translation benchmark.

Per packet: look the flow up in a hash table of translation entries
(bucket probe + entry compares, all against simulated memory); on a miss
allocate a new entry (heap churn — the paper points at allocator reuse as
one source of original-vs-random divergence) and route the packet through
the radix tree to pick the outgoing interface; on FIN/RST free the entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.flowkey import FiveTuple, flow_hash
from repro.net.packet import PacketRecord
from repro.net.tcp import is_flow_terminator
from repro.routing.base import BenchmarkApp
from repro.routing.radix import RadixTree
from repro.routing.table import RoutingTableConfig, table_covering_trace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class NatConfig:
    """NAT table geometry."""

    bucket_count: int = 4096
    entry_bytes: int = 48
    bucket_bytes: int = 8
    table: RoutingTableConfig = RoutingTableConfig()

    def __post_init__(self) -> None:
        if self.bucket_count < 1:
            raise ValueError("bucket_count must be positive")


class _NatEntry:
    """One translation entry living at a simulated address."""

    __slots__ = ("address", "key", "translated_port", "next_hop")

    def __init__(self, address: int, key: FiveTuple, translated_port: int) -> None:
        self.address = address
        self.key = key
        self.translated_port = translated_port
        self.next_hop = 0


class NatApp(BenchmarkApp):
    """Flow-table NAT with radix-tree egress selection."""

    name = "nat"

    def __init__(self, config: NatConfig | None = None) -> None:
        super().__init__()
        self.config = config or NatConfig()
        self.tree: RadixTree | None = None
        self._buckets: list[list[_NatEntry]] = []
        self._bucket_addresses: list[int] = []
        self._next_port = 10_000
        self.translations_created = 0
        self.translations_removed = 0
        self.hits = 0

    def _prepare(self, trace: Trace) -> None:
        self.tree = table_covering_trace(
            trace, self.config.table, RadixTree(heap=self.heap, recorder=None)
        )
        self.tree.recorder = self.recorder
        self._buckets = [[] for _ in range(self.config.bucket_count)]
        self._bucket_addresses = [
            self.heap.alloc(self.config.bucket_bytes, label="nat-bucket")
            for _ in range(self.config.bucket_count)
        ]

    def _process_packet(self, packet: PacketRecord) -> None:
        assert self.tree is not None, "run() prepares the tables"
        key = packet.five_tuple().canonical()
        index = flow_hash(key) % self.config.bucket_count

        # Probe the bucket head, then walk the chain comparing keys.
        self.recorder.record(self._bucket_addresses[index])
        bucket = self._buckets[index]
        found: _NatEntry | None = None
        for entry in bucket:
            self.recorder.record(entry.address)  # key compare
            if entry.key == key:
                found = entry
                break

        if found is None:
            address = self.heap.alloc(self.config.entry_bytes, label="nat-entry")
            self._next_port += 1
            if self._next_port > 60_000:
                self._next_port = 10_000
            found = _NatEntry(address, key, self._next_port)
            found.next_hop = self.tree.lookup(packet.dst_ip) or 0
            bucket.append(found)
            self.recorder.record(address)  # entry initialization store
            self.recorder.record(self._bucket_addresses[index])  # chain update
            self.translations_created += 1
        else:
            self.hits += 1
            # Touch the translation fields (the rewrite a real NAT does).
            self.recorder.record(found.address + 16)

        if is_flow_terminator(packet.flags):
            bucket.remove(found)
            self.recorder.record(self._bucket_addresses[index])
            self.heap.free(found.address)
            self.translations_removed += 1

    def live_translations(self) -> int:
        """Currently installed entries."""
        return sum(len(bucket) for bucket in self._buckets)
