"""CLASSIFY — a two-field packet classifier benchmark.

Netbench's suite includes table-lookup/classification kernels alongside
Route and NAT.  This app models the standard hierarchical-trie
classifier: a destination radix trie whose matching entries point to
per-rule source tries.  Per packet: walk the destination trie, then the
rule's source trie, touching simulated memory exactly like the other
section 6 apps — a fourth, heavier consumer of the same substrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.ip import IPv4Prefix
from repro.net.packet import PacketRecord
from repro.routing.base import BenchmarkApp
from repro.routing.radix import RadixTree
from repro.routing.table import RoutingTableConfig, covering_entries_for_trace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class ClassifierConfig:
    """Rule-set shape.

    Each destination rule carries a source trie of ``sources_per_rule``
    prefixes; unmatched packets fall to the default action.
    """

    sources_per_rule: int = 8
    source_prefix_length: int = 16
    seed: int = 101
    table: RoutingTableConfig = RoutingTableConfig()

    def __post_init__(self) -> None:
        if self.sources_per_rule < 1:
            raise ValueError("sources_per_rule must be >= 1")
        if not 0 < self.source_prefix_length <= 32:
            raise ValueError("source_prefix_length must be 1..32")


class ClassifierApp(BenchmarkApp):
    """Hierarchical-trie (dst, src) classification."""

    name = "classify"

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        super().__init__()
        self.config = config or ClassifierConfig()
        self._dst_tree: RadixTree | None = None
        self._src_trees: list[RadixTree] = []
        self.matched = 0
        self.default_action = 0

    def _prepare(self, trace: Trace) -> None:
        rng = random.Random(self.config.seed)
        self._dst_tree = RadixTree(heap=self.heap, recorder=None)
        self._src_trees = []

        mask = IPv4Prefix(0, self.config.source_prefix_length).mask()
        client_prefixes = sorted(
            {packet.src_ip & mask for packet in trace.packets}
        )
        for entry in covering_entries_for_trace(trace, self.config.table):
            rule_index = len(self._src_trees)
            source_tree = RadixTree(heap=self.heap, recorder=None)
            chosen = rng.sample(
                client_prefixes,
                min(self.config.sources_per_rule, len(client_prefixes)),
            )
            for network in chosen:
                source_tree.insert(
                    IPv4Prefix(network, self.config.source_prefix_length),
                    rng.randrange(1, 16),
                )
            # Wildcard source so every rule terminates classification.
            source_tree.insert(IPv4Prefix(0, 0), 0)
            self._src_trees.append(source_tree)
            self._dst_tree.insert(entry.prefix, rule_index)

        self._dst_tree.recorder = self.recorder
        for source_tree in self._src_trees:
            source_tree.recorder = self.recorder

    def _process_packet(self, packet: PacketRecord) -> None:
        assert self._dst_tree is not None, "run() prepares the tries"
        rule_index = self._dst_tree.lookup(packet.dst_ip)
        if rule_index is None:
            self.default_action += 1
            return
        action = self._src_trees[rule_index].lookup(packet.src_ip)
        if action:
            self.matched += 1
        else:
            self.default_action += 1
