"""Temporal-locality analysis of address streams.

"Spatial and temporal locality of IP address" is one of the semantic
properties the paper says traces must preserve.  This module quantifies
the *temporal* half with the standard tools:

* LRU stack-distance profile — for each reference, the number of distinct
  addresses seen since the previous reference to the same address
  (infinite for cold references);
* working-set curve — distinct addresses per window of w references.

The locality experiment compares these profiles across the original,
decompressed and control traces — a stronger, cache-independent version
of Figure 3's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

COLD = -1
"""Stack distance marker for first-time references."""


def stack_distances(references: Iterable[int]) -> list[int]:
    """LRU stack distance of every reference (``COLD`` for first touch).

    O(n · d) with a list-based stack — fine for the trace sizes here and
    exactly the LRU-stack model semantics of :mod:`repro.synth.lrustack`.
    """
    stack: list[int] = []
    out: list[int] = []
    for reference in references:
        try:
            depth = stack.index(reference)
        except ValueError:
            out.append(COLD)
            stack.insert(0, reference)
            continue
        out.append(depth)
        stack.pop(depth)
        stack.insert(0, reference)
    return out


@dataclass(frozen=True)
class LocalityProfile:
    """Summary of one address stream's temporal locality."""

    reference_count: int
    unique_count: int
    cold_fraction: float
    median_stack_distance: float
    mean_stack_distance: float
    hit_fraction_within: dict[int, float]

    def summary_lines(self) -> list[str]:
        lines = [
            f"references            : {self.reference_count}",
            f"unique addresses      : {self.unique_count}",
            f"cold fraction         : {self.cold_fraction:.1%}",
            f"median stack distance : {self.median_stack_distance:.1f}",
            f"mean stack distance   : {self.mean_stack_distance:.1f}",
        ]
        for depth, fraction in sorted(self.hit_fraction_within.items()):
            lines.append(f"hits within depth {depth:<4}: {fraction:.1%}")
        return lines


def profile_locality(
    references: Sequence[int], depths: Sequence[int] = (8, 64, 256)
) -> LocalityProfile:
    """Build a :class:`LocalityProfile` for an address stream."""
    if not references:
        raise ValueError("cannot profile an empty reference stream")
    distances = stack_distances(references)
    warm = sorted(d for d in distances if d != COLD)
    cold = len(distances) - len(warm)
    if warm:
        median = float(warm[len(warm) // 2])
        mean = sum(warm) / len(warm)
    else:
        median = mean = 0.0
    within = {
        depth: (sum(1 for d in warm if d < depth) / len(distances))
        for depth in depths
    }
    return LocalityProfile(
        reference_count=len(references),
        unique_count=len(set(references)),
        cold_fraction=cold / len(distances),
        median_stack_distance=median,
        mean_stack_distance=mean,
        hit_fraction_within=within,
    )


def working_set_sizes(
    references: Sequence[int], window: int
) -> list[int]:
    """Distinct addresses in each non-overlapping window of ``window`` refs."""
    if window < 1:
        raise ValueError(f"window must be >= 1: {window}")
    return [
        len(set(references[start : start + window]))
        for start in range(0, len(references), window)
    ]
