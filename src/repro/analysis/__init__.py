"""Analysis utilities: CDFs, trace comparisons and text reports."""

from repro.analysis.archive import archive_overview_lines, segment_table
from repro.analysis.cdf import EmpiricalCdf, histogram
from repro.analysis.compare import (
    earth_movers_distance,
    kolmogorov_smirnov,
    max_bucket_difference,
)
from repro.analysis.report import ascii_bar_chart, ascii_curve, format_table
from repro.analysis.locality import (
    LocalityProfile,
    profile_locality,
    stack_distances,
    working_set_sizes,
)
from repro.analysis.flagseq import (
    flag_grammar_similarity,
    flag_ngrams,
    flow_flag_sequence,
    ngram_distribution,
)
from repro.analysis.fidelity import (
    FidelityReport,
    ScenarioFidelity,
    evaluate_scenario,
    evaluate_scenarios,
    flow_size_distance,
    interarrival_entropy,
    temporal_complexity,
)
from repro.analysis.matrices import (
    AddressAnonymizer,
    LinkStat,
    MatrixReport,
    ScanCandidate,
    StreamingWindowAggregator,
    TrafficMatrix,
    WindowStats,
    matrix_report_for_archive,
    matrix_report_for_compressed,
    publish_window_gauges,
    window_stats_for_compressed,
)

__all__ = [
    "archive_overview_lines",
    "segment_table",
    "EmpiricalCdf",
    "histogram",
    "earth_movers_distance",
    "kolmogorov_smirnov",
    "max_bucket_difference",
    "ascii_bar_chart",
    "ascii_curve",
    "format_table",
    "LocalityProfile",
    "profile_locality",
    "stack_distances",
    "working_set_sizes",
    "flag_grammar_similarity",
    "flag_ngrams",
    "flow_flag_sequence",
    "ngram_distribution",
    "FidelityReport",
    "ScenarioFidelity",
    "evaluate_scenario",
    "evaluate_scenarios",
    "flow_size_distance",
    "interarrival_entropy",
    "temporal_complexity",
    "AddressAnonymizer",
    "LinkStat",
    "MatrixReport",
    "ScanCandidate",
    "StreamingWindowAggregator",
    "TrafficMatrix",
    "WindowStats",
    "matrix_report_for_archive",
    "matrix_report_for_compressed",
    "publish_window_gauges",
    "window_stats_for_compressed",
]
