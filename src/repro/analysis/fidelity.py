"""The differential fidelity harness — score every scenario's roundtrip.

"Measuring the Complexity of Packet Traces" frames a trace by two
numbers: its *non-temporal* complexity (the entropy of its marginal
behaviour) and its *temporal* complexity (how much knowing the present
tells you about the next step).  The harness applies that vocabulary to
the compressor's central claim: for each registered scenario
(:mod:`repro.synth.scenarios`), compress → reconstruct, then score

* **compression ratio** — container bytes over the TSH bytes of the
  input (smaller is better);
* **interarrival entropy** — Shannon entropy of log2-binned packet
  interarrival times, original vs. reconstructed (the non-temporal
  complexity axis);
* **temporal complexity** — first-order conditional entropy
  ``H(X_t | X_{t-1})`` of the same binned sequence (how much structure
  the timing has beyond its marginal);
* **flow-size distance** — two-sample Kolmogorov–Smirnov statistic
  between per-flow packet-count distributions
  (:func:`repro.analysis.compare.kolmogorov_smirnov`).

The result is a :class:`FidelityReport` — a stable JSON document in the
:mod:`repro.obs` RunReport mould (``SCHEMA`` string, ``to_dict`` /
``to_json`` / ``write`` / ``from_dict`` / ``summary_lines``) — so every
scenario is simultaneously a workload and a regression probe: CI pins
each scenario's ratio and complexity deltas as floors.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.compare import kolmogorov_smirnov

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.options import Options
    from repro.net.packet import PacketRecord
    from repro.trace.trace import Trace

SCHEMA = "repro.analysis/fidelity-report/v1"

MIN_INTERARRIVAL = 1e-6
"""Interarrivals below one microsecond share the lowest log2 bin."""


# -- complexity metrics ------------------------------------------------------


def interarrival_bins(packets: Sequence["PacketRecord"]) -> list[int]:
    """Log2 bin indices of consecutive packet interarrival times.

    The binning quantizes timing into octaves (1 µs floor), which is the
    scale the complexity paper's entropy estimates work at: fine enough
    to separate back-to-back bursts from think time, coarse enough that
    the entropy converges on real trace lengths.
    """
    bins = []
    for previous, current in zip(packets, packets[1:]):
        delta = max(current.timestamp - previous.timestamp, MIN_INTERARRIVAL)
        bins.append(int(math.floor(math.log2(delta))))
    return bins


def _entropy(counts: Iterable[int], total: int) -> float:
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def interarrival_entropy(packets: Sequence["PacketRecord"]) -> float:
    """Shannon entropy (bits) of the log2-binned interarrival marginal.

    The non-temporal complexity axis: how unpredictable one interarrival
    is in isolation.
    """
    bins = interarrival_bins(packets)
    counts = Counter(bins)
    return _entropy(counts.values(), len(bins))


def temporal_complexity(packets: Sequence["PacketRecord"]) -> float:
    """First-order conditional entropy ``H(X_t | X_{t-1})`` in bits.

    Computed as ``H(pairs) - H(singles)`` over the binned interarrival
    sequence.  Low values mean the next gap is predictable from the
    current one (strong temporal structure — bursts, pacing); values
    near the marginal entropy mean the timing is memoryless.
    """
    bins = interarrival_bins(packets)
    if len(bins) < 2:
        return 0.0
    pair_counts = Counter(zip(bins, bins[1:]))
    single_counts = Counter(bins[:-1])
    joint = _entropy(pair_counts.values(), len(bins) - 1)
    marginal = _entropy(single_counts.values(), len(bins) - 1)
    return max(0.0, joint - marginal)


def flow_sizes(packets: Sequence["PacketRecord"]) -> list[int]:
    """Packets per flow, under the canonical direction-free flow key."""
    counts: Counter = Counter()
    for p in packets:
        endpoints = tuple(
            sorted([(p.src_ip, p.src_port), (p.dst_ip, p.dst_port)])
        )
        counts[endpoints + (p.protocol,)] += 1
    return sorted(counts.values())


def flow_size_distance(
    a: Sequence["PacketRecord"], b: Sequence["PacketRecord"]
) -> float:
    """KS statistic between the two traces' flow-size distributions.

    Empty traces score 0 against each other (nothing was lost) and 1
    against anything non-empty (everything was), so a zero-packet
    scenario at a tiny duration degrades to a score instead of a crash.
    """
    sizes_a = [float(s) for s in flow_sizes(a)]
    sizes_b = [float(s) for s in flow_sizes(b)]
    if not sizes_a and not sizes_b:
        return 0.0
    if not sizes_a or not sizes_b:
        return 1.0
    return kolmogorov_smirnov(sizes_a, sizes_b)


# -- per-scenario scoring ----------------------------------------------------


@dataclass(frozen=True)
class ScenarioFidelity:
    """One scenario's roundtrip scorecard."""

    scenario: str
    seed: int
    packets: int
    flows: int
    tsh_bytes: int
    compressed_bytes: int
    ratio: float
    original_entropy: float
    reconstructed_entropy: float
    original_temporal: float
    reconstructed_temporal: float
    flow_size_ks: float

    @property
    def entropy_delta(self) -> float:
        """Absolute interarrival-entropy drift through the roundtrip."""
        return abs(self.original_entropy - self.reconstructed_entropy)

    @property
    def temporal_delta(self) -> float:
        """Absolute temporal-complexity drift through the roundtrip."""
        return abs(self.original_temporal - self.reconstructed_temporal)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "packets": self.packets,
            "flows": self.flows,
            "tsh_bytes": self.tsh_bytes,
            "compressed_bytes": self.compressed_bytes,
            "ratio": self.ratio,
            "original_entropy": self.original_entropy,
            "reconstructed_entropy": self.reconstructed_entropy,
            "entropy_delta": self.entropy_delta,
            "original_temporal": self.original_temporal,
            "reconstructed_temporal": self.reconstructed_temporal,
            "temporal_delta": self.temporal_delta,
            "flow_size_ks": self.flow_size_ks,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ScenarioFidelity":
        return cls(
            scenario=document["scenario"],
            seed=document["seed"],
            packets=document["packets"],
            flows=document["flows"],
            tsh_bytes=document["tsh_bytes"],
            compressed_bytes=document["compressed_bytes"],
            ratio=document["ratio"],
            original_entropy=document["original_entropy"],
            reconstructed_entropy=document["reconstructed_entropy"],
            original_temporal=document["original_temporal"],
            reconstructed_temporal=document["reconstructed_temporal"],
            flow_size_ks=document["flow_size_ks"],
        )


def score_roundtrip(
    scenario: str,
    seed: int,
    original: "Trace",
    reconstructed: "Trace",
    compressed_bytes: int,
) -> ScenarioFidelity:
    """Score one already-performed roundtrip (the harness's pure core)."""
    from repro.trace.tsh import tsh_file_size

    original_packets = list(original)
    reconstructed_packets = list(reconstructed)
    tsh_bytes = tsh_file_size(len(original_packets))
    return ScenarioFidelity(
        scenario=scenario,
        seed=seed,
        packets=len(original_packets),
        flows=len(flow_sizes(original_packets)),
        tsh_bytes=tsh_bytes,
        compressed_bytes=compressed_bytes,
        ratio=compressed_bytes / tsh_bytes if tsh_bytes else 0.0,
        original_entropy=interarrival_entropy(original_packets),
        reconstructed_entropy=interarrival_entropy(reconstructed_packets),
        original_temporal=temporal_complexity(original_packets),
        reconstructed_temporal=temporal_complexity(reconstructed_packets),
        flow_size_ks=flow_size_distance(
            original_packets, reconstructed_packets
        ),
    )


def evaluate_scenario(
    name: str,
    *,
    duration: float = 10.0,
    flow_rate: float = 40.0,
    seed: int | None = None,
    options: "Options | None" = None,
) -> ScenarioFidelity:
    """Generate, compress, reconstruct and score one scenario."""
    from repro.api.options import Options
    from repro.core.codec import deserialize_compressed, serialize_compressed
    from repro.core.compressor import compress_trace
    from repro.core.decompressor import decompress_trace
    from repro.synth.scenarios import get_scenario

    scenario = get_scenario(name)
    options = options or Options()
    actual_seed = scenario.default_seed if seed is None else seed
    original = scenario.build(
        duration=duration, flow_rate=flow_rate, seed=actual_seed
    )
    compressed = compress_trace(original, options.compressor)
    data = serialize_compressed(
        compressed, backend=options.codec.backend, level=options.codec.level
    )
    # Reconstruct from the serialized bytes, not the in-memory object —
    # the score must reflect what a reader of the file would get.
    reconstructed = decompress_trace(
        deserialize_compressed(data), options.decompressor
    )
    return score_roundtrip(name, actual_seed, original, reconstructed, len(data))


# -- the report --------------------------------------------------------------


@dataclass(frozen=True)
class FidelityReport:
    """One fidelity sweep over a set of scenarios, ready to serialize."""

    duration: float
    flow_rate: float
    backend: str
    scenarios: tuple[ScenarioFidelity, ...]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "duration": self.duration,
            "flow_rate": self.flow_rate,
            "backend": self.backend,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, document: dict) -> "FidelityReport":
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"not a fidelity report (schema={document.get('schema')!r}, "
                f"expected {SCHEMA!r})"
            )
        return cls(
            duration=document["duration"],
            flow_rate=document["flow_rate"],
            backend=document.get("backend", "default"),
            scenarios=tuple(
                ScenarioFidelity.from_dict(entry)
                for entry in document.get("scenarios", [])
            ),
        )

    def by_scenario(self) -> dict[str, ScenarioFidelity]:
        return {s.scenario: s for s in self.scenarios}

    def summary_lines(self) -> list[str]:
        """The stdout table behind ``repro fidelity``."""
        header = (
            f"{'scenario':<15s} {'packets':>8s} {'ratio':>8s} "
            f"{'dH(iat)':>8s} {'dH(tmp)':>8s} {'KS(flow)':>9s}"
        )
        lines = [header, "-" * len(header)]
        for s in self.scenarios:
            lines.append(
                f"{s.scenario:<15s} {s.packets:>8d} {s.ratio:>8.4f} "
                f"{s.entropy_delta:>8.3f} {s.temporal_delta:>8.3f} "
                f"{s.flow_size_ks:>9.3f}"
            )
        return lines


def evaluate_scenarios(
    names: Sequence[str] | None = None,
    *,
    duration: float = 10.0,
    flow_rate: float = 40.0,
    seed: int | None = None,
    options: "Options | None" = None,
) -> FidelityReport:
    """Run the harness over ``names`` (default: every registered scenario)."""
    from repro.api.options import Options
    from repro.synth.scenarios import scenario_names

    options = options or Options()
    if names is None:
        names = scenario_names()
    scored = tuple(
        evaluate_scenario(
            name,
            duration=duration,
            flow_rate=flow_rate,
            seed=seed,
            options=options,
        )
        for name in names
    )
    return FidelityReport(
        duration=duration,
        flow_rate=flow_rate,
        backend=options.codec.backend or "default",
        scenarios=scored,
    )
