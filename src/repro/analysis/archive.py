"""Reports over segmented archives — rendered from the index, not the data.

Everything here reads only the archive footer (via an open
:class:`~repro.archive.reader.ArchiveReader`), so reporting on a
multi-gigabyte archive costs two seeks.  The per-segment table reuses
the evaluation harness's :func:`~repro.analysis.report.format_table`.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.archive.format import SegmentIndexEntry
from repro.archive.reader import ArchiveReader
from repro.core.backends import backend_for_tag
from repro.core.errors import CodecError
from repro.net.ip import format_ipv4


def segment_backend_label(entry: SegmentIndexEntry) -> str:
    """Render one segment's section-backend tags for the index table.

    Uniform segments collapse to the single backend name; mixed
    segments (an ``auto`` writer may pick per section) list each
    section's backend in section order.  A tag no registered backend
    claims renders as ``?0xNN`` — ``info`` must stay usable on files
    whose codec this build lacks, even though decoding them will not be.
    """
    names = []
    for tag in entry.section_backends:
        try:
            names.append(backend_for_tag(tag).name)
        except CodecError:
            names.append(f"?{tag:#04x}")
    return names[0] if len(set(names)) == 1 else "/".join(names)


def archive_overview_lines(reader: ArchiveReader) -> list[str]:
    """Headline numbers for one archive, from the footer index alone."""
    bounds = reader.time_bounds()
    span = f"{bounds[0]:.4f} .. {bounds[1]:.4f} s" if bounds else "(empty)"
    segment_bytes = sum(entry.length for entry in reader.entries)
    backends = sorted(
        {segment_backend_label(entry) for entry in reader.entries}
    ) or ["(none)"]
    return [
        f"archive              : {reader.path.name}",
        f"format               : v{reader.version}",
        f"epoch                : {reader.epoch:.6f} s",
        f"segments             : {reader.segment_count}",
        f"flows                : {reader.flow_count()}",
        f"original packets     : {reader.packet_count()}",
        f"flow time span       : {span}",
        f"segment bytes        : {segment_bytes} B",
        f"backends             : {', '.join(backends)}",
    ]


def backend_usage_lines(reader: ArchiveReader) -> list[str]:
    """Per-backend aggregates across the index: segments and byte share."""
    usage: dict[str, list[int]] = {}
    for entry in reader.entries:
        counts = usage.setdefault(segment_backend_label(entry), [0, 0])
        counts[0] += 1
        counts[1] += entry.length
    if not usage:
        return []
    total = sum(size for _, size in usage.values()) or 1
    lines = ["backend usage:"]
    for label in sorted(usage):
        count, size = usage[label]
        lines.append(
            f"  {label:<20} : {count} segment(s), {size} B "
            f"({100.0 * size / total:.1f}% of data)"
        )
    return lines


def prune_probe_lines(reader: ArchiveReader) -> list[str]:
    """Index-prune statistics from a dry-run query — no segment decoded.

    Probes the middle half of the archive's time span (the shape of a
    typical window query) against the footer index alone and reports how
    many segments — and how many bytes — the index rules out before any
    decode.  Empty and single-segment archives skip the probe: there is
    nothing an index could prune.
    """
    from repro.query.engine import QueryEngine
    from repro.query.predicates import TimeRange

    bounds = reader.time_bounds()
    if not bounds or reader.segment_count < 2:
        return []
    start, end = bounds
    low = start + (end - start) / 4.0
    high = start + 3.0 * (end - start) / 4.0
    stats = QueryEngine(reader).index_probe(TimeRange(low, high))
    pruned = stats.segments_total - stats.segments_matched
    return [
        f"index prune probe    : window {low:.4f} .. {high:.4f} s (dry run)",
        f"  segments pruned    : {pruned}/{stats.segments_total} "
        f"({100.0 * pruned / stats.segments_total:.1f}%) without decoding",
        f"  bytes to decode    : {stats.bytes_decoded}/{stats.bytes_total} B",
    ]


def segment_table(reader: ArchiveReader) -> str:
    """One row per segment: byte range, time bounds, flow mix, addresses."""
    rows = []
    for index, entry in enumerate(reader.entries):
        if entry.summary.addresses:
            addresses = (
                f"{entry.address_count} "
                f"({format_ipv4(entry.summary.addresses[0])}"
                + (" ..." if entry.address_count > 1 else "")
                + ")"
            )
        else:
            addresses = f"{entry.address_count} (bloom)"
        rows.append(
            [
                index,
                entry.offset,
                entry.length,
                f"{entry.time_min:.4f}",
                f"{entry.time_max:.4f}",
                entry.flow_count,
                entry.short_flow_count,
                entry.long_flow_count,
                entry.packet_count,
                segment_backend_label(entry),
                addresses,
            ]
        )
    return format_table(
        [
            "seg",
            "offset",
            "bytes",
            "t_min",
            "t_max",
            "flows",
            "short",
            "long",
            "packets",
            "backend",
            "destinations",
        ],
        rows,
    )
