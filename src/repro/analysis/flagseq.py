"""TCP-flag-sequence analysis — the intro's third semantic property.

"The performance of these systems depends ... also on some properties of
flows, that we call semantic properties: spatial and temporal locality of
IP address, IP address structure, and **TCP flags sequence**."

This module extracts per-flow flag-class sequences (the g1 stream of
section 2), builds n-gram distributions over them, and measures how far
two traces' flag grammars diverge — the sharpest test of what the lossy
clustering does to protocol structure.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.flows.assembler import assemble_flows
from repro.flows.model import Flow
from repro.net.packet import PacketRecord
from repro.net.tcp import classify_flags


def flow_flag_sequence(flow: Flow) -> tuple[int, ...]:
    """The flow's g1 stream: one flag class (0..3) per packet."""
    return tuple(int(classify_flags(fp.flags)) for fp in flow.packets)


def flag_ngrams(
    sequence: Sequence[int], n: int = 3
) -> list[tuple[int, ...]]:
    """All length-``n`` windows of one flag sequence."""
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    return [tuple(sequence[i : i + n]) for i in range(len(sequence) - n + 1)]


def ngram_distribution(
    packets: Iterable[PacketRecord], n: int = 3
) -> dict[tuple[int, ...], float]:
    """Normalized n-gram frequencies over all flows of a packet stream."""
    counts: Counter[tuple[int, ...]] = Counter()
    for flow in assemble_flows(packets):
        counts.update(flag_ngrams(flow_flag_sequence(flow), n))
    total = sum(counts.values())
    if total == 0:
        return {}
    return {gram: count / total for gram, count in counts.items()}


def distribution_distance(
    a: Mapping[tuple[int, ...], float], b: Mapping[tuple[int, ...], float]
) -> float:
    """Total variation distance between two n-gram distributions.

    0 = identical grammars; 1 = disjoint support.
    """
    support = set(a) | set(b)
    if not support:
        return 0.0
    return 0.5 * sum(abs(a.get(g, 0.0) - b.get(g, 0.0)) for g in support)


def flag_grammar_similarity(
    packets_a: Iterable[PacketRecord],
    packets_b: Iterable[PacketRecord],
    n: int = 3,
) -> float:
    """1 - total variation distance of the two traces' flag n-grams."""
    return 1.0 - distribution_distance(
        ngram_distribution(packets_a, n), ngram_distribution(packets_b, n)
    )
