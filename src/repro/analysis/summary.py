"""Side-by-side trace comparison reports.

One call produces the full scorecard two traces can be compared on:
volume, flow statistics, flag grammar, destination locality and address
structure — the library's working definition of "statistically
equivalent".  Used by ``repro-trace compare`` and the validation
examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.flagseq import flag_grammar_similarity
from repro.analysis.locality import profile_locality
from repro.analysis.report import format_table
from repro.trace.anonymize import shared_prefix_length
from repro.trace.stats import compute_statistics
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceComparison:
    """Structured outcome of comparing two traces."""

    name_a: str
    name_b: str
    rows: list[list[str]]
    flag_similarity: float
    locality_gap: float
    structure_gap: float

    def render(self) -> str:
        """The aligned text table."""
        return format_table(["metric", self.name_a, self.name_b], self.rows)

    def statistically_similar(
        self,
        flag_floor: float = 0.90,
        locality_tolerance: float = 0.10,
        structure_tolerance: float = 3.0,
    ) -> bool:
        """The library's 'statistical twin' verdict."""
        return (
            self.flag_similarity >= flag_floor
            and self.locality_gap <= locality_tolerance
            and self.structure_gap <= structure_tolerance
        )


def _mean_neighbor_prefix(trace: Trace, limit: int = 20000) -> float:
    last = None
    total = 0
    counted = 0
    for packet in trace.packets[:limit]:
        if last is not None and packet.dst_ip != last:
            total += shared_prefix_length(packet.dst_ip, last)
            counted += 1
        last = packet.dst_ip
    return total / counted if counted else 0.0


def compare_traces(a: Trace, b: Trace, locality_depth: int = 64) -> TraceComparison:
    """Build the full comparison scorecard for two traces."""
    if not a.packets or not b.packets:
        raise ValueError("cannot compare empty traces")

    stats_a = compute_statistics(a)
    stats_b = compute_statistics(b)
    locality_a = profile_locality(
        [p.dst_ip for p in a.packets[:20000]], depths=(8, locality_depth, 256)
    )
    locality_b = profile_locality(
        [p.dst_ip for p in b.packets[:20000]], depths=(8, locality_depth, 256)
    )
    structure_a = _mean_neighbor_prefix(a)
    structure_b = _mean_neighbor_prefix(b)
    flag_similarity = flag_grammar_similarity(a.packets, b.packets)

    def pct(x: float) -> str:
        return f"{x:.1%}"

    rows = [
        ["packets", str(stats_a.packet_count), str(stats_b.packet_count)],
        ["flows", str(stats_a.flow_count), str(stats_b.flow_count)],
        [
            "mean flow length",
            f"{stats_a.length_distribution.mean_length():.2f}",
            f"{stats_b.length_distribution.mean_length():.2f}",
        ],
        [
            "short flow fraction",
            pct(stats_a.short_flow_fraction),
            pct(stats_b.short_flow_fraction),
        ],
        [
            "short packet fraction",
            pct(stats_a.short_packet_fraction),
            pct(stats_b.short_packet_fraction),
        ],
        [
            f"dst locality (depth<{locality_depth})",
            pct(locality_a.hit_fraction_within[locality_depth]),
            pct(locality_b.hit_fraction_within[locality_depth]),
        ],
        [
            "mean neighbor prefix bits",
            f"{structure_a:.1f}",
            f"{structure_b:.1f}",
        ],
        ["flag trigram similarity", "1.000", f"{flag_similarity:.3f}"],
    ]
    return TraceComparison(
        name_a=a.name,
        name_b=b.name,
        rows=rows,
        flag_similarity=flag_similarity,
        locality_gap=abs(
            locality_a.hit_fraction_within[locality_depth]
            - locality_b.hit_fraction_within[locality_depth]
        ),
        structure_gap=abs(structure_a - structure_b),
    )
