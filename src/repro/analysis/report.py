"""Plain-text rendering: tables, bar charts and curves.

The experiment harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A simple aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row width {len(row)} != header width {columns}")
    cells = [[str(x) for x in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(columns)
    ]
    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in cells)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 50, unit: str = "%"
) -> str:
    """Horizontal bars, one per label (Figure 3 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty chart)"
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 16,
    width: int = 64,
) -> str:
    """Several y-series over a shared x axis, plotted with characters.

    Used for the Figure 1/2 style line comparisons; each series gets the
    first letter of its name as its marker.
    """
    if not xs or not series:
        return "(empty plot)"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    y_max = max(max(ys) for ys in series.values())
    y_min = min(min(ys) for ys in series.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max, x_min = max(xs), min(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, ys in series.items():
        marker = name[0].upper()
        for x, y in zip(xs, ys):
            column = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = height - 1 - int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[row][column] = marker

    lines = [f"{y_max:10.1f} +" + "".join(grid[0])]
    lines.extend("           |" + "".join(row) for row in grid[1:-1])
    lines.append(f"{y_min:10.1f} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_min:<10.1f}" + " " * max(0, width - 20) + f"{x_max:>10.1f}")
    legend = "  ".join(f"{name[0].upper()}={name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
