"""Distribution-similarity measures.

Section 6's argument is visual ("we observe huge similarity"); the
experiment harness quantifies it so the claim becomes testable: the
original-vs-decompressed distance must be much smaller than
original-vs-random / original-vs-fractal.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.cdf import EmpiricalCdf


def kolmogorov_smirnov(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample KS statistic: sup |F_a(x) - F_b(x)| in [0, 1]."""
    if not a or not b:
        raise ValueError("KS distance needs non-empty samples")
    cdf_a = EmpiricalCdf.from_samples(a)
    cdf_b = EmpiricalCdf.from_samples(b)
    points = sorted(set(cdf_a.sorted_values) | set(cdf_b.sorted_values))
    return max(abs(cdf_a.evaluate(x) - cdf_b.evaluate(x)) for x in points)


def earth_movers_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """1-Wasserstein distance between two samples (integrated CDF gap)."""
    if not a or not b:
        raise ValueError("EMD needs non-empty samples")
    cdf_a = EmpiricalCdf.from_samples(a)
    cdf_b = EmpiricalCdf.from_samples(b)
    points = sorted(set(cdf_a.sorted_values) | set(cdf_b.sorted_values))
    distance = 0.0
    for left, right in zip(points, points[1:]):
        gap = abs(cdf_a.evaluate(left) - cdf_b.evaluate(left))
        distance += gap * (right - left)
    return distance


def max_bucket_difference(a: Sequence[float], b: Sequence[float]) -> float:
    """Largest absolute per-bucket difference (for Figure 3 bars).

    Inputs are already bucket percentages (same bucket order).
    """
    if len(a) != len(b):
        raise ValueError(f"bucket count mismatch: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("need at least one bucket")
    return max(abs(x - y) for x, y in zip(a, b))
