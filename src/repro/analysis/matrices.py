"""Hypersparse per-window traffic matrices over archives — no decompression.

The GraphBLAS hypersparse-flow line of work (arXiv:2209.05725) reduces
network-wide situational awareness to one object: an anonymized src×dst
traffic matrix per time window, from which heavy hitters, per-source
fan-out / per-destination fan-in distributions, unique endpoint/link
counts and max-fan-out scan candidates all fall out.  This module builds
those matrices straight off the archive's flow-metadata fast path
(:func:`~repro.core.flowmeta.flow_records`): cost scales with *flows*,
not packets, and the footer index prunes segments that cannot start a
flow inside the requested range.

Three layers:

* :class:`TrafficMatrix` — one window's matrix, accumulated as a
  dict-of-dicts (the hypersparse representation: storage is O(links)).
  When :mod:`scipy.sparse` is importable (and neither ``REPRO_NO_SCIPY``
  nor ``REPRO_NO_NUMPY`` forbids it), :meth:`TrafficMatrix.to_csr`
  materializes CSR matrices and the derived statistics vectorize;
  otherwise a pure-python engine computes the *same integers* — the
  fallback suite pins the two result-identical.
* :class:`StreamingWindowAggregator` — assigns records (which arrive
  with nondecreasing start times, the archive merge's invariant) to
  fixed windows and holds exactly one window's matrix at a time.
* :class:`MatrixReport` — the schema'd JSON document
  (``repro.analysis/matrix-report/v1``) with per-window
  :class:`WindowStats`, plus the work accounting (segments pruned vs
  decoded) that the differential acceptance test pins.

Addresses can be anonymized with :class:`AddressAnonymizer` — a keyed
blake2b map, stable across windows and runs for the same key — before
they ever enter a matrix.

Work accounting publishes to :mod:`repro.obs` under
``analysis.matrices.*``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.codec import quantize_timestamp
from repro.core.decompressor import DecompressorConfig
from repro.core.flowmeta import FlowRecord, flow_records, flow_records_by_decode
from repro.net.ip import format_ipv4
from repro.obs import current as obs_current

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.archive.reader import ArchiveReader
    from repro.core.datasets import CompressedTrace
    from repro.obs import MetricsRegistry
    from repro.query.engine import QueryStats

SCHEMA = "repro.analysis/matrix-report/v1"

DEFAULT_WINDOW = 60.0
DEFAULT_TOP_K = 10
DEFAULT_SCAN_FANOUT = 16
# Below this many links a window's dict walk beats CSR materialization
# (measured crossover ~1-2k links); at 64k links the CSR engine is ~3x
# faster. Dispatch is purely speed — the engines are pinned identical.
SCIPY_MIN_LINKS = 2048
"""Sources contacting at least this many distinct destinations inside
one window are reported as scan candidates."""

METHODS = ("index", "decode")

__all__ = [
    "SCHEMA",
    "SCIPY_MIN_LINKS",
    "DEFAULT_SCAN_FANOUT",
    "DEFAULT_TOP_K",
    "DEFAULT_WINDOW",
    "AddressAnonymizer",
    "LinkStat",
    "MatrixReport",
    "ScanCandidate",
    "StreamingWindowAggregator",
    "TrafficMatrix",
    "WindowStats",
    "matrix_report_for_archive",
    "matrix_report_for_compressed",
    "publish_window_gauges",
    "scipy_or_none",
    "window_stats_for_compressed",
]


_sparse = None
_sparse_checked = False


def scipy_or_none():
    """The :mod:`scipy.sparse` module, or ``None``.

    ``None`` when scipy is absent or ``REPRO_NO_SCIPY=1`` — and also
    under ``REPRO_NO_NUMPY=1``, since a numpy-less deployment cannot
    have a working scipy and the no-numpy CI job must exercise pure
    fallbacks end to end.  Resolved lazily on first call (mirroring
    :func:`repro.net.columns.numpy_or_none`), then cached.
    """
    global _sparse, _sparse_checked
    if not _sparse_checked:
        _sparse_checked = True
        if not (
            os.environ.get("REPRO_NO_SCIPY") or os.environ.get("REPRO_NO_NUMPY")
        ):
            try:
                from scipy import sparse
            except ImportError:
                sparse = None
            _sparse = sparse
    return _sparse


class AddressAnonymizer:
    """Keyed-hash address anonymization: ``address -> blake2b_key(address)``.

    The map is deterministic per key — the same host keeps the same
    32-bit pseudonym across windows, runs and machines, so fan-out and
    heavy-hitter structure survive anonymization — but without the key
    the original addresses are not recoverable.  Distinct addresses can
    collide in 32 bits (birthday bound ~2^16 hosts); the statistics
    degrade gracefully, they do not crash.
    """

    def __init__(self, key: str | bytes) -> None:
        key_bytes = key.encode("utf-8") if isinstance(key, str) else bytes(key)
        if not key_bytes:
            raise ValueError("anonymization key must be non-empty")
        self._key = key_bytes[:64]  # blake2b's key length cap
        self._cache: dict[int, int] = {}

    def __call__(self, address: int) -> int:
        mapped = self._cache.get(address)
        if mapped is None:
            digest = hashlib.blake2b(
                address.to_bytes(4, "big"), key=self._key, digest_size=4
            ).digest()
            mapped = self._cache[address] = int.from_bytes(digest, "big")
        return mapped


@dataclass(frozen=True)
class LinkStat:
    """One (src, dst) cell of a window's matrix."""

    src: int
    dst: int
    packets: int
    bytes: int

    def to_dict(self) -> dict:
        return {
            "src": format_ipv4(self.src),
            "dst": format_ipv4(self.dst),
            "packets": self.packets,
            "bytes": self.bytes,
        }


@dataclass(frozen=True)
class ScanCandidate:
    """A source whose in-window fan-out crossed the scan threshold."""

    src: int
    fanout: int
    packets: int

    def to_dict(self) -> dict:
        return {
            "src": format_ipv4(self.src),
            "fanout": self.fanout,
            "packets": self.packets,
        }


class TrafficMatrix:
    """One window's hypersparse src×dst matrix.

    Cells accumulate (packets, bytes); a flow contributes its forward
    direction to ``(src, dst)`` and — when the server answered — its
    reverse direction to ``(dst, src)``, so row sums are true per-source
    transmit totals.  Storage is a dict of dicts: O(links), independent
    of the 2^32 × 2^32 address space — the hypersparse regime where a
    dense (or even per-row-array) representation is impossible.
    """

    __slots__ = ("index", "start", "end", "flows", "packets", "bytes", "_rows")

    def __init__(self, index: int, start: float, end: float) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.flows = 0
        self.packets = 0
        self.bytes = 0
        self._rows: dict[int, dict[int, list[int]]] = {}

    def add(self, src: int, dst: int, packets: int, byte_count: int) -> None:
        """Accumulate one directed cell."""
        row = self._rows.setdefault(src, {})
        cell = row.get(dst)
        if cell is None:
            row[dst] = [packets, byte_count]
        else:
            cell[0] += packets
            cell[1] += byte_count

    def add_flow(
        self,
        record: FlowRecord,
        anonymizer: Callable[[int], int] | None = None,
    ) -> None:
        """Fold one flow record into the matrix (both directions)."""
        src, dst = record.src, record.dst
        if anonymizer is not None:
            src, dst = anonymizer(src), anonymizer(dst)
        self.flows += 1
        self.packets += record.packets
        self.bytes += record.bytes
        if record.packets_fwd > 0:
            self.add(src, dst, record.packets_fwd, record.bytes_fwd)
        if record.packets_rev > 0:
            self.add(dst, src, record.packets_rev, record.bytes_rev)

    @property
    def links(self) -> int:
        """Non-zero cells (distinct directed src→dst pairs)."""
        return sum(len(row) for row in self._rows.values())

    @property
    def sources(self) -> int:
        """Distinct source addresses (non-empty rows)."""
        return len(self._rows)

    def iter_cells(self) -> Iterator[tuple[int, int, int, int]]:
        """Every (src, dst, packets, bytes) cell, unordered."""
        for src, row in self._rows.items():
            for dst, (packets, byte_count) in row.items():
                yield src, dst, packets, byte_count

    def to_csr(self):
        """(packets_csr, bytes_csr, row_addresses, col_addresses), or ``None``.

        The scipy.sparse CSR materialization over compacted (sorted)
        address axes; ``None`` when scipy is unavailable or gated off.
        Cell values are exact integers, so everything derived from the
        CSR matches the pure-python engine bit for bit.
        """
        sparse = scipy_or_none()
        if sparse is None:
            return None
        import numpy as np

        count = self.links
        # Four C-driven extraction passes beat one Python loop doing
        # per-cell dict lookups; np.unique then compacts each axis and
        # hands back the cell coordinates in one shot.
        srcs = np.fromiter(
            (src for src, row in self._rows.items() for _ in row),
            dtype=np.int64,
            count=count,
        )
        dsts = np.fromiter(
            (dst for row in self._rows.values() for dst in row),
            dtype=np.int64,
            count=count,
        )
        packets = np.fromiter(
            (cell[0] for row in self._rows.values() for cell in row.values()),
            dtype=np.int64,
            count=count,
        )
        byte_counts = np.fromiter(
            (cell[1] for row in self._rows.values() for cell in row.values()),
            dtype=np.int64,
            count=count,
        )
        row_axis, rows = np.unique(srcs, return_inverse=True)
        col_axis, cols = np.unique(dsts, return_inverse=True)
        row_addresses = row_axis.tolist()
        col_addresses = col_axis.tolist()
        shape = (len(row_addresses), len(col_addresses))
        packets_csr = sparse.csr_matrix((packets, (rows, cols)), shape=shape)
        bytes_csr = sparse.csr_matrix((byte_counts, (rows, cols)), shape=shape)
        return packets_csr, bytes_csr, row_addresses, col_addresses

    def stats(
        self,
        *,
        top_k: int = DEFAULT_TOP_K,
        scan_fanout: int = DEFAULT_SCAN_FANOUT,
    ) -> "WindowStats":
        """Derive this window's :class:`WindowStats`.

        Dispatches to the scipy/CSR engine when available **and** the
        window is dense enough to amortize CSR materialization
        (:data:`SCIPY_MIN_LINKS`); the pure-python engine otherwise.
        Both produce identical values (ties in every top-k list break
        on (src, dst) addresses, fully deterministically), so dispatch
        is purely a speed decision.
        """
        engine = (
            "scipy"
            if self.links >= SCIPY_MIN_LINKS and scipy_or_none() is not None
            else "python"
        )
        obs_current().counter(
            f"analysis.matrices.engine.{engine}",
            "windows whose statistics this engine derived",
        ).inc()
        if engine == "scipy":
            return _stats_scipy(self, top_k, scan_fanout)
        return _stats_python(self, top_k, scan_fanout)


@dataclass(frozen=True)
class WindowStats:
    """The GraphBLAS statistic set for one window.

    ``fanout_hist`` maps fan-out degree (distinct destinations a source
    contacted) to the number of such sources; ``fanin_hist`` is the
    destination-side mirror.  Top links rank by packets (resp. bytes),
    ties broken by (src, dst) address so both stats engines agree.
    """

    index: int
    start: float
    end: float
    flows: int
    packets: int
    bytes: int
    sources: int
    destinations: int
    links: int
    max_fanout: int
    max_fanin: int
    fanout_hist: dict[int, int]
    fanin_hist: dict[int, int]
    top_links_packets: tuple[LinkStat, ...]
    top_links_bytes: tuple[LinkStat, ...]
    scan_candidates: tuple[ScanCandidate, ...]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "flows": self.flows,
            "packets": self.packets,
            "bytes": self.bytes,
            "sources": self.sources,
            "destinations": self.destinations,
            "links": self.links,
            "max_fanout": self.max_fanout,
            "max_fanin": self.max_fanin,
            "fanout_hist": {
                str(degree): count
                for degree, count in sorted(self.fanout_hist.items())
            },
            "fanin_hist": {
                str(degree): count
                for degree, count in sorted(self.fanin_hist.items())
            },
            "top_links_packets": [
                link.to_dict() for link in self.top_links_packets
            ],
            "top_links_bytes": [link.to_dict() for link in self.top_links_bytes],
            "scan_candidates": [
                candidate.to_dict() for candidate in self.scan_candidates
            ],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "WindowStats":
        from repro.net.ip import parse_ipv4

        def link(entry: dict) -> LinkStat:
            return LinkStat(
                src=parse_ipv4(entry["src"]),
                dst=parse_ipv4(entry["dst"]),
                packets=entry["packets"],
                bytes=entry["bytes"],
            )

        return cls(
            index=document["index"],
            start=document["start"],
            end=document["end"],
            flows=document["flows"],
            packets=document["packets"],
            bytes=document["bytes"],
            sources=document["sources"],
            destinations=document["destinations"],
            links=document["links"],
            max_fanout=document["max_fanout"],
            max_fanin=document["max_fanin"],
            fanout_hist={
                int(degree): count
                for degree, count in document["fanout_hist"].items()
            },
            fanin_hist={
                int(degree): count
                for degree, count in document["fanin_hist"].items()
            },
            top_links_packets=tuple(
                link(entry) for entry in document["top_links_packets"]
            ),
            top_links_bytes=tuple(
                link(entry) for entry in document["top_links_bytes"]
            ),
            scan_candidates=tuple(
                ScanCandidate(
                    src=parse_ipv4(entry["src"]),
                    fanout=entry["fanout"],
                    packets=entry["packets"],
                )
                for entry in document["scan_candidates"]
            ),
        )


def _top_links(
    cells: Iterable[tuple[int, int, int, int]], by_bytes: bool, top_k: int
) -> tuple[LinkStat, ...]:
    """Deterministic top-k: rank value descending, then (src, dst)."""
    value = 3 if by_bytes else 2
    ranked = sorted(cells, key=lambda cell: (-cell[value], cell[0], cell[1]))
    return tuple(
        LinkStat(src=src, dst=dst, packets=packets, bytes=byte_count)
        for src, dst, packets, byte_count in ranked[:top_k]
    )


def _stats_python(
    matrix: TrafficMatrix, top_k: int, scan_fanout: int
) -> WindowStats:
    """The dict-walking statistics engine (always correct, always there)."""
    fanout_hist: dict[int, int] = {}
    fanin_degree: dict[int, int] = {}
    scan_pool: list[tuple[int, int, int]] = []
    max_fanout = 0
    for src, row in matrix._rows.items():
        fanout = len(row)
        fanout_hist[fanout] = fanout_hist.get(fanout, 0) + 1
        if fanout > max_fanout:
            max_fanout = fanout
        for dst in row:
            fanin_degree[dst] = fanin_degree.get(dst, 0) + 1
        if fanout >= scan_fanout:
            scan_pool.append(
                (src, fanout, sum(cell[0] for cell in row.values()))
            )
    fanin_hist: dict[int, int] = {}
    max_fanin = 0
    for degree in fanin_degree.values():
        fanin_hist[degree] = fanin_hist.get(degree, 0) + 1
        if degree > max_fanin:
            max_fanin = degree
    cells = list(matrix.iter_cells())
    scan_pool.sort(key=lambda entry: (-entry[1], entry[0]))
    return WindowStats(
        index=matrix.index,
        start=matrix.start,
        end=matrix.end,
        flows=matrix.flows,
        packets=matrix.packets,
        bytes=matrix.bytes,
        sources=matrix.sources,
        destinations=len(fanin_degree),
        links=len(cells),
        max_fanout=max_fanout,
        max_fanin=max_fanin,
        fanout_hist=fanout_hist,
        fanin_hist=fanin_hist,
        top_links_packets=_top_links(cells, False, top_k),
        top_links_bytes=_top_links(cells, True, top_k),
        scan_candidates=tuple(
            ScanCandidate(src=src, fanout=fanout, packets=packets)
            for src, fanout, packets in scan_pool[:top_k]
        ),
    )


def _stats_scipy(
    matrix: TrafficMatrix, top_k: int, scan_fanout: int
) -> WindowStats:
    """The CSR statistics engine: degree and ranking work vectorized.

    All quantities are integer aggregates of the same cells, so the
    result equals :func:`_stats_python` exactly — including top-k tie
    order, which both engines break on (src, dst) addresses.
    """
    import numpy as np

    materialized = matrix.to_csr()
    assert materialized is not None  # caller dispatched on availability
    packets_csr, bytes_csr, row_addresses, col_addresses = materialized
    if not row_addresses:
        return _stats_python(matrix, top_k, scan_fanout)
    fanout = np.diff(packets_csr.indptr)
    fanin = np.bincount(packets_csr.indices, minlength=len(col_addresses))
    degrees, counts = np.unique(fanout, return_counts=True)
    fanout_hist = {int(d): int(c) for d, c in zip(degrees, counts)}
    degrees, counts = np.unique(fanin, return_counts=True)
    fanin_hist = {int(d): int(c) for d, c in zip(degrees, counts)}

    coo = packets_csr.tocoo()
    src_addr = np.asarray(row_addresses, dtype=np.int64)[coo.row]
    dst_addr = np.asarray(col_addresses, dtype=np.int64)[coo.col]
    packet_data = coo.data
    byte_data = bytes_csr.tocoo().data

    def top(data: np.ndarray) -> tuple[LinkStat, ...]:
        order = np.lexsort((dst_addr, src_addr, -data))[:top_k]
        return tuple(
            LinkStat(
                src=int(src_addr[i]),
                dst=int(dst_addr[i]),
                packets=int(packet_data[i]),
                bytes=int(byte_data[i]),
            )
            for i in order
        )

    row_packets = np.asarray(packets_csr.sum(axis=1)).ravel()
    scanners = np.nonzero(fanout >= scan_fanout)[0]
    scan_order = np.lexsort(
        (np.asarray(row_addresses, dtype=np.int64)[scanners], -fanout[scanners])
    )[:top_k]
    return WindowStats(
        index=matrix.index,
        start=matrix.start,
        end=matrix.end,
        flows=matrix.flows,
        packets=matrix.packets,
        bytes=matrix.bytes,
        sources=len(row_addresses),
        destinations=len(col_addresses),
        links=packets_csr.nnz,
        max_fanout=int(fanout.max()),
        max_fanin=int(fanin.max()),
        fanout_hist=fanout_hist,
        fanin_hist=fanin_hist,
        top_links_packets=top(packet_data),
        top_links_bytes=top(byte_data),
        scan_candidates=tuple(
            ScanCandidate(
                src=int(row_addresses[scanners[i]]),
                fanout=int(fanout[scanners[i]]),
                packets=int(row_packets[scanners[i]]),
            )
            for i in scan_order
        ),
    )


class StreamingWindowAggregator:
    """Assign flow records to fixed time windows, one matrix in memory.

    ``span`` seconds per window, aligned to ``origin`` (the archive
    epoch's zero by default); ``span=None`` collapses everything into a
    single unbounded window.  Records must arrive with nondecreasing
    start timestamps — exactly what
    :meth:`~repro.archive.reader.ArchiveReader.iter_flow_records`
    guarantees — so a window is provably complete (and can be yielded
    and dropped) the moment a record starts at or past its end.  Peak
    memory is one window's links, regardless of how many windows the
    archive spans.
    """

    def __init__(
        self,
        span: float | None,
        *,
        origin: float = 0.0,
        anonymizer: Callable[[int], int] | None = None,
    ) -> None:
        if span is not None and span <= 0:
            raise ValueError(f"window span must be positive: {span}")
        self.span = span
        self.origin = origin
        self.anonymizer = anonymizer
        self.windows_built = 0
        self._current: TrafficMatrix | None = None
        self._last_start: float | None = None

    def _window_of(self, start: float) -> int:
        if self.span is None:
            return 0
        return int((start - self.origin) // self.span)

    def _bounds(self, index: int) -> tuple[float, float]:
        if self.span is None:
            return (self.origin, float("inf"))
        return (
            self.origin + index * self.span,
            self.origin + (index + 1) * self.span,
        )

    def feed(self, record: FlowRecord) -> Iterator[TrafficMatrix]:
        """Add one record; yields every window it proves complete."""
        if self._last_start is not None and record.start < self._last_start:
            raise ValueError(
                "flow records must arrive in nondecreasing start order "
                f"({record.start} after {self._last_start})"
            )
        self._last_start = record.start
        window = self._window_of(record.start)
        current = self._current
        if current is not None and window != current.index:
            self._current = None
            self.windows_built += 1
            yield current
        if self._current is None:
            start, end = self._bounds(window)
            self._current = TrafficMatrix(window, start, end)
        self._current.add_flow(record, self.anonymizer)

    def finish(self) -> Iterator[TrafficMatrix]:
        """Flush the trailing window after the record stream ends."""
        if self._current is not None:
            current, self._current = self._current, None
            self.windows_built += 1
            yield current


@dataclass(frozen=True)
class MatrixReport:
    """One windowed matrix-statistics run, ready to serialize.

    ``method`` records how the records were derived (``index`` fast path
    vs ``decode`` full synthesis), ``engine`` which statistics stack
    served the run (``scipy`` when the CSR engine was available for
    dispatch — windows below :data:`SCIPY_MIN_LINKS` still take the
    dict walk — ``python`` on the pure fallback); neither changes the
    numbers — the differential tests pin that — so comparing two
    reports means comparing their ``windows``.
    """

    source: str
    method: str
    engine: str
    window: float | None
    origin: float
    since: float | None
    until: float | None
    top_k: int
    scan_fanout: int
    anonymized: bool
    flows: int
    packets: int
    bytes: int
    segments_total: int
    segments_decoded: int
    segments_pruned: int
    windows: tuple[WindowStats, ...]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "source": self.source,
            "method": self.method,
            "engine": self.engine,
            "window": self.window,
            "origin": self.origin,
            "since": self.since,
            "until": self.until,
            "top_k": self.top_k,
            "scan_fanout": self.scan_fanout,
            "anonymized": self.anonymized,
            "flows": self.flows,
            "packets": self.packets,
            "bytes": self.bytes,
            "segments_total": self.segments_total,
            "segments_decoded": self.segments_decoded,
            "segments_pruned": self.segments_pruned,
            "windows": [window.to_dict() for window in self.windows],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, document: dict) -> "MatrixReport":
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"not a matrix report (schema={document.get('schema')!r}, "
                f"expected {SCHEMA!r})"
            )
        return cls(
            source=document["source"],
            method=document["method"],
            engine=document["engine"],
            window=document["window"],
            origin=document["origin"],
            since=document["since"],
            until=document["until"],
            top_k=document["top_k"],
            scan_fanout=document["scan_fanout"],
            anonymized=document["anonymized"],
            flows=document["flows"],
            packets=document["packets"],
            bytes=document["bytes"],
            segments_total=document["segments_total"],
            segments_decoded=document["segments_decoded"],
            segments_pruned=document["segments_pruned"],
            windows=tuple(
                WindowStats.from_dict(entry)
                for entry in document.get("windows", [])
            ),
        )

    def summary_lines(self) -> list[str]:
        """The stdout table behind ``repro stats``."""
        span = "whole trace" if self.window is None else f"{self.window:g} s"
        lines = [
            f"matrix stats ({self.method} path, {self.engine} engine, "
            f"window {span})",
            f"flows {self.flows} / packets {self.packets} / bytes {self.bytes}"
            f" across {len(self.windows)} window(s)",
            f"segments decoded : {self.segments_decoded}/{self.segments_total}"
            f" ({self.segments_pruned} pruned by the index)",
        ]
        header = (
            f"{'window':>7s} {'start':>10s} {'flows':>7s} {'packets':>8s} "
            f"{'bytes':>10s} {'src':>6s} {'dst':>6s} {'links':>6s} "
            f"{'maxFO':>5s} {'scan':>4s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for window in self.windows:
            lines.append(
                f"{window.index:>7d} {window.start:>10.3f} {window.flows:>7d} "
                f"{window.packets:>8d} {window.bytes:>10d} "
                f"{window.sources:>6d} {window.destinations:>6d} "
                f"{window.links:>6d} {window.max_fanout:>5d} "
                f"{len(window.scan_candidates):>4d}"
            )
        for window in self.windows:
            if window.top_links_packets:
                top = window.top_links_packets[0]
                lines.append(
                    f"window {window.index}: top link "
                    f"{format_ipv4(top.src)} -> {format_ipv4(top.dst)} "
                    f"({top.packets} packets, {top.bytes} B)"
                )
        return lines


# -- report drivers ----------------------------------------------------------


def _time_filter(
    since: float | None, until: float | None
) -> Callable[[FlowRecord], bool] | None:
    """Flow-level window filter on the *quantized* start grid.

    Both report methods apply the same filter, and it quantizes exactly
    like the index's segment bounds — so index pruning is conservative
    with respect to it and the two methods keep identical flow sets.
    """
    if since is None and until is None:
        return None
    low = quantize_timestamp(since) if since is not None else None
    high = quantize_timestamp(until) if until is not None else None

    def keep(record: FlowRecord) -> bool:
        units = quantize_timestamp(record.start)
        if low is not None and units < low:
            return False
        return high is None or units <= high

    return keep


def _assemble(
    records: Iterator[FlowRecord],
    *,
    source: str,
    method: str,
    window: float | None,
    origin: float,
    since: float | None,
    until: float | None,
    top_k: int,
    scan_fanout: int,
    anonymize_key: str | bytes | None,
    segments_total: int,
    decoded: Callable[[], int],
) -> MatrixReport:
    """Drive records through the aggregator and assemble the report."""
    anonymizer = (
        AddressAnonymizer(anonymize_key) if anonymize_key is not None else None
    )
    aggregator = StreamingWindowAggregator(
        window, origin=origin, anonymizer=anonymizer
    )
    keep = _time_filter(since, until)
    flows = 0
    windows: list[WindowStats] = []

    def drain(matrices: Iterator[TrafficMatrix]) -> None:
        for matrix in matrices:
            windows.append(matrix.stats(top_k=top_k, scan_fanout=scan_fanout))

    for record in records:
        if keep is not None and not keep(record):
            continue
        flows += 1
        drain(aggregator.feed(record))
    drain(aggregator.finish())

    segments_decoded = decoded()
    registry = obs_current()
    registry.counter(
        "analysis.matrices.windows", "traffic-matrix windows built"
    ).inc(len(windows))
    registry.counter(
        "analysis.matrices.flows", "flow records aggregated into matrices"
    ).inc(flows)
    registry.counter(
        "analysis.matrices.segments_decoded",
        "segments decoded to build traffic matrices",
    ).inc(segments_decoded)
    registry.counter(
        "analysis.matrices.segments_pruned",
        "segments the index pruned from matrix builds",
    ).inc(segments_total - segments_decoded)
    return MatrixReport(
        source=source,
        method=method,
        engine="scipy" if scipy_or_none() is not None else "python",
        window=window,
        origin=origin,
        since=since,
        until=until,
        top_k=top_k,
        scan_fanout=scan_fanout,
        anonymized=anonymizer is not None,
        flows=flows,
        packets=sum(window.packets for window in windows),
        bytes=sum(window.bytes for window in windows),
        segments_total=segments_total,
        segments_decoded=segments_decoded,
        segments_pruned=segments_total - segments_decoded,
        windows=tuple(windows),
    )


def matrix_report_for_archive(
    reader: "ArchiveReader",
    *,
    window: float | None = DEFAULT_WINDOW,
    origin: float = 0.0,
    since: float | None = None,
    until: float | None = None,
    top_k: int = DEFAULT_TOP_K,
    scan_fanout: int = DEFAULT_SCAN_FANOUT,
    anonymize_key: str | bytes | None = None,
    method: str = "index",
    config: DecompressorConfig | None = None,
    stats: "QueryStats | None" = None,
) -> MatrixReport:
    """Windowed matrix statistics over one open archive.

    ``method="index"`` rides the flow-metadata fast path and lets the
    footer index prune segments that cannot start a flow inside
    ``[since, until]``; ``method="decode"`` synthesizes every packet of
    every segment first — the full-decompression baseline.  Both
    produce identical ``windows``; the report's ``segments_decoded`` /
    ``segments_pruned`` (also published as
    ``analysis.matrices.segments_decoded`` / ``.segments_pruned``)
    expose the work difference.
    """
    from repro.query.engine import QueryEngine, QueryStats
    from repro.query.predicates import MatchAll, TimeRange

    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}: {method!r}")
    predicate = (
        TimeRange(
            since if since is not None else 0.0,
            until if until is not None else float("inf"),
        )
        if since is not None or until is not None
        else MatchAll()
    )
    if stats is None:
        stats = QueryStats()
    records = QueryEngine(reader).iter_flow_records(
        predicate, config=config, stats=stats, method=method
    )
    return _assemble(
        records,
        source=str(reader.path),
        method=method,
        window=window,
        origin=origin,
        since=since,
        until=until,
        top_k=top_k,
        scan_fanout=scan_fanout,
        anonymize_key=anonymize_key,
        segments_total=reader.segment_count,
        decoded=lambda: stats.segments_decoded,
    )


def matrix_report_for_compressed(
    compressed: "CompressedTrace",
    *,
    source: str = "",
    window: float | None = DEFAULT_WINDOW,
    origin: float = 0.0,
    since: float | None = None,
    until: float | None = None,
    top_k: int = DEFAULT_TOP_K,
    scan_fanout: int = DEFAULT_SCAN_FANOUT,
    anonymize_key: str | bytes | None = None,
    method: str = "index",
    config: DecompressorConfig | None = None,
) -> MatrixReport:
    """Windowed matrix statistics over one in-memory compressed trace.

    The single-segment form of :func:`matrix_report_for_archive` — what
    container stores and raw traces (compressed in memory first) use.
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}: {method!r}")
    derive = flow_records if method == "index" else flow_records_by_decode
    return _assemble(
        derive(compressed, config),
        source=source or compressed.name,
        method=method,
        window=window,
        origin=origin,
        since=since,
        until=until,
        top_k=top_k,
        scan_fanout=scan_fanout,
        anonymize_key=anonymize_key,
        segments_total=1,
        decoded=lambda: 1,
    )


def window_stats_for_compressed(
    compressed: "CompressedTrace",
    *,
    top_k: int = DEFAULT_TOP_K,
    scan_fanout: int = DEFAULT_SCAN_FANOUT,
    config: DecompressorConfig | None = None,
) -> WindowStats | None:
    """One segment's flows folded into a single window's statistics.

    The serve daemon calls this on every sealed segment to keep the
    live ``/metrics`` window gauges current; ``None`` for an empty
    segment.  Cost is one fast-path walk of the segment's ``time-seq``.
    """
    if not compressed.time_seq:
        return None
    matrix: TrafficMatrix | None = None
    for record in flow_records(compressed, config):
        if matrix is None:
            matrix = TrafficMatrix(0, record.start, record.start)
        matrix.add_flow(record)
    assert matrix is not None
    return matrix.stats(top_k=top_k, scan_fanout=scan_fanout)


def publish_window_gauges(
    stats: WindowStats, registry: "MetricsRegistry | None" = None
) -> None:
    """Mirror one window's statistics into ``analysis.matrices.*`` gauges.

    Gauges, not counters: each sealed window *replaces* the snapshot, so
    a Prometheus scrape of the serve daemon always shows the most
    recently completed window.
    """
    registry = registry if registry is not None else obs_current()
    values = (
        ("window_flows", "flows in the last sealed window", stats.flows),
        ("window_packets", "packets in the last sealed window", stats.packets),
        ("window_bytes", "bytes in the last sealed window", stats.bytes),
        ("window_sources", "unique sources in the last window", stats.sources),
        (
            "window_destinations",
            "unique destinations in the last window",
            stats.destinations,
        ),
        ("window_links", "unique links in the last window", stats.links),
        (
            "window_max_fanout",
            "maximum per-source fan-out in the last window",
            stats.max_fanout,
        ),
    )
    for name, help_text, value in values:
        registry.gauge(f"analysis.matrices.{name}", help_text).set(value)
    registry.counter(
        "analysis.matrices.windows", "traffic-matrix windows built"
    ).inc()
