"""Empirical distributions.

Figure 2 is an empirical CDF (cumulative traffic vs per-packet access
count); Figure 3 is a bucketed histogram.  Both are small, dependency-free
constructions kept here so experiments and tests share one definition.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical CDF over a numeric sample."""

    sorted_values: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalCdf":
        if not samples:
            raise ValueError("cannot build a CDF from an empty sample")
        return cls(tuple(sorted(samples)))

    def __len__(self) -> int:
        return len(self.sorted_values)

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return bisect.bisect_right(self.sorted_values, x) / len(self.sorted_values)

    def evaluate_many(self, xs: Sequence[float]) -> list[float]:
        """The CDF sampled at several points."""
        return [self.evaluate(x) for x in xs]

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {q}")
        index = max(0, int(q * len(self.sorted_values)) - 1)
        return self.sorted_values[index]

    def min(self) -> float:
        return self.sorted_values[0]

    def max(self) -> float:
        return self.sorted_values[-1]

    def mean(self) -> float:
        return sum(self.sorted_values) / len(self.sorted_values)


def histogram(
    samples: Sequence[float], edges: Sequence[float]
) -> list[int]:
    """Counts per half-open bucket ``[edges[i], edges[i+1])``.

    Samples outside the edge range are dropped (Figure 3's buckets cover
    [0, 1.01) so nothing is dropped there).
    """
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("edges must be strictly increasing")
    counts = [0] * (len(edges) - 1)
    for sample in samples:
        if sample < edges[0] or sample >= edges[-1]:
            continue
        index = bisect.bisect_right(edges, sample) - 1
        counts[index] += 1
    return counts
