"""Inter-flow distance and the similarity rule (equation 4).

Section 3: "for the same i, the maximum distance between two f(p_i)
values of different flows is 50.  Consequently, for flows with n packets,
the maximum inter flow distance is n * 50.  We have assumed that two
vectors a and b are similar whether the difference among them is lower
than 2% of the maximum inter flow distance.  Therefore::

    d_max = n * 50 * 2 / 100        (= n for the paper's constants)

The distance between two equal-length vectors is the L1 (sum of absolute
per-position differences) distance, which is what "the difference among
them" denotes for integer template vectors.

Note: the paper states a per-packet maximum of 50, although the raw
weight algebra of section 2 yields 16*3 + 4*1 + 1*2 = 54; we follow the
paper's published constant (see DESIGN.md, deviation 2).
"""

from __future__ import annotations

from typing import Sequence

MAX_PACKET_DISTANCE = 50
"""Paper constant: maximum |f_a(p_i) - f_b(p_i)| between two flows."""

SIMILARITY_PERCENT = 2.0
"""Paper constant: vectors within 2% of the maximum distance are similar."""


def vector_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """L1 distance between two same-length ``V_f`` vectors.

    Raises ``ValueError`` for different lengths — the clustering always
    compares flows "isolat[ed] ... by their number of packets".
    """
    if len(a) != len(b):
        raise ValueError(
            f"cannot compare vectors of different lengths: {len(a)} vs {len(b)}"
        )
    return sum(abs(x - y) for x, y in zip(a, b))


def max_inter_flow_distance(
    n: int, per_packet_max: int = MAX_PACKET_DISTANCE
) -> int:
    """``n * 50`` — the maximum distance between two n-packet flows."""
    if n < 0:
        raise ValueError(f"flow length cannot be negative: {n}")
    return n * per_packet_max


def similarity_threshold(
    n: int,
    percent: float = SIMILARITY_PERCENT,
    per_packet_max: int = MAX_PACKET_DISTANCE,
) -> float:
    """Equation 4: ``d_max = n * per_packet_max * percent / 100``.

    With the paper's constants this simplifies to ``d_max = n``.
    """
    if percent < 0:
        raise ValueError(f"percent cannot be negative: {percent}")
    return max_inter_flow_distance(n, per_packet_max) * percent / 100.0


def vectors_similar(
    a: Sequence[int],
    b: Sequence[int],
    percent: float = SIMILARITY_PERCENT,
    per_packet_max: int = MAX_PACKET_DISTANCE,
) -> bool:
    """True when two same-length vectors fall within ``d_max``.

    The paper says "lower than", so the comparison is strict.
    """
    return vector_distance(a, b) < similarity_threshold(
        len(a), percent, per_packet_max
    )
