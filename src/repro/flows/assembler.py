"""Stateful packet-to-flow assembly.

The compressor in section 3 maintains a linked list of active flows keyed
by a hash of the 5-tuple and closes a flow "when a Fin or Rst TCP flag is
found".  The assembler here implements the same life cycle for offline
analysis: flows are keyed by canonical (bidirectional) 5-tuple, closed on
FIN/RST, and expired on an idle timeout so that traces without clean
teardowns still terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.flowkey import FiveTuple
from repro.net.packet import PacketRecord
from repro.net.tcp import is_flow_terminator
from repro.flows.model import Flow

DEFAULT_IDLE_TIMEOUT = 64.0
"""Seconds of inactivity after which a flow is considered finished."""


@dataclass(frozen=True)
class AssemblerConfig:
    """Tunables of the flow assembler.

    Attributes
    ----------
    idle_timeout:
        A flow with no packet for this many seconds is closed.
    close_on_fin:
        Close the flow at the first FIN/RST (paper behaviour).  When
        False only the idle timeout closes flows.
    min_packets:
        Flows shorter than this are dropped (the paper's characterization
        starts at 2-packet flows; single-packet 'flows' carry no vector).
    """

    idle_timeout: float = DEFAULT_IDLE_TIMEOUT
    close_on_fin: bool = True
    min_packets: int = 1


class FlowAssembler:
    """Incremental flow assembler.

    Feed packets in timestamp order with :meth:`add`; completed flows are
    returned as they close.  Call :meth:`flush` at end of trace.
    """

    def __init__(self, config: AssemblerConfig | None = None) -> None:
        self.config = config or AssemblerConfig()
        self._active: dict[FiveTuple, Flow] = {}
        self._last_seen: dict[FiveTuple, float] = {}
        self._completed_count = 0

    @property
    def active_count(self) -> int:
        """Number of currently open flows."""
        return len(self._active)

    @property
    def completed_count(self) -> int:
        """Number of flows emitted so far."""
        return self._completed_count

    def add(self, packet: PacketRecord) -> list[Flow]:
        """Process one packet; returns flows that closed as a result."""
        closed = self._expire_idle(packet.timestamp)
        key = packet.five_tuple().canonical()
        flow = self._active.get(key)
        if flow is None:
            # The flow's client perspective is the first packet's direction.
            flow = Flow(packet.five_tuple())
            self._active[key] = flow
        flow.add(packet)
        self._last_seen[key] = packet.timestamp
        if self.config.close_on_fin and is_flow_terminator(packet.flags):
            self._close(key)
            closed.append(flow)
        return self._emit(closed)

    def flush(self) -> list[Flow]:
        """Close every remaining flow (end of trace)."""
        remaining = list(self._active.values())
        self._active.clear()
        self._last_seen.clear()
        return self._emit(remaining)

    def _expire_idle(self, now: float) -> list[Flow]:
        timeout = self.config.idle_timeout
        expired_keys = [
            key
            for key, last in self._last_seen.items()
            if now - last > timeout
        ]
        expired = [self._active[key] for key in expired_keys]
        for key in expired_keys:
            self._close(key)
        return expired

    def _close(self, key: FiveTuple) -> None:
        self._active.pop(key, None)
        self._last_seen.pop(key, None)

    def _emit(self, flows: list[Flow]) -> list[Flow]:
        kept = [flow for flow in flows if len(flow) >= self.config.min_packets]
        self._completed_count += len(kept)
        return kept


def assemble_flows(
    packets: Iterable[PacketRecord], config: AssemblerConfig | None = None
) -> list[Flow]:
    """Assemble a whole packet iterable into completed flows.

    Flows are returned ordered by their first-packet timestamp, matching
    the time-seq dataset ordering of section 3.
    """
    assembler = FlowAssembler(config)
    flows: list[Flow] = []
    for packet in packets:
        flows.extend(assembler.add(packet))
    flows.extend(assembler.flush())
    flows.sort(key=lambda flow: flow.start_time())
    return flows


def iter_flows(
    packets: Iterable[PacketRecord], config: AssemblerConfig | None = None
) -> Iterator[Flow]:
    """Streaming variant of :func:`assemble_flows`.

    Flows are yielded in *completion* order (not start order) so the
    pipeline never holds the whole trace in memory.
    """
    assembler = FlowAssembler(config)
    for packet in packets:
        yield from assembler.add(packet)
    yield from assembler.flush()
