"""Flow characterization — section 2 of the paper.

Every packet ``p_i`` of a flow maps to an integer::

    f(p_i) = w1 * g1(p_i) + w2 * g2(p_i) + w3 * g3(p_i)

with the paper's weights ``w = (16, 4, 1)`` and the three per-packet
features:

``g1`` — TCP-flag class
    0 = SYN, 1 = SYN+ACK, 2 = ACK (data or pure acknowledgment),
    3 = FIN/RST family.

``g2`` — acknowledgment dependence
    0 = *dependent* packet ("a packet to be transmitted waits for a packet
    sent by the opposite node", e.g. the SYN+ACK of the handshake),
    1 = *not dependent* ("sent immediately after the last one").
    A packet is dependent exactly when the previous packet of the flow
    travelled in the opposite direction; the flow-opening packet is not
    dependent.

``g3`` — payload-size class
    0 = empty payload (40-byte header-only packet),
    1 = payload of 1..500 bytes,
    2 = payload above 500 bytes.

The per-flow vector ``V_f = (f(p_1), ..., f(p_n))`` is what the clustering
and the compressor's template datasets operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flows.model import Direction, Flow, FlowPacket
from repro.net.tcp import classify_flags

PAYLOAD_SMALL_MAX = 500
"""Upper bound (inclusive) of the paper's middle payload class, bytes."""


@dataclass(frozen=True, slots=True)
class Weights:
    """The relative importance weights ``(w1, w2, w3)`` of section 2.

    "Depending on the type of problem to be studied, we can apply
    different weights" — so they are a first-class configuration object.
    """

    flags: int = 16
    dependence: int = 4
    payload: int = 1

    def __post_init__(self) -> None:
        for label, value in (
            ("flags", self.flags),
            ("dependence", self.dependence),
            ("payload", self.payload),
        ):
            if value < 0:
                raise ValueError(f"weight {label} cannot be negative: {value}")

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.flags, self.dependence, self.payload)

    def max_packet_value(self) -> int:
        """Largest possible ``f(p)`` under these weights."""
        return self.flags * 3 + self.dependence * 1 + self.payload * 2


DEFAULT_WEIGHTS = Weights()
"""The paper's weights: w1=16 (flags), w2=4 (dependence), w3=1 (payload)."""


@dataclass(frozen=True)
class CharacterizationConfig:
    """Weights plus the payload class boundary (both paper-tunable)."""

    weights: Weights = DEFAULT_WEIGHTS
    payload_small_max: int = PAYLOAD_SMALL_MAX


def flag_class(flags: int) -> int:
    """``g1`` — see :func:`repro.net.tcp.classify_flags`."""
    return int(classify_flags(flags))


def ack_dependence_class(
    direction: Direction, previous_direction: Direction | None
) -> int:
    """``g2`` — 0 when the packet waited on the opposite node, else 1."""
    if previous_direction is None:
        return 1  # flow opener waits on nothing
    return 0 if direction is not previous_direction else 1


def payload_size_class(payload_len: int, small_max: int = PAYLOAD_SMALL_MAX) -> int:
    """``g3`` — 0 empty, 1 small (≤ ``small_max``), 2 large."""
    if payload_len < 0:
        raise ValueError(f"negative payload length: {payload_len}")
    if payload_len == 0:
        return 0
    if payload_len <= small_max:
        return 1
    return 2


def packet_value(
    flow_packet: FlowPacket,
    previous_direction: Direction | None,
    config: CharacterizationConfig = CharacterizationConfig(),
) -> int:
    """``f(p_i)`` for one packet given its predecessor's direction."""
    weights = config.weights
    return (
        weights.flags * flag_class(flow_packet.flags)
        + weights.dependence
        * ack_dependence_class(flow_packet.direction, previous_direction)
        + weights.payload
        * payload_size_class(flow_packet.payload_len, config.payload_small_max)
    )


def characterize_flow(
    flow: Flow, config: CharacterizationConfig = CharacterizationConfig()
) -> tuple[int, ...]:
    """The flow's ``V_f`` vector: one ``f`` value per packet, in order."""
    values: list[int] = []
    previous: Direction | None = None
    for flow_packet in flow.packets:
        values.append(packet_value(flow_packet, previous, config))
        previous = flow_packet.direction
    return tuple(values)


def decode_packet_value(
    value: int, config: CharacterizationConfig = CharacterizationConfig()
) -> tuple[int, int, int]:
    """Invert ``f(p) -> (g1, g2, g3)``.

    With the default weights (16, 4, 1) and class ranges g1<=3, g2<=1,
    g3<=2 the mapping is uniquely decodable by place value; the
    decompressor relies on this to re-synthesize flags and sizes.
    """
    weights = config.weights
    if (
        weights.payload < 1
        or weights.dependence <= 2 * weights.payload
        or weights.flags <= weights.dependence + 2 * weights.payload
    ):
        raise ValueError(
            "decoding requires place-value weights: "
            "w3 >= 1, w2 > 2*w3 and w1 > w2 + 2*w3"
        )
    g1, rest = divmod(value, weights.flags)
    g2, rest = divmod(rest, weights.dependence)
    g3 = rest // weights.payload
    if g1 > 3 or g2 > 1 or g3 > 2:
        raise ValueError(f"value {value} is not a valid f(p) encoding")
    return g1, g2, g3
