"""Flow data model.

A :class:`Flow` is a bidirectional TCP conversation: the time-ordered
packets sharing one canonical 5-tuple, annotated with direction (client →
server or server → client).  The client is the endpoint that sent the
first packet (for well-formed Web flows, the SYN sender).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.net.flowkey import FiveTuple
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN


class Direction(enum.Enum):
    """Direction of a packet relative to the flow's client."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    def opposite(self) -> "Direction":
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER


@dataclass(frozen=True, slots=True)
class FlowPacket:
    """One packet inside a flow, with its direction annotation."""

    packet: PacketRecord
    direction: Direction

    @property
    def timestamp(self) -> float:
        return self.packet.timestamp

    @property
    def flags(self) -> int:
        return self.packet.flags

    @property
    def payload_len(self) -> int:
        return self.packet.payload_len


@dataclass
class Flow:
    """A bidirectional TCP flow.

    Attributes
    ----------
    key:
        The client-perspective 5-tuple (client is source).
    packets:
        Time-ordered :class:`FlowPacket` list.
    """

    key: FiveTuple
    packets: list[FlowPacket] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[FlowPacket]:
        return iter(self.packets)

    def add(self, packet: PacketRecord) -> None:
        """Append a packet, inferring its direction from the flow key."""
        if packet.five_tuple() == self.key:
            direction = Direction.CLIENT_TO_SERVER
        elif packet.five_tuple() == self.key.reversed():
            direction = Direction.SERVER_TO_CLIENT
        else:
            raise ValueError(
                f"packet {packet.five_tuple().describe()} does not belong to "
                f"flow {self.key.describe()}"
            )
        self.packets.append(FlowPacket(packet, direction))

    # -- time -------------------------------------------------------------

    def start_time(self) -> float:
        """Timestamp of the first packet."""
        if not self.packets:
            raise ValueError("empty flow has no start time")
        return self.packets[0].timestamp

    def end_time(self) -> float:
        """Timestamp of the last packet."""
        if not self.packets:
            raise ValueError("empty flow has no end time")
        return self.packets[-1].timestamp

    def duration(self) -> float:
        """Seconds between first and last packet."""
        return self.end_time() - self.start_time()

    def inter_packet_times(self) -> list[float]:
        """Gaps between consecutive packets (length ``n - 1``)."""
        times = [fp.timestamp for fp in self.packets]
        return [later - earlier for earlier, later in zip(times, times[1:])]

    # -- TCP semantics -----------------------------------------------------

    def starts_with_syn(self) -> bool:
        """True when the first packet carries a bare SYN."""
        if not self.packets:
            return False
        first = self.packets[0].packet
        return bool(first.flags & TCP_SYN) and not first.flags & TCP_ACK

    def is_terminated(self) -> bool:
        """True when some packet carries FIN or RST."""
        return any(fp.flags & (TCP_FIN | TCP_RST) for fp in self.packets)

    def estimate_rtt(self) -> float:
        """Round-trip-time estimate (section 2's 'acknowledgment dependence').

        The paper associates the RTT of a short flow with the waiting time
        of dependent packets (e.g. SYN -> SYN+ACK).  The estimate is the
        gap between the first packet and the first packet travelling in
        the opposite direction; flows that never turn around report 0.
        """
        if not self.packets:
            return 0.0
        first_direction = self.packets[0].direction
        first_time = self.packets[0].timestamp
        for flow_packet in self.packets[1:]:
            if flow_packet.direction is not first_direction:
                return flow_packet.timestamp - first_time
        return 0.0

    # -- aggregates ---------------------------------------------------------

    def total_bytes(self) -> int:
        """Wire bytes over the whole flow."""
        return sum(fp.packet.total_length() for fp in self.packets)

    def total_payload(self) -> int:
        """Payload bytes over the whole flow."""
        return sum(fp.payload_len for fp in self.packets)

    def server_ip(self) -> int:
        """The server-side (destination) IP address."""
        return self.key.dst_ip

    def client_ip(self) -> int:
        """The client-side (source) IP address."""
        return self.key.src_ip

    def raw_packets(self) -> list[PacketRecord]:
        """The underlying packet records, in order."""
        return [fp.packet for fp in self.packets]


def flow_from_packets(key: FiveTuple, packets: Sequence[PacketRecord]) -> Flow:
    """Build a flow by adding ``packets`` (time order preserved)."""
    flow = Flow(key)
    for packet in packets:
        flow.add(packet)
    return flow
