"""Flow layer: assembly, characterization (section 2), and clustering.

This subpackage turns raw packet traces into the bidirectional TCP flows
the paper reasons about, computes the per-packet ``f(p)`` values and
per-flow ``V_f`` vectors of section 2, and provides the distance rule
(equation 4) and clustering utilities behind the compressor.
"""

from repro.flows.model import Direction, Flow, FlowPacket
from repro.flows.assembler import AssemblerConfig, FlowAssembler, assemble_flows
from repro.flows.characterize import (
    DEFAULT_WEIGHTS,
    CharacterizationConfig,
    Weights,
    ack_dependence_class,
    characterize_flow,
    flag_class,
    packet_value,
    payload_size_class,
)
from repro.flows.distance import (
    MAX_PACKET_DISTANCE,
    SIMILARITY_PERCENT,
    max_inter_flow_distance,
    similarity_threshold,
    vector_distance,
    vectors_similar,
)
from repro.flows.clustering import (
    Cluster,
    ClusteringResult,
    cluster_vectors,
    cluster_flows,
)

__all__ = [
    "Direction",
    "Flow",
    "FlowPacket",
    "AssemblerConfig",
    "FlowAssembler",
    "assemble_flows",
    "DEFAULT_WEIGHTS",
    "CharacterizationConfig",
    "Weights",
    "ack_dependence_class",
    "characterize_flow",
    "flag_class",
    "packet_value",
    "payload_size_class",
    "MAX_PACKET_DISTANCE",
    "SIMILARITY_PERCENT",
    "max_inter_flow_distance",
    "similarity_threshold",
    "vector_distance",
    "vectors_similar",
    "Cluster",
    "ClusteringResult",
    "cluster_vectors",
    "cluster_flows",
]
