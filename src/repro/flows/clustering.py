"""Flow clustering — the section 2.1 diversity study.

The compressor itself uses an *online* leader-style clustering (the first
vector of a new cluster becomes its template; see
:mod:`repro.core.compressor`).  This module provides the offline analysis
counterpart used to reproduce the paper's observation that "in consequence
of the huge similarity among Web flows, we can group a high amount of them
into few clusters": greedy leader clustering of ``V_f`` vectors grouped by
flow length, plus summary statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.flows.characterize import CharacterizationConfig, characterize_flow
from repro.flows.distance import (
    MAX_PACKET_DISTANCE,
    SIMILARITY_PERCENT,
    vector_distance,
    vectors_similar,
)
from repro.flows.model import Flow


@dataclass
class Cluster:
    """One cluster of same-length ``V_f`` vectors.

    The *center* is the first vector inserted (the paper: "This new V_f
    vector will constitute the center of a new cluster").
    """

    center: tuple[int, ...]
    member_count: int = 1

    @property
    def length(self) -> int:
        """Flow length (packets) this cluster covers."""
        return len(self.center)

    def admits(
        self,
        vector: Sequence[int],
        percent: float = SIMILARITY_PERCENT,
        per_packet_max: int = MAX_PACKET_DISTANCE,
    ) -> bool:
        """True when ``vector`` is similar to the center (eq. 4 rule)."""
        if len(vector) != self.length:
            return False
        return vectors_similar(self.center, vector, percent, per_packet_max)


@dataclass
class ClusteringResult:
    """Outcome of clustering a set of vectors."""

    clusters_by_length: dict[int, list[Cluster]] = field(default_factory=dict)
    vector_count: int = 0

    def cluster_count(self) -> int:
        """Total clusters over every length group."""
        return sum(len(group) for group in self.clusters_by_length.values())

    def compression_opportunity(self) -> float:
        """Fraction of vectors absorbed by an existing cluster.

        1 - clusters/vectors; higher means more template reuse.
        """
        if self.vector_count == 0:
            return 0.0
        return 1.0 - self.cluster_count() / self.vector_count

    def largest_cluster(self) -> Cluster | None:
        """The cluster with the most members (None when empty)."""
        best: Cluster | None = None
        for group in self.clusters_by_length.values():
            for cluster in group:
                if best is None or cluster.member_count > best.member_count:
                    best = cluster
        return best

    def cluster_sizes(self) -> list[int]:
        """Member counts of every cluster, descending."""
        sizes = [
            cluster.member_count
            for group in self.clusters_by_length.values()
            for cluster in group
        ]
        return sorted(sizes, reverse=True)


def cluster_vectors(
    vectors: Iterable[Sequence[int]],
    percent: float = SIMILARITY_PERCENT,
    per_packet_max: int = MAX_PACKET_DISTANCE,
) -> ClusteringResult:
    """Greedy leader clustering of ``V_f`` vectors.

    Vectors are grouped by length; inside a group, each vector joins the
    first cluster whose center is within ``d_max``, otherwise it founds a
    new cluster.  This mirrors the compressor's template search exactly,
    so ``cluster_count`` equals the number of short-flow templates the
    compressor would emit for the same input.
    """
    result = ClusteringResult(clusters_by_length=defaultdict(list))
    for vector in vectors:
        key = tuple(vector)
        result.vector_count += 1
        group = result.clusters_by_length[len(key)]
        for cluster in group:
            if cluster.admits(key, percent, per_packet_max):
                cluster.member_count += 1
                break
        else:
            group.append(Cluster(center=key))
    result.clusters_by_length = dict(result.clusters_by_length)
    return result


def cluster_flows(
    flows: Iterable[Flow],
    config: CharacterizationConfig = CharacterizationConfig(),
    percent: float = SIMILARITY_PERCENT,
    per_packet_max: int = MAX_PACKET_DISTANCE,
) -> ClusteringResult:
    """Characterize flows (section 2) and cluster their vectors."""
    vectors = (characterize_flow(flow, config) for flow in flows)
    return cluster_vectors(vectors, percent, per_packet_max)


def nearest_cluster(
    vector: Sequence[int], clusters: Sequence[Cluster]
) -> tuple[int, int] | None:
    """Index and distance of the closest same-length cluster center.

    Returns None when no cluster matches the vector's length.
    """
    best: tuple[int, int] | None = None
    for index, cluster in enumerate(clusters):
        if cluster.length != len(vector):
            continue
        distance = vector_distance(cluster.center, vector)
        if best is None or distance < best[1]:
            best = (index, distance)
    return best
