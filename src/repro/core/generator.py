"""Template-based synthetic trace generation — the paper's future work.

The conclusions propose to "implement a synthetic packet trace generator
based on the described methodology": once a trace is compressed, its four
datasets *are* a traffic model — template shapes with empirical
frequencies, a flow arrival process, an RTT distribution, and a
destination popularity profile.  This module fits that model from a
:class:`~repro.core.datasets.CompressedTrace` and synthesizes traces of
any requested length that follow the same statistics, reusing the
decompressor as the packet-level renderer.

Typical use::

    compressed = compress_trace(real_trace)
    model = TraceModel.fit(compressed)
    bigger = model.synthesize(flow_count=10 * compressed.flow_count())
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.decompressor import DecompressorConfig, decompress_trace
from repro.trace.trace import Trace


@dataclass(frozen=True)
class _WeightedChoice:
    """Cumulative-weight sampler over indices 0..n-1."""

    cumulative: tuple[float, ...]

    @classmethod
    def from_counts(cls, counts: list[int]) -> "_WeightedChoice":
        total = float(sum(counts))
        if total <= 0:
            raise ValueError("cannot sample from all-zero counts")
        running = 0.0
        cumulative = []
        for count in counts:
            running += count / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        return cls(tuple(cumulative))

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self.cumulative, rng.random())


@dataclass
class TraceModel:
    """A generative traffic model fitted from compressed datasets.

    Attributes
    ----------
    short_templates / long_templates:
        The template shapes, carried over verbatim.
    short_usage / long_usage:
        How many flows of the source trace used each template.
    addresses:
        Destination addresses with their per-flow usage counts.
    arrival_rate:
        Fitted flow arrival rate (flows/second, Poisson process).
    rtt_samples:
        The empirical short-flow RTT sample (resampled on synthesis).
    long_fraction:
        Fraction of flows that were long.
    """

    short_templates: list[ShortFlowTemplate]
    long_templates: list[LongFlowTemplate]
    short_usage: list[int]
    long_usage: list[int]
    addresses: list[int]
    address_usage: list[int]
    arrival_rate: float
    rtt_samples: list[float]
    long_fraction: float
    _short_choice: _WeightedChoice = field(repr=False, default=None)  # type: ignore[assignment]
    _long_choice: _WeightedChoice | None = field(repr=False, default=None)
    _address_choice: _WeightedChoice = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def fit(cls, compressed: CompressedTrace) -> "TraceModel":
        """Fit the model from one compressed trace."""
        if not compressed.time_seq:
            raise ValueError("cannot fit a model from an empty trace")
        compressed.validate()

        short_usage = [0] * len(compressed.short_templates)
        long_usage = [0] * len(compressed.long_templates)
        address_usage = [0] * len(compressed.addresses)
        rtt_samples: list[float] = []
        long_count = 0
        for record in compressed.time_seq:
            if record.dataset is DatasetId.SHORT:
                short_usage[record.template_index] += 1
                if record.rtt > 0:
                    rtt_samples.append(record.rtt)
            else:
                long_usage[record.template_index] += 1
                long_count += 1
            address_usage[record.address_index] += 1

        records = compressed.sorted_time_seq()
        span = records[-1].timestamp - records[0].timestamp
        arrival_rate = len(records) / span if span > 0 else float(len(records))

        model = cls(
            short_templates=list(compressed.short_templates),
            long_templates=list(compressed.long_templates),
            short_usage=short_usage,
            long_usage=long_usage,
            addresses=list(compressed.addresses),
            address_usage=address_usage,
            arrival_rate=arrival_rate,
            rtt_samples=rtt_samples or [0.05],
            long_fraction=long_count / len(records),
        )
        model._short_choice = (
            _WeightedChoice.from_counts(short_usage) if sum(short_usage) else None
        )
        model._long_choice = (
            _WeightedChoice.from_counts(long_usage) if sum(long_usage) else None
        )
        model._address_choice = _WeightedChoice.from_counts(
            [max(1, count) for count in address_usage]
        )
        return model

    # -- synthesis -----------------------------------------------------------

    def synthesize_datasets(
        self, flow_count: int, seed: int = 1
    ) -> CompressedTrace:
        """Sample ``flow_count`` new time-seq records against the model."""
        if flow_count < 0:
            raise ValueError(f"flow_count cannot be negative: {flow_count}")
        rng = random.Random(seed)
        synthetic = CompressedTrace(
            short_templates=self.short_templates,
            long_templates=self.long_templates,
            name=f"synthetic-{seed}",
        )
        for address in self.addresses:
            synthetic.addresses.intern(address)

        timestamp = 0.0
        for _ in range(flow_count):
            timestamp += rng.expovariate(self.arrival_rate)
            make_long = (
                self._long_choice is not None
                and (
                    self._short_choice is None
                    or rng.random() < self.long_fraction
                )
            )
            if make_long:
                dataset = DatasetId.LONG
                template_index = self._long_choice.sample(rng)
                rtt = 0.0
            else:
                dataset = DatasetId.SHORT
                template_index = self._short_choice.sample(rng)
                rtt = rng.choice(self.rtt_samples)
            synthetic.time_seq.append(
                TimeSeqRecord(
                    timestamp=timestamp,
                    dataset=dataset,
                    template_index=template_index,
                    address_index=self._address_choice.sample(rng),
                    rtt=rtt,
                )
            )
        synthetic.original_packet_count = synthetic.packet_count()
        return synthetic

    def synthesize(
        self,
        flow_count: int,
        seed: int = 1,
        config: DecompressorConfig | None = None,
    ) -> Trace:
        """Synthesize a packet trace of ``flow_count`` flows."""
        datasets = self.synthesize_datasets(flow_count, seed)
        return decompress_trace(datasets, config)

    # -- introspection --------------------------------------------------------

    def template_count(self) -> int:
        """Total templates carried by the model."""
        return len(self.short_templates) + len(self.long_templates)

    def expected_packets_per_flow(self) -> float:
        """Mean packets/flow the model will produce."""
        short_total = sum(self.short_usage)
        long_total = sum(self.long_usage)
        weighted = sum(
            template.n * usage
            for template, usage in zip(self.short_templates, self.short_usage)
        ) + sum(
            template.n * usage
            for template, usage in zip(self.long_templates, self.long_usage)
        )
        total = short_total + long_total
        return weighted / total if total else 0.0
