"""Exception types of the core compressor."""


class CompressionError(Exception):
    """Raised when the compressor cannot process its input."""


class CodecError(Exception):
    """Raised when serialized compressed data is malformed."""


class ArchiveError(CodecError):
    """Raised when a segmented archive container is malformed or misused."""
