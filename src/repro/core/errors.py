"""Exception types of the core compressor, plus the deprecation helper."""

import warnings


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard 1.1-shim :class:`DeprecationWarning`.

    One helper for every shim so the message shape (and the 1.2 removal
    edit) stays in one place.  ``stacklevel`` must land on the *shim's
    caller* — 3 when called from inside the shim body (helper → shim →
    caller), which is the normal case.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(shim kept for one release, see repro.api)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


class CompressionError(Exception):
    """Raised when the compressor cannot process its input."""


class CodecError(Exception):
    """Raised when serialized compressed data is malformed."""


class ArchiveError(CodecError):
    """Raised when a segmented archive container is malformed or misused."""
