"""Binary serialization of the four compressed datasets.

The on-disk container implements the paper's storage budget as closely
as a practical format allows (``docs/FORMAT.md`` is the normative
byte-level spec):

* ``time-seq`` record — **10 bytes per flow**: timestamp (u32, 100 µs
  units), dataset id + template index (u16: top bit = long flag), address
  index (u16), RTT (u16, 100 µs units, saturating at ~6.5 s).  The paper
  argues 8 bytes suffice (eq. 7); we spend 2 more for index headroom and
  note the deviation in DESIGN.md.
* ``short-flows-template`` — u8 length + one byte per ``f(p_i)`` value.
* ``long-flows-template`` — u16 length + per packet one value byte and a
  u16 inter-packet gap in 100 µs units (saturating) — 3 bytes per long
  packet.
* ``address`` — four bytes per unique destination.

All integers are big-endian.  The container self-describes with a magic,
a version byte and section counts, and the decoder validates referential
integrity before returning.

Two container generations exist:

* **v1** (version byte :data:`VERSION_V1`) stores the four sections
  back to back, uncompressed — the original layout.
* **v2** (version byte :data:`VERSION_V2`, the writer's default) frames
  each section with a 9-byte tag — backend id, stored length, raw
  length — and stores the section through that backend
  (:mod:`repro.core.backends`): ``raw`` keeps the v1 bytes, ``zlib`` /
  ``bz2`` / ``lzma`` entropy-code them, ``auto`` trial-picks per
  section.  The reader accepts both generations; a tag naming an
  unregistered backend raises :class:`CodecError` instead of decoding
  garbage.

Capacity limits imposed by the compact layout (checked, raising
:class:`~repro.core.errors.CodecError`): at most 32768 templates per
dataset and 65536 unique addresses; inter-packet gaps and RTTs saturate
at 6.5535 s; timestamps cover ~119 hours at 100 µs resolution.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Mapping

from repro.core.backends import (
    AUTO,
    backend_for_tag,
    encode_auto,
    get_backend,
)
from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError
from repro.obs import current as obs_current

MAGIC = b"FCTC"
VERSION_V1 = 2  # legacy layout: untagged, raw sections
VERSION_V2 = 3  # per-section backend tags
VERSION = VERSION_V2  # what the writer emits

TIMESTAMP_UNITS_PER_SECOND = 10_000  # 100 µs resolution
RTT_UNITS_PER_SECOND = 10_000
GAP_UNITS_PER_SECOND = 10_000

MAX_TEMPLATE_INDEX = 0x7FFF
MAX_ADDRESS_INDEX = 0xFFFF

_MAX_U16 = 0xFFFF
_MAX_U32 = 0xFFFFFFFF

_HEADER = struct.Struct(">4sBxH I IIII")
_TIME_SEQ = struct.Struct(">IHHH")
_SECTION_TAG = struct.Struct(">BII")  # backend tag, stored length, raw length
TIME_SEQ_RECORD_BYTES = _TIME_SEQ.size  # 10
LONG_PACKET_BYTES = 3  # 1 value byte + u16 gap
SECTION_TAG_BYTES = _SECTION_TAG.size  # 9

SECTION_NAMES = (
    "short_flows_template",
    "long_flows_template",
    "address",
    "time_seq",
)
"""The four dataset sections, in on-disk order."""


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise CodecError(f"truncated input while reading {what}")
    return data


def quantize_timestamp(seconds: float) -> int:
    """Timestamp units as stored on disk (100 µs, saturating u32)."""
    return min(int(round(seconds * TIMESTAMP_UNITS_PER_SECOND)), _MAX_U32)


def quantize_rtt(seconds: float) -> int:
    """RTT units as stored on disk (100 µs, saturating u16)."""
    return min(int(round(seconds * RTT_UNITS_PER_SECOND)), _MAX_U16)


def quantize_gap(seconds: float) -> int:
    """Long-flow inter-packet gap units as stored on disk (100 µs, u16)."""
    return min(int(round(seconds * GAP_UNITS_PER_SECOND)), _MAX_U16)


# -- section bodies (shared by both container generations) -----------------


def _pack_short_templates(templates: list[ShortFlowTemplate]) -> bytes:
    out = bytearray()
    for template in templates:
        if template.n > 0xFF:
            raise CodecError(f"short template too long for codec: {template.n}")
        out.append(template.n)
        out.extend(template.values)
    return bytes(out)


# Sections shorter than this pack with the plain loops — array setup
# costs more than it saves on a handful of records.
_VECTOR_MIN = 32


def _codec_numpy():
    """numpy when the vectorized packers should run, else ``None``."""
    from repro.net.columns import numpy_or_none

    return numpy_or_none()


def _pack_long_templates(templates: list[LongFlowTemplate]) -> bytes:
    np = _codec_numpy()
    out = bytearray()
    for template in templates:
        if template.n > _MAX_U16:
            raise CodecError(f"long template too long for codec: {template.n}")
        out.extend(struct.pack(">H", template.n))
        out.extend(bytes(template.values))
        if np is not None and template.n >= _VECTOR_MIN:
            units = np.minimum(
                np.rint(
                    np.asarray(template.gaps, dtype=np.float64)
                    * GAP_UNITS_PER_SECOND
                ),
                float(_MAX_U16),
            )
            if units.min() >= 0:  # negative gaps: scalar path's struct error
                out.extend(units.astype(">u2").tobytes())
                continue
        gap_units = [quantize_gap(gap) for gap in template.gaps]
        out.extend(struct.pack(f">{template.n}H", *gap_units))
    return bytes(out)


def _pack_addresses(addresses: AddressTable) -> bytes:
    np = _codec_numpy()
    if np is not None and len(addresses) >= _VECTOR_MIN:
        try:
            values = np.fromiter(
                addresses, dtype=np.uint32, count=len(addresses)
            )
        except (OverflowError, ValueError):
            pass  # out-of-range entry: scalar path's struct error
        else:
            return values.astype(">u4").tobytes()
    return b"".join(struct.pack(">I", address) for address in addresses)


def _pack_time_seq_scalar(records: list[TimeSeqRecord]) -> bytes:
    out = bytearray()
    for record in records:
        timestamp_units = quantize_timestamp(record.timestamp)
        template_ref = record.template_index
        if template_ref > MAX_TEMPLATE_INDEX:
            raise CodecError(f"template index too large: {template_ref}")
        if record.dataset is DatasetId.LONG:
            template_ref |= 0x8000
        rtt_units = quantize_rtt(record.rtt)
        out.extend(
            _TIME_SEQ.pack(
                timestamp_units, template_ref, record.address_index, rtt_units
            )
        )
    return bytes(out)


# The vectorized time-seq record as a structured dtype: the same
# big-endian u32/u16/u16/u16 layout ``_TIME_SEQ`` packs.
_TIME_SEQ_DTYPE_FIELDS = [
    ("ts", ">u4"),
    ("ref", ">u2"),
    ("addr", ">u2"),
    ("rtt", ">u2"),
]


def _pack_time_seq(records: list[TimeSeqRecord]) -> bytes:
    np = _codec_numpy()
    if np is None or len(records) < _VECTOR_MIN:
        return _pack_time_seq_scalar(records)
    refs = np.array([r.template_index for r in records], dtype=np.int64)
    bad = np.nonzero(refs > MAX_TEMPLATE_INDEX)[0]
    if bad.size:
        # Same first-offender error as the scalar loop.
        for record in records:
            if record.template_index > MAX_TEMPLATE_INDEX:
                raise CodecError(
                    f"template index too large: {record.template_index}"
                )
    addrs = np.array([r.address_index for r in records], dtype=np.int64)
    if refs.min() < 0 or addrs.min() < 0 or addrs.max() > _MAX_U16:
        return _pack_time_seq_scalar(records)  # scalar path's struct error
    timestamps = np.array([r.timestamp for r in records], dtype=np.float64)
    rtts = np.array([r.rtt for r in records], dtype=np.float64)
    scaled_ts = timestamps * TIMESTAMP_UNITS_PER_SECOND
    scaled_rtt = rtts * RTT_UNITS_PER_SECOND
    if not (np.isfinite(scaled_ts).all() and np.isfinite(scaled_rtt).all()):
        return _pack_time_seq_scalar(records)
    ts_units = np.minimum(np.rint(scaled_ts), float(_MAX_U32))
    rtt_units = np.minimum(np.rint(scaled_rtt), float(_MAX_U16))
    if ts_units.min() < 0 or rtt_units.min() < 0:
        return _pack_time_seq_scalar(records)
    long_flag = np.array(
        [r.dataset is DatasetId.LONG for r in records], dtype=np.int64
    )
    rows = np.empty(len(records), dtype=np.dtype(_TIME_SEQ_DTYPE_FIELDS))
    rows["ts"] = ts_units.astype(np.uint32)
    rows["ref"] = (refs | (long_flag << 15)).astype(np.uint16)
    rows["addr"] = addrs.astype(np.uint16)
    rows["rtt"] = rtt_units.astype(np.uint16)
    return rows.tobytes()


def _parse_short_templates(
    stream: BinaryIO, count: int
) -> list[ShortFlowTemplate]:
    templates: list[ShortFlowTemplate] = []
    for _ in range(count):
        (n,) = _read_exact(stream, 1, "short template length")
        values = tuple(_read_exact(stream, n, "short template values"))
        try:
            templates.append(ShortFlowTemplate(values))
        except ValueError as exc:
            raise CodecError(f"invalid short template: {exc}") from exc
    return templates


def _parse_long_templates(stream: BinaryIO, count: int) -> list[LongFlowTemplate]:
    templates: list[LongFlowTemplate] = []
    for _ in range(count):
        (n,) = struct.unpack(">H", _read_exact(stream, 2, "long template length"))
        values = tuple(_read_exact(stream, n, "long template values"))
        gap_units = struct.unpack(
            f">{n}H", _read_exact(stream, 2 * n, "long template gaps")
        )
        gaps = tuple(units / GAP_UNITS_PER_SECOND for units in gap_units)
        try:
            templates.append(LongFlowTemplate(values, gaps))
        except ValueError as exc:
            raise CodecError(f"invalid long template: {exc}") from exc
    return templates


def _parse_addresses(stream: BinaryIO, count: int) -> AddressTable:
    addresses = AddressTable()
    for _ in range(count):
        (address,) = struct.unpack(">I", _read_exact(stream, 4, "address"))
        addresses.intern(address)
    if len(addresses) != count:
        raise CodecError("duplicate addresses in address dataset")
    return addresses


def _parse_time_seq(stream: BinaryIO, count: int) -> list[TimeSeqRecord]:
    records: list[TimeSeqRecord] = []
    for _ in range(count):
        record = _read_exact(stream, TIME_SEQ_RECORD_BYTES, "time-seq record")
        timestamp_units, template_ref, address_index, rtt_units = _TIME_SEQ.unpack(
            record
        )
        dataset = DatasetId.LONG if template_ref & 0x8000 else DatasetId.SHORT
        records.append(
            TimeSeqRecord(
                timestamp=timestamp_units / TIMESTAMP_UNITS_PER_SECOND,
                dataset=dataset,
                template_index=template_ref & MAX_TEMPLATE_INDEX,
                address_index=address_index,
                rtt=rtt_units / RTT_UNITS_PER_SECOND,
            )
        )
    return records


# -- backend resolution ----------------------------------------------------


def resolve_backend_spec(
    backend: str | Mapping[str, str] | None,
) -> dict[str, str]:
    """Normalize a backend request to a per-section name mapping.

    ``None`` means ``raw`` everywhere (the paper's format); a string
    applies one backend — or ``auto`` — to every section; a mapping
    assigns sections individually (unlisted sections default to ``raw``).
    Unknown section or backend names raise :class:`CodecError` before
    any bytes are written.
    """
    if backend is None:
        return {section: "raw" for section in SECTION_NAMES}
    if isinstance(backend, str):
        spec = {section: backend for section in SECTION_NAMES}
    else:
        unknown = set(backend) - set(SECTION_NAMES)
        if unknown:
            raise CodecError(
                f"unknown section names in backend spec: {sorted(unknown)} "
                f"(sections: {', '.join(SECTION_NAMES)})"
            )
        spec = {
            section: backend.get(section, "raw") for section in SECTION_NAMES
        }
    for name in spec.values():
        if name != AUTO:
            get_backend(name)  # raises CodecError for unknown names
    return spec


def validate_backend_request(
    backend: str | Mapping[str, str] | None, level: int | None = None
) -> None:
    """Fail fast on a request :func:`write_container` would reject.

    Long-running producers (the archive writer) call this before doing
    any work: an unknown backend name or an out-of-range level on an
    explicitly named backend should fail before a file is truncated or
    an input compressed, not at the first segment write.
    """
    resolve_backend_spec(backend)
    if isinstance(backend, str) and backend != AUTO:
        get_backend(backend).validate_level(level)


@dataclass(frozen=True)
class SectionInfo:
    """One section's framing as stored: which backend, how many bytes."""

    name: str
    backend: str
    stored_bytes: int
    raw_bytes: int


@dataclass(frozen=True)
class ContainerWriteResult:
    """What :func:`write_container` produced: total length + section map."""

    length: int
    sections: tuple[SectionInfo, ...]

    @property
    def backend_tags(self) -> tuple[int, int, int, int]:
        """The four wire tags, in section order (for the archive index)."""
        return tuple(get_backend(s.backend).tag for s in self.sections)


def _check_counts(compressed: CompressedTrace) -> None:
    compressed.validate()
    if len(compressed.short_templates) > MAX_TEMPLATE_INDEX + 1:
        raise CodecError(
            f"too many short templates for codec: {len(compressed.short_templates)}"
        )
    if len(compressed.long_templates) > MAX_TEMPLATE_INDEX + 1:
        raise CodecError(
            f"too many long templates for codec: {len(compressed.long_templates)}"
        )
    if len(compressed.addresses) > MAX_ADDRESS_INDEX + 1:
        raise CodecError(
            f"too many addresses for codec: {len(compressed.addresses)}"
        )


def _pack_header(compressed: CompressedTrace, version: int) -> bytes:
    name_bytes = compressed.name.encode("utf-8")[:_MAX_U16]
    return (
        _HEADER.pack(
            MAGIC,
            version,
            len(name_bytes),
            min(compressed.original_packet_count, _MAX_U32),
            len(compressed.short_templates),
            len(compressed.long_templates),
            len(compressed.addresses),
            len(compressed.time_seq),
        )
        + name_bytes
    )


def _section_bodies(compressed: CompressedTrace) -> tuple[bytes, bytes, bytes, bytes]:
    return (
        _pack_short_templates(compressed.short_templates),
        _pack_long_templates(compressed.long_templates),
        _pack_addresses(compressed.addresses),
        _pack_time_seq(compressed.time_seq),
    )


# -- writing ---------------------------------------------------------------


def write_container(
    stream: BinaryIO,
    compressed: CompressedTrace,
    *,
    backend: str | Mapping[str, str] | None = None,
    level: int | None = None,
) -> ContainerWriteResult:
    """Write one v2 container; returns the per-section backend accounting.

    ``backend`` follows :func:`resolve_backend_spec` (``None`` = raw
    everywhere, a name, ``"auto"``, or a per-section mapping); ``level``
    is forwarded to backends that take one.  With ``auto``, each section
    is trial-compressed independently and the winner's tag — never the
    word "auto" — lands on disk.
    """
    _check_counts(compressed)
    spec = resolve_backend_spec(backend)
    registry = obs_current()
    with registry.timer(
        "stage.encode", "wall time packing and backend-coding sections"
    ).time():
        bodies = _section_bodies(compressed)
        # A plain backend name is an explicit request: a level it cannot
        # honor is an error.  Under auto / per-section mappings / the raw
        # default the level is advisory — it applies where a leveled codec
        # ends up and is ignored by the rest (raw).
        strict_level = isinstance(backend, str) and backend != AUTO
        sections: list[SectionInfo] = []
        payloads: list[bytes] = []
        for section, body in zip(SECTION_NAMES, bodies):
            name = spec[section]
            if name == AUTO:
                codec, payload = encode_auto(body, level=level)
            else:
                codec = get_backend(name)
                payload = codec.compress(
                    body, level if strict_level else codec.advisory_level(level)
                )
            sections.append(
                SectionInfo(
                    name=section,
                    backend=codec.name,
                    stored_bytes=len(payload),
                    raw_bytes=len(body),
                )
            )
            payloads.append(payload)
    registry.counter("codec.containers", "v2 containers written").inc()
    registry.counter("codec.bytes_raw", "section bytes before backend coding").inc(
        sum(info.raw_bytes for info in sections)
    )
    registry.counter("codec.bytes_stored", "section bytes after backend coding").inc(
        sum(info.stored_bytes for info in sections)
    )

    start = stream.tell()
    stream.write(_pack_header(compressed, VERSION_V2))
    for info in sections:
        stream.write(
            _SECTION_TAG.pack(
                get_backend(info.backend).tag, info.stored_bytes, info.raw_bytes
            )
        )
    for payload in payloads:
        stream.write(payload)
    return ContainerWriteResult(
        length=stream.tell() - start, sections=tuple(sections)
    )


def write_compressed(
    stream: BinaryIO,
    compressed: CompressedTrace,
    *,
    backend: str | Mapping[str, str] | None = None,
    level: int | None = None,
) -> int:
    """Write one container to ``stream``; returns the bytes written.

    The stream form lets callers pack several containers back to back —
    the segmented archive stores each segment as one container.  Section
    bodies are buffered in memory before writing (the v2 tags need each
    payload's length up front), so peak memory is one serialized
    segment, not one serialized archive.  Callers that need the
    per-section backend accounting (the archive writer) use
    :func:`write_container`.
    """
    return write_container(stream, compressed, backend=backend, level=level).length


def serialize_compressed(
    compressed: CompressedTrace,
    *,
    backend: str | Mapping[str, str] | None = None,
    level: int | None = None,
) -> bytes:
    """Serialize the four datasets into the container format (v2)."""
    stream = io.BytesIO()
    write_container(stream, compressed, backend=backend, level=level)
    return stream.getvalue()


def write_compressed_v1(stream: BinaryIO, compressed: CompressedTrace) -> int:
    """Write the legacy v1 (untagged, raw) container layout.

    Kept for the format-compatibility suite and spec conformance tests;
    new files should use :func:`write_compressed`, whose ``raw`` default
    stores the same section bytes behind 36 bytes of tags.
    """
    _check_counts(compressed)
    start = stream.tell()
    stream.write(_pack_header(compressed, VERSION_V1))
    for body in _section_bodies(compressed):
        stream.write(body)
    return stream.tell() - start


def serialize_compressed_v1(compressed: CompressedTrace) -> bytes:
    """:func:`write_compressed_v1` into fresh bytes."""
    stream = io.BytesIO()
    write_compressed_v1(stream, compressed)
    return stream.getvalue()


# -- reading ---------------------------------------------------------------


def deserialize_compressed(data: bytes) -> CompressedTrace:
    """Parse a container produced by :func:`serialize_compressed`."""
    stream = io.BytesIO(data)
    result = read_compressed(stream)
    trailing = stream.read(1)
    if trailing:
        raise CodecError("trailing bytes after container")
    return result


def _read_header(stream: BinaryIO) -> tuple[int, str, int, tuple[int, int, int, int]]:
    """Parse magic/version/name/counts; returns (version, name, packets, counts)."""
    header = _read_exact(stream, _HEADER.size, "header")
    (
        magic,
        version,
        name_length,
        original_packets,
        short_count,
        long_count,
        address_count,
        time_seq_count,
    ) = _HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(f"bad magic: {magic!r}")
    if version not in (VERSION_V1, VERSION_V2):
        raise CodecError(f"unsupported version: {version}")
    name = _read_exact(stream, name_length, "name").decode("utf-8")
    return (
        version,
        name,
        original_packets,
        (short_count, long_count, address_count, time_seq_count),
    )


def _section_parsers(counts: tuple[int, int, int, int]):
    """The four section-body parsers bound to the header's counts."""
    short_count, long_count, address_count, time_seq_count = counts
    return (
        lambda s: _parse_short_templates(s, short_count),
        lambda s: _parse_long_templates(s, long_count),
        lambda s: _parse_addresses(s, address_count),
        lambda s: _parse_time_seq(s, time_seq_count),
    )


def _read_section_tags(stream: BinaryIO) -> list[tuple[int, int, int]]:
    tags = []
    for section in SECTION_NAMES:
        tags.append(
            _SECTION_TAG.unpack(
                _read_exact(stream, SECTION_TAG_BYTES, f"{section} section tag")
            )
        )
    return tags


def _decode_section(
    stream: BinaryIO, section: str, tag: tuple[int, int, int]
) -> io.BytesIO:
    """Read + backend-decode one tagged section into a parseable stream."""
    backend_tag, stored_length, raw_length = tag
    codec = backend_for_tag(backend_tag)
    payload = _read_exact(stream, stored_length, f"{section} section payload")
    raw = codec.decompress(payload, max_size=raw_length)
    if len(raw) != raw_length:
        raise CodecError(
            f"{section} section decoded to {len(raw)} bytes, "
            f"tag promised {raw_length}"
        )
    return io.BytesIO(raw)


def _check_consumed(section_stream: io.BytesIO, section: str) -> None:
    if section_stream.read(1):
        raise CodecError(f"trailing bytes inside {section} section")


def read_compressed(stream: BinaryIO) -> CompressedTrace:
    """Parse one container starting at the stream's current position.

    Unlike :func:`deserialize_compressed` this does not require the
    container to exhaust the stream, so segment-granular readers (the
    ``.fctca`` archive) can decode one segment out of many in place.
    Both container generations decode transparently: v1 sections are
    parsed in place, v2 sections are routed through the backend each
    tag names.
    """
    version, name, original_packets, counts = _read_header(stream)
    parsers = _section_parsers(counts)

    if version == VERSION_V1:
        parsed = [parser(stream) for parser in parsers]
    else:
        tags = _read_section_tags(stream)
        parsed = []
        for section, tag, parser in zip(SECTION_NAMES, tags, parsers):
            section_stream = _decode_section(stream, section, tag)
            parsed.append(parser(section_stream))
            _check_consumed(section_stream, section)
    short_templates, long_templates, addresses, time_seq = parsed

    result = CompressedTrace(
        short_templates=short_templates,
        long_templates=long_templates,
        addresses=addresses,
        time_seq=time_seq,
        name=name,
        original_packet_count=original_packets,
    )
    try:
        result.validate()
    except ValueError as exc:
        raise CodecError(f"inconsistent container: {exc}") from exc
    return result


# -- inspection ------------------------------------------------------------


@dataclass(frozen=True)
class ContainerInfo:
    """A container's framing, read without decoding section payloads.

    ``format_version`` is the generation (1 or 2), not the raw version
    byte; ``sections`` reports, per section, the backend that stored it
    and the stored vs. raw byte counts — what ``repro-trace inspect``
    renders as per-section shares.
    """

    format_version: int
    name: str
    total_bytes: int
    sections: tuple[SectionInfo, ...]


def container_info(data: bytes) -> ContainerInfo:
    """Describe a serialized container's sections and backends.

    For v2 this reads only the header and section tags (payloads are
    checked for presence but never decoded); v1 sections carry no
    framing, so their extents are found by parsing the section bodies.
    Truncated input raises :class:`CodecError` rather than returning
    framing the file cannot actually hold.
    """
    stream = io.BytesIO(data)
    version, name, _packets, counts = _read_header(stream)
    sections: list[SectionInfo] = []
    if version == VERSION_V1:
        for section, parser in zip(SECTION_NAMES, _section_parsers(counts)):
            start = stream.tell()
            parser(stream)
            size = stream.tell() - start
            sections.append(
                SectionInfo(
                    name=section, backend="raw", stored_bytes=size, raw_bytes=size
                )
            )
    else:
        for section, tag in zip(SECTION_NAMES, _read_section_tags(stream)):
            backend_tag, stored_length, raw_length = tag
            sections.append(
                SectionInfo(
                    name=section,
                    backend=backend_for_tag(backend_tag).name,
                    stored_bytes=stored_length,
                    raw_bytes=raw_length,
                )
            )
            if stream.seek(stored_length, io.SEEK_CUR) > len(data):
                raise CodecError(
                    f"truncated input while reading {section} section payload"
                )
    return ContainerInfo(
        format_version=1 if version == VERSION_V1 else 2,
        name=name,
        total_bytes=len(data),
        sections=tuple(sections),
    )


def dataset_sizes(
    compressed: CompressedTrace, format_version: int = 2
) -> dict[str, int]:
    """Per-dataset *raw* serialized sizes in bytes (evaluation tables).

    These are the pre-backend section encodings — the paper's storage
    budget.  ``header`` includes the section-tag framing of the given
    container generation (36 bytes for v2, none for v1), so ``total``
    equals the serialized length for the ``raw`` backend at that
    generation; a container written with an entropy-coding backend
    stores fewer bytes (see :func:`container_info` for stored sizes).
    """
    short_bytes = sum(1 + t.n for t in compressed.short_templates)
    long_bytes = sum(2 + t.n * LONG_PACKET_BYTES for t in compressed.long_templates)
    address_bytes = 4 * len(compressed.addresses)
    time_seq_bytes = TIME_SEQ_RECORD_BYTES * len(compressed.time_seq)
    name_bytes = len(compressed.name.encode("utf-8")[:_MAX_U16])
    header_bytes = _HEADER.size + name_bytes
    if format_version >= 2:
        header_bytes += len(SECTION_NAMES) * SECTION_TAG_BYTES
    return {
        "header": header_bytes,
        "short_flows_template": short_bytes,
        "long_flows_template": long_bytes,
        "address": address_bytes,
        "time_seq": time_seq_bytes,
        "total": header_bytes + short_bytes + long_bytes
        + address_bytes + time_seq_bytes,
    }
