"""Binary serialization of the four compressed datasets.

The on-disk container implements the paper's storage budget as closely as
a practical format allows:

* ``time-seq`` record — **10 bytes per flow**: timestamp (u32, 100 µs
  units), dataset id + template index (u16: top bit = long flag), address
  index (u16), RTT (u16, 100 µs units, saturating at ~6.5 s).  The paper
  argues 8 bytes suffice (eq. 7); we spend 2 more for index headroom and
  note the deviation in DESIGN.md.
* ``short-flows-template`` — u8 length + one byte per ``f(p_i)`` value.
* ``long-flows-template`` — u16 length + per packet one value byte and a
  u16 inter-packet gap in 100 µs units (saturating) — 3 bytes per long
  packet.
* ``address`` — four bytes per unique destination.

All integers are big-endian.  The container self-describes with a magic,
a version byte and section counts, and the decoder validates referential
integrity before returning.

Capacity limits imposed by the compact layout (checked, raising
:class:`~repro.core.errors.CodecError`): at most 32768 templates per
dataset and 65536 unique addresses; inter-packet gaps and RTTs saturate
at 6.5535 s; timestamps cover ~119 hours at 100 µs resolution.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError

MAGIC = b"FCTC"
VERSION = 2

TIMESTAMP_UNITS_PER_SECOND = 10_000  # 100 µs resolution
RTT_UNITS_PER_SECOND = 10_000
GAP_UNITS_PER_SECOND = 10_000

MAX_TEMPLATE_INDEX = 0x7FFF
MAX_ADDRESS_INDEX = 0xFFFF

_MAX_U16 = 0xFFFF
_MAX_U32 = 0xFFFFFFFF

_HEADER = struct.Struct(">4sBxH I IIII")
_TIME_SEQ = struct.Struct(">IHHH")
TIME_SEQ_RECORD_BYTES = _TIME_SEQ.size  # 10
LONG_PACKET_BYTES = 3  # 1 value byte + u16 gap


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise CodecError(f"truncated input while reading {what}")
    return data


def quantize_timestamp(seconds: float) -> int:
    """Timestamp units as stored on disk (100 µs, saturating u32)."""
    return min(int(round(seconds * TIMESTAMP_UNITS_PER_SECOND)), _MAX_U32)


def quantize_rtt(seconds: float) -> int:
    """RTT units as stored on disk (100 µs, saturating u16)."""
    return min(int(round(seconds * RTT_UNITS_PER_SECOND)), _MAX_U16)


def quantize_gap(seconds: float) -> int:
    """Long-flow inter-packet gap units as stored on disk (100 µs, u16)."""
    return min(int(round(seconds * GAP_UNITS_PER_SECOND)), _MAX_U16)


def serialize_compressed(compressed: CompressedTrace) -> bytes:
    """Serialize the four datasets into the container format."""
    stream = io.BytesIO()
    write_compressed(stream, compressed)
    return stream.getvalue()


def write_compressed(stream: BinaryIO, compressed: CompressedTrace) -> int:
    """Write one container to ``stream``; returns the bytes written.

    The stream form lets callers pack several containers back to back —
    the segmented archive stores each segment as one container — without
    an intermediate copy per segment.
    """
    compressed.validate()
    if len(compressed.short_templates) > MAX_TEMPLATE_INDEX + 1:
        raise CodecError(
            f"too many short templates for codec: {len(compressed.short_templates)}"
        )
    if len(compressed.long_templates) > MAX_TEMPLATE_INDEX + 1:
        raise CodecError(
            f"too many long templates for codec: {len(compressed.long_templates)}"
        )
    if len(compressed.addresses) > MAX_ADDRESS_INDEX + 1:
        raise CodecError(
            f"too many addresses for codec: {len(compressed.addresses)}"
        )

    name_bytes = compressed.name.encode("utf-8")[:_MAX_U16]
    start = stream.tell()
    stream.write(
        _HEADER.pack(
            MAGIC,
            VERSION,
            len(name_bytes),
            min(compressed.original_packet_count, _MAX_U32),
            len(compressed.short_templates),
            len(compressed.long_templates),
            len(compressed.addresses),
            len(compressed.time_seq),
        )
    )
    stream.write(name_bytes)

    for template in compressed.short_templates:
        if template.n > 0xFF:
            raise CodecError(f"short template too long for codec: {template.n}")
        stream.write(bytes([template.n]))
        stream.write(bytes(template.values))

    for template in compressed.long_templates:
        if template.n > _MAX_U16:
            raise CodecError(f"long template too long for codec: {template.n}")
        stream.write(struct.pack(">H", template.n))
        stream.write(bytes(template.values))
        gap_units = [quantize_gap(gap) for gap in template.gaps]
        stream.write(struct.pack(f">{template.n}H", *gap_units))

    for address in compressed.addresses:
        stream.write(struct.pack(">I", address))

    for record in compressed.time_seq:
        timestamp_units = quantize_timestamp(record.timestamp)
        template_ref = record.template_index
        if template_ref > MAX_TEMPLATE_INDEX:
            raise CodecError(f"template index too large: {template_ref}")
        if record.dataset is DatasetId.LONG:
            template_ref |= 0x8000
        rtt_units = quantize_rtt(record.rtt)
        stream.write(
            _TIME_SEQ.pack(
                timestamp_units, template_ref, record.address_index, rtt_units
            )
        )

    return stream.tell() - start


def deserialize_compressed(data: bytes) -> CompressedTrace:
    """Parse a container produced by :func:`serialize_compressed`."""
    stream = io.BytesIO(data)
    result = read_compressed(stream)
    trailing = stream.read(1)
    if trailing:
        raise CodecError("trailing bytes after container")
    return result


def read_compressed(stream: BinaryIO) -> CompressedTrace:
    """Parse one container starting at the stream's current position.

    Unlike :func:`deserialize_compressed` this does not require the
    container to exhaust the stream, so segment-granular readers (the
    ``.fctca`` archive) can decode one segment out of many in place.
    """
    header = _read_exact(stream, _HEADER.size, "header")
    (
        magic,
        version,
        name_length,
        original_packets,
        short_count,
        long_count,
        address_count,
        time_seq_count,
    ) = _HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(f"bad magic: {magic!r}")
    if version != VERSION:
        raise CodecError(f"unsupported version: {version}")
    name = _read_exact(stream, name_length, "name").decode("utf-8")

    short_templates: list[ShortFlowTemplate] = []
    for _ in range(short_count):
        (n,) = _read_exact(stream, 1, "short template length")
        values = tuple(_read_exact(stream, n, "short template values"))
        try:
            short_templates.append(ShortFlowTemplate(values))
        except ValueError as exc:
            raise CodecError(f"invalid short template: {exc}") from exc

    long_templates: list[LongFlowTemplate] = []
    for _ in range(long_count):
        (n,) = struct.unpack(">H", _read_exact(stream, 2, "long template length"))
        values = tuple(_read_exact(stream, n, "long template values"))
        gap_units = struct.unpack(
            f">{n}H", _read_exact(stream, 2 * n, "long template gaps")
        )
        gaps = tuple(units / GAP_UNITS_PER_SECOND for units in gap_units)
        try:
            long_templates.append(LongFlowTemplate(values, gaps))
        except ValueError as exc:
            raise CodecError(f"invalid long template: {exc}") from exc

    addresses = AddressTable()
    for _ in range(address_count):
        (address,) = struct.unpack(">I", _read_exact(stream, 4, "address"))
        addresses.intern(address)
    if len(addresses) != address_count:
        raise CodecError("duplicate addresses in address dataset")

    time_seq: list[TimeSeqRecord] = []
    for _ in range(time_seq_count):
        record = _read_exact(stream, TIME_SEQ_RECORD_BYTES, "time-seq record")
        timestamp_units, template_ref, address_index, rtt_units = _TIME_SEQ.unpack(
            record
        )
        dataset = DatasetId.LONG if template_ref & 0x8000 else DatasetId.SHORT
        time_seq.append(
            TimeSeqRecord(
                timestamp=timestamp_units / TIMESTAMP_UNITS_PER_SECOND,
                dataset=dataset,
                template_index=template_ref & MAX_TEMPLATE_INDEX,
                address_index=address_index,
                rtt=rtt_units / RTT_UNITS_PER_SECOND,
            )
        )

    result = CompressedTrace(
        short_templates=short_templates,
        long_templates=long_templates,
        addresses=addresses,
        time_seq=time_seq,
        name=name,
        original_packet_count=original_packets,
    )
    try:
        result.validate()
    except ValueError as exc:
        raise CodecError(f"inconsistent container: {exc}") from exc
    return result


def dataset_sizes(compressed: CompressedTrace) -> dict[str, int]:
    """Per-dataset serialized sizes in bytes (for the evaluation tables)."""
    short_bytes = sum(1 + t.n for t in compressed.short_templates)
    long_bytes = sum(2 + t.n * LONG_PACKET_BYTES for t in compressed.long_templates)
    address_bytes = 4 * len(compressed.addresses)
    time_seq_bytes = TIME_SEQ_RECORD_BYTES * len(compressed.time_seq)
    name_bytes = len(compressed.name.encode("utf-8")[:_MAX_U16])
    return {
        "header": _HEADER.size + name_bytes,
        "short_flows_template": short_bytes,
        "long_flows_template": long_bytes,
        "address": address_bytes,
        "time_seq": time_seq_bytes,
        "total": _HEADER.size + name_bytes + short_bytes + long_bytes
        + address_bytes + time_seq_bytes,
    }
