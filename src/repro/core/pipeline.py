"""End-to-end compression pipeline and ratio accounting.

Ties the compressor, codec and decompressor together and produces the
size/ratio report used throughout the evaluation (Figure 1 compares
compressed file sizes against the original TSH file size).

.. deprecated:: 1.1
    The one-shot entry points of this module (:func:`compress_to_bytes`,
    :func:`compress_stream_to_bytes`, :func:`decompress_from_bytes`,
    :func:`roundtrip`) are superseded by the :mod:`repro.api` façade —
    ``repro.open(path)`` sessions and :func:`repro.api.roundtrip`.  They
    remain as thin shims for one release: each emits a
    :class:`DeprecationWarning` and produces byte-identical output to
    the façade (pinned by ``tests/api/test_shim_compat.py``).  The
    report types (:class:`CompressionReport`, :func:`report_for`,
    :func:`report_for_stream`) are *not* deprecated — the façade returns
    them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.codec import dataset_sizes, deserialize_compressed, serialize_compressed
from repro.core.errors import warn_deprecated
from repro.core.compressor import CompressorConfig, compress_trace
from repro.core.datasets import CompressedTrace
from repro.core.decompressor import DecompressorConfig, decompress_trace
from repro.core.streaming import compress_stream
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace
from repro.trace.tsh import tsh_file_size


@dataclass(frozen=True)
class CompressionReport:
    """Sizes and derived ratios for one compression run."""

    original_bytes: int
    compressed_bytes: int
    packet_count: int
    flow_count: int
    short_templates: int
    long_templates: int
    dataset_bytes: dict[str, int]

    @property
    def ratio(self) -> float:
        """compressed/original — the paper's 'compression ratio' (~0.03)."""
        if self.original_bytes == 0:
            return 0.0
        return self.compressed_bytes / self.original_bytes

    @property
    def ratio_percent(self) -> float:
        """The ratio as a percentage (paper: 'around 3%')."""
        return 100.0 * self.ratio

    def summary_lines(self) -> list[str]:
        """Human-readable report."""
        lines = [
            f"original size   : {self.original_bytes} B",
            f"compressed size : {self.compressed_bytes} B",
            f"ratio           : {self.ratio_percent:.2f}% (paper: ~3%)",
            f"packets         : {self.packet_count}",
            f"flows           : {self.flow_count}",
            f"short templates : {self.short_templates}",
            f"long templates  : {self.long_templates}",
        ]
        for dataset, size in self.dataset_bytes.items():
            if dataset != "total":
                lines.append(f"  {dataset:<22}: {size} B")
        return lines


def compress_to_bytes(
    trace: Trace,
    config: CompressorConfig | None = None,
    *,
    backend: str | None = None,
    level: int | None = None,
) -> tuple[bytes, CompressedTrace]:
    """Compress a trace and serialize the result.

    .. deprecated:: 1.1  Use a ``repro.open(path).compress(dest)``
       session or the engine primitives directly.

    ``backend``/``level`` select the section backend codec for the
    container (``None`` = ``raw``, the paper's format; ``"auto"`` trials
    each registered backend per section) — see
    :mod:`repro.core.backends`.
    """
    warn_deprecated("compress_to_bytes", "repro.open(...).compress(...)")
    compressed = compress_trace(trace, config)
    return serialize_compressed(compressed, backend=backend, level=level), compressed


def compress_stream_to_bytes(
    packets: Iterable[PacketRecord],
    config: CompressorConfig | None = None,
    name: str = "compressed",
    *,
    backend: str | None = None,
    level: int | None = None,
) -> tuple[bytes, CompressedTrace]:
    """Compress a packet iterable and serialize, without materializing it.

    .. deprecated:: 1.1  Use a ``repro.open(path).compress(dest)``
       session (stream mode) or :func:`repro.core.streaming.compress_stream`.

    Byte-identical to :func:`compress_to_bytes` on the same packet
    sequence, name and backend — both paths run the same compressor and
    the same serializer.
    """
    warn_deprecated(
        "compress_stream_to_bytes", "repro.open(...).compress(...) stream mode"
    )
    compressed = compress_stream(packets, config, name=name)
    return serialize_compressed(compressed, backend=backend, level=level), compressed


def decompress_from_bytes(
    data: bytes, config: DecompressorConfig | None = None
) -> Trace:
    """Deserialize and decompress a container into a synthetic trace.

    .. deprecated:: 1.1  Use ``repro.open(path).export(dest)`` /
       ``.packets()`` or the engine primitives directly.
    """
    warn_deprecated("decompress_from_bytes", "repro.open(...).export/.packets")
    return decompress_trace(deserialize_compressed(data), config)


def report_for(trace: Trace, compressed: CompressedTrace, data: bytes) -> CompressionReport:
    """Build the size report for a finished compression."""
    return CompressionReport(
        original_bytes=trace.stored_size_bytes(),
        compressed_bytes=len(data),
        packet_count=len(trace),
        flow_count=compressed.flow_count(),
        short_templates=len(compressed.short_templates),
        long_templates=len(compressed.long_templates),
        dataset_bytes=dataset_sizes(compressed),
    )


def report_for_stream(compressed: CompressedTrace, data: bytes) -> CompressionReport:
    """The size report when no in-memory :class:`Trace` exists.

    Streaming and parallel compression never hold the input trace, but
    every sizing input survives in the datasets: the original TSH size is
    44 bytes per packet and ``original_packet_count`` counts every packet
    routed into a flow.  Matches :func:`report_for` field for field.
    """
    return CompressionReport(
        original_bytes=tsh_file_size(compressed.original_packet_count),
        compressed_bytes=len(data),
        packet_count=compressed.original_packet_count,
        flow_count=compressed.flow_count(),
        short_templates=len(compressed.short_templates),
        long_templates=len(compressed.long_templates),
        dataset_bytes=dataset_sizes(compressed),
    )


def roundtrip(
    trace: Trace,
    compressor_config: CompressorConfig | None = None,
    decompressor_config: DecompressorConfig | None = None,
) -> tuple[Trace, CompressionReport]:
    """Compress then decompress a trace; returns (trace', report).

    .. deprecated:: 1.1  Use :func:`repro.api.roundtrip`, which takes
       one layered :class:`repro.api.Options` instead of two configs.

    The output trace is *statistically* similar to the input (that is the
    paper's claim, validated in section 6), not byte-identical.
    """
    warn_deprecated("roundtrip", "repro.api.roundtrip")
    # Delegate to the canonical façade implementation (same primitives,
    # same output) — import deferred because repro.api imports us.
    from repro.api.options import Options
    from repro.api.ops import roundtrip as api_roundtrip

    return api_roundtrip(
        trace,
        Options(
            compressor=compressor_config or CompressorConfig(),
            decompressor=decompressor_config or DecompressorConfig(),
        ),
    )
