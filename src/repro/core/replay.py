"""Streaming decompression: replay the datasets in bounded memory.

:func:`~repro.core.decompressor.decompress_trace` materializes every
packet of every flow and sorts the whole list — the exact batch
bottleneck the streaming *compressor* removed from the write side.  This
module removes it from the read side:

:class:`StreamingDecompressor`
    Walks ``time-seq`` in timestamp order, keeps open only the flows
    whose packets can still interleave with the merge frontier, and
    emits packets through a k-way heap merge.  Peak memory is bounded by
    the concurrent-flow fan-out (plus the compressed datasets
    themselves), not the trace length — and the packet sequence is
    **byte-identical** to the batch path's.

:func:`merge_packet_stream`
    The merge engine itself, shared with the archive reader's
    segment-at-a-time decode and the query engine's filtered packet
    stream.  It consumes a :class:`SpecFeed` — a peekable source of
    :class:`~repro.core.decompressor.FlowSpec` with a cheap lower bound
    on the next flow start — so callers can defer expensive work (like
    decoding the next archive segment) until the frontier provably
    needs it.

Why the two paths agree byte for byte: the batch sort key is
``(timestamp, src_ip, src_port, dst_ip, seq)`` and Python's sort is
stable, so ties fall back to (flow position in the sorted time-seq,
packet position in the flow).  The heap key here is exactly that five
tuple extended with ``FlowSpec.order + (packet position,)`` — a total
order equal to the batch one.  A heap packet may be emitted once no
unadmitted flow can start at or before it, which holds because per-flow
packet timestamps are nondecreasing and ``flow_specs`` yields specs in
nondecreasing start order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Protocol

from repro.core.datasets import CompressedTrace
from repro.core.decompressor import (
    DecompressorConfig,
    FlowSpec,
    flow_specs,
    merge_sort_key,
    synthesize_flow,
)
from repro.net.packet import PacketRecord


@dataclass
class ReplayStats:
    """How much work one streaming replay did — and how bounded it stayed."""

    flows_replayed: int = 0
    packets_emitted: int = 0
    peak_open_flows: int = 0

    def reset(self) -> None:
        self.flows_replayed = 0
        self.packets_emitted = 0
        self.peak_open_flows = 0


class SpecFeed(Protocol):
    """A peekable stream of :class:`FlowSpec` in nondecreasing start order.

    ``next_start_bound`` must return a lower bound on every future
    spec's start (or ``None`` when exhausted) *without* doing expensive
    work; ``pop`` returns the next spec (or ``None`` when exhausted) and
    may do the expensive part — e.g. decode the next archive segment.
    Popping a spec whose true start exceeds the bound is safe: admitting
    a flow early never reorders the merge, it only widens the heap.
    """

    def next_start_bound(self) -> float | None: ...

    def pop(self) -> FlowSpec | None: ...


class IteratorSpecFeed:
    """Adapt a plain spec iterator (one decoded container) to the feed."""

    def __init__(self, specs: Iterator[FlowSpec]) -> None:
        self._specs = specs
        self._buffered: FlowSpec | None = None
        self._done = False

    def next_start_bound(self) -> float | None:
        if self._buffered is None and not self._done:
            self._buffered = next(self._specs, None)
            self._done = self._buffered is None
        return None if self._buffered is None else self._buffered.start

    def pop(self) -> FlowSpec | None:
        if self.next_start_bound() is None:
            return None
        spec, self._buffered = self._buffered, None
        return spec


def merge_packet_stream(
    feed: SpecFeed,
    config: DecompressorConfig,
    stats: ReplayStats | None = None,
) -> Iterator[PacketRecord]:
    """K-way heap merge of lazily synthesized flows, in global order.

    The loop alternates two moves: *admit* every pending flow that could
    still start at or before the current heap minimum (ties must be
    admitted — the key tiebreak decides them, not arrival), then *emit*
    the minimum and advance its flow's generator.  Open flows — the heap
    size — are exactly the flows whose packets can still interleave with
    the frontier; everything already drained is garbage.
    """
    stats = stats if stats is not None else ReplayStats()
    # Heap items: (key, packet, order, generator); keys are unique (they
    # end in order + packet position), so packets are never compared.
    heap: list[tuple[tuple, PacketRecord, tuple[int, ...], Iterator[PacketRecord]]] = []
    while True:
        while True:
            bound = feed.next_start_bound()
            if bound is None:
                break
            if heap and heap[0][0][0] < bound:
                break  # frontier is strictly earlier: safe to emit first
            spec = feed.pop()
            if spec is None:
                break
            source = synthesize_flow(spec, config)
            first = next(source, None)
            if first is None:  # templates are never empty, but stay safe
                continue
            key = (*merge_sort_key(first), *spec.order, 0)
            heapq.heappush(heap, (key, first, spec.order, source))
            stats.flows_replayed += 1
            if len(heap) > stats.peak_open_flows:
                stats.peak_open_flows = len(heap)
        if not heap:
            return
        key, packet, order, source = heapq.heappop(heap)
        yield packet
        stats.packets_emitted += 1
        following = next(source, None)
        if following is not None:
            next_key = (*merge_sort_key(following), *order, key[-1] + 1)
            heapq.heappush(heap, (next_key, following, order, source))


class StreamingDecompressor:
    """Bounded-memory decompression of one :class:`CompressedTrace`.

    Iterate :meth:`packets` (or the instance itself) to receive the
    synthetic trace one packet at a time, in exactly the order — and
    with exactly the content — :func:`decompress_trace` would produce.
    ``stats`` describes the last (or in-progress) replay; in particular
    ``peak_open_flows`` is the working-set bound the benchmarks assert
    on.

    The compressed datasets themselves (templates, addresses, time-seq)
    stay in memory — they are the *compressed* form, a few percent of
    the trace — but no packet list is ever materialized.
    """

    def __init__(
        self,
        compressed: CompressedTrace,
        config: DecompressorConfig | None = None,
    ) -> None:
        compressed.validate()
        self._compressed = compressed
        self.config = config or DecompressorConfig()
        self.stats = ReplayStats()

    @property
    def name(self) -> str:
        """The decompressed trace's name (mirrors the batch path)."""
        return f"{self._compressed.name}-decompressed"

    def packets(self) -> Iterator[PacketRecord]:
        """A fresh packet stream; each call restarts stats and replay."""
        self.stats.reset()
        feed = IteratorSpecFeed(flow_specs(self._compressed, self.config))
        return merge_packet_stream(feed, self.config, self.stats)

    def __iter__(self) -> Iterator[PacketRecord]:
        return self.packets()


def iter_decompressed(
    compressed: CompressedTrace, config: DecompressorConfig | None = None
) -> Iterator[PacketRecord]:
    """One-shot convenience: stream-decompress a container's packets."""
    return StreamingDecompressor(compressed, config).packets()
