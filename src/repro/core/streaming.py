"""Streaming and parallel front-ends for the flow-clustering compressor.

The paper's algorithm is online — packets stream in, flows close on
FIN/RST or idle timeout, templates grow incrementally — but the original
entry points (:func:`~repro.core.compressor.compress_trace`,
:func:`~repro.core.pipeline.compress_to_bytes`) materialize the whole
trace first.  This module keeps the algorithm and removes the
materialization:

:class:`StreamingCompressor`
    Accepts packets incrementally (single packets, chunks, or any
    iterable) and never holds more state than the active-flow list plus
    the compressed datasets.  Byte-for-byte identical output to the
    batch path: both run the same :class:`FlowClusterCompressor`.

:func:`compress_tsh_file`
    Chunked-read a ``.tsh`` file through the streaming compressor —
    peak memory is bounded by the active-flow population and the
    compressed output (a few percent of the trace), not the trace.

:func:`compress_tsh_file_parallel`
    Shard a trace by flow hash across ``multiprocessing`` workers, each
    compressing its shard with a common time base, then merge the
    per-shard datasets with the same equation-4 similarity search the
    compressor uses — so cross-shard duplicate templates still collapse.
    Flows are never split (a flow's packets all hash to one shard), so
    the merged output is a valid compression of the full trace; template
    *numbering* differs from the batch path, which is why only
    ``--stream`` promises byte-identical files.
"""

from __future__ import annotations

import logging
import multiprocessing
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable
from zlib import crc32

from repro.core.columnar import (
    ENGINE_COLUMNAR,
    ENGINE_SCALAR,
    ColumnarFlowCompressor,
    resolve_engine,
)
from repro.core.compressor import (
    CompressorConfig,
    CompressorStats,
    FlowClusterCompressor,
    TemplateMatcher,
)
from repro.core.datasets import CompressedTrace, DatasetId, TimeSeqRecord
from repro.net.columns import PacketColumns, columns_from_records
from repro.net.flowkey import flow_shard_columns
from repro.net.packet import PacketRecord
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    current as obs_current,
    scoped as obs_scoped,
)
from repro.trace.reader import (
    DEFAULT_CHUNK_PACKETS,
    first_tsh_timestamp,
    iter_tsh_chunks,
    iter_tsh_records,
    read_columns,
)
from repro.trace.tsh import decode_record

_log = logging.getLogger(__name__)


def _publish_compressor_stats(registry: MetricsRegistry, stats: CompressorStats) -> None:
    """Fold a finished engine's per-packet counters into the registry.

    The engines bump plain ints on the hot path (see
    :class:`~repro.core.compressor.CompressorStats`); this one-shot fold
    at finish time is what makes them visible to reports and exporters.
    Zero increments still register the counters, so a run's metric set
    is stable regardless of the trace content.
    """
    stats.publish(registry)


@dataclass
class StreamingStats:
    """Feed-side counters; compression counters live in ``stats``."""

    packets_fed: int = 0
    chunks_fed: int = 0
    peak_active_flows: int = 0


class StreamingCompressor:
    """Incremental compression facade over :class:`FlowClusterCompressor`.

    Feed packets with :meth:`add_packet` or whole iterables with
    :meth:`feed`, then call :meth:`finish`.  Output is byte-identical to
    :func:`~repro.core.compressor.compress_trace` on the same packet
    sequence regardless of how the feed is chunked.
    """

    def __init__(
        self,
        config: CompressorConfig | None = None,
        name: str = "compressed",
        base_time: float | None = None,
        engine: str | None = None,
    ) -> None:
        # ``None`` keeps the legacy scalar engine; "auto" resolves to
        # columnar when numpy is importable.  Both engines produce
        # byte-identical output (the differential harness pins this), so
        # the choice is purely a throughput knob.
        self.engine = ENGINE_SCALAR if engine is None else resolve_engine(engine)
        self._engine_cls = (
            ColumnarFlowCompressor
            if self.engine == ENGINE_COLUMNAR
            else FlowClusterCompressor
        )
        self._name = name
        self._engine = self._engine_cls(config, name=name, base_time=base_time)
        self.streaming_stats = StreamingStats()
        self._published = False
        self._segments_flushed = 0
        obs_current().counter(
            f"stream.engine.{self.engine}",
            "streaming compressors built on this engine",
        ).inc()

    @property
    def config(self) -> CompressorConfig:
        return self._engine.config

    @property
    def stats(self) -> CompressorStats:
        return self._engine.stats

    @property
    def output(self) -> CompressedTrace:
        """The datasets built so far (complete only after :meth:`finish`)."""
        return self._engine.output

    @property
    def active_flows(self) -> int:
        """Flows currently open — the streaming working-set size."""
        return self._engine.active_flows

    @property
    def base_time(self) -> float | None:
        """The engine's time anchor (resolved from the first packet when
        not given explicitly); ``None`` until a packet has been fed."""
        return self._engine._base_time

    @property
    def segments_flushed(self) -> int:
        """How many sealed segments :meth:`flush_segment` has emitted."""
        return self._segments_flushed

    def add_packet(self, packet: PacketRecord) -> None:
        """Process one packet (timestamp order across all feeds)."""
        self._engine.add_packet(packet)
        stats = self.streaming_stats
        stats.packets_fed += 1
        if self._engine.active_flows > stats.peak_active_flows:
            stats.peak_active_flows = self._engine.active_flows

    def feed(self, packets: Iterable[PacketRecord] | PacketColumns) -> int:
        """Process one chunk of packets; returns how many were fed.

        Accepts a :class:`~repro.net.columns.PacketColumns` chunk as
        well as any record iterable — columnar chunks route through
        :meth:`feed_columns`.
        """
        if isinstance(packets, PacketColumns):
            return self.feed_columns(packets)
        before = self.streaming_stats.packets_fed
        for packet in packets:
            self.add_packet(packet)
        self.streaming_stats.chunks_fed += 1
        return self.streaming_stats.packets_fed - before

    def feed_columns(self, columns: PacketColumns) -> int:
        """Process one columnar chunk; returns how many rows were fed.

        On the columnar engine the chunk is processed vectorized; on the
        scalar engine it is materialized into records first, so either
        engine accepts either input shape.
        """
        stats = self.streaming_stats
        if self.engine != ENGINE_COLUMNAR:
            return self.feed(columns.to_records())
        count = self._engine.feed_columns(columns)
        stats.packets_fed += count
        stats.chunks_fed += 1
        if self._engine.peak_active_flows > stats.peak_active_flows:
            stats.peak_active_flows = self._engine.peak_active_flows
        return count

    def finish(self) -> CompressedTrace:
        """Flush open flows and return the completed datasets.

        The first call also publishes the run's counters to the active
        :mod:`repro.obs` registry (idempotent — ``finish`` may be called
        again, e.g. via :meth:`to_bytes`).
        """
        output = self._engine.finish()
        if not self._published:
            self._published = True
            registry = obs_current()
            _publish_compressor_stats(registry, self._engine.stats)
            feed = self.streaming_stats
            registry.counter("stream.chunks", "chunks fed to the compressor").inc(
                feed.chunks_fed
            )
            registry.gauge(
                "stream.active_flows.peak",
                "high-water mark of concurrently open flows",
            ).set_max(feed.peak_active_flows)
        return output

    def flush_segment(self, name: str | None = None) -> CompressedTrace | None:
        """Seal everything fed since the last flush; keep accepting feeds.

        The live-capture primitive: closes every open flow, returns the
        finished :class:`~repro.core.datasets.CompressedTrace` (``None``
        when nothing was fed since the last flush), and swaps in a fresh
        engine anchored to the *same* time base — so a long-running
        feed can rotate sealed segments into an archive without ever
        calling :meth:`finish`.  Output is identical to compressing each
        inter-flush packet run with its own compressor on a shared
        ``base_time``, which is exactly how the archive writer has
        always built segments.  ``name`` labels the sealed segment
        (default: the compressor's name plus a running ordinal).
        """
        outgoing = self._engine
        output = outgoing.finish()
        sealed = bool(output.time_seq)
        if sealed:
            if name is not None:
                output.name = name
            self._segments_flushed += 1
            _publish_compressor_stats(obs_current(), outgoing.stats)
        # A fresh engine rather than an in-place reset — even for an
        # empty flush, because ``finish`` is terminal on an engine.
        # Segment equality with the batch path depends on starting from
        # pristine matcher/dataset state, and the constructor is the one
        # place that state is defined.  The carried base_time keeps the
        # segment clocks comparable — the property the archive time
        # index relies on.
        self._engine = self._engine_cls(
            outgoing.config,
            name=f"{self._name}+{self._segments_flushed}",
            base_time=outgoing._base_time,
        )
        return output if sealed else None

    def to_bytes(
        self, *, backend: str | None = None, level: int | None = None
    ) -> bytes:
        """Finish (idempotently) and serialize through ``backend``.

        The streaming shortcut for "compress this feed into a file":
        equivalent to ``serialize_compressed(self.finish(), ...)`` —
        backend selection happens at serialization time, so one finished
        compressor can be written with several backends.
        """
        from repro.core.codec import serialize_compressed

        return serialize_compressed(self.finish(), backend=backend, level=level)


def compress_stream(
    packets: Iterable[PacketRecord],
    config: CompressorConfig | None = None,
    name: str = "compressed",
    engine: str | None = None,
) -> CompressedTrace:
    """Compress any packet iterable without materializing it.

    With the columnar engine the iterable is transposed into
    :class:`~repro.net.columns.PacketColumns` chunks on the fly — memory
    stays bounded by one chunk, and output bytes stay identical.
    """
    compressor = StreamingCompressor(config, name=name, engine=engine)
    if compressor.engine == ENGINE_COLUMNAR:
        iterator = iter(packets)
        while True:
            chunk = list(islice(iterator, DEFAULT_CHUNK_PACKETS))
            if not chunk:
                break
            compressor.feed_columns(columns_from_records(chunk))
    else:
        compressor.feed(packets)
    return compressor.finish()


def compress_tsh_file(
    path: str | Path,
    config: CompressorConfig | None = None,
    *,
    chunk_size: int = DEFAULT_CHUNK_PACKETS,
    name: str | None = None,
    engine: str | None = None,
) -> StreamingCompressor:
    """Stream-compress a ``.tsh`` file in bounded memory.

    Returns the finished :class:`StreamingCompressor` so callers can read
    ``output`` alongside ``stats`` / ``streaming_stats``.  The columnar
    engine reads the file through the vectorized block decoder
    (:func:`~repro.trace.reader.read_columns`) — same chunk boundaries,
    same bytes out, several times the throughput with numpy.
    """
    compressor = StreamingCompressor(
        config, name=name or Path(path).stem, engine=engine
    )
    registry = obs_current()
    # Decode happens lazily inside the chunk generator, so timing the
    # ``next`` call captures read+decode and the feed call captures
    # clustering — two timer observations per chunk, nothing per packet.
    decode_timer = registry.timer(
        "stage.decode", "wall time reading and decoding TSH chunks"
    )
    cluster_timer = registry.timer(
        "stage.cluster", "wall time clustering decoded chunks"
    )
    columnar = compressor.engine == ENGINE_COLUMNAR
    chunks = (
        read_columns(path, chunk_size)
        if columnar
        else iter_tsh_chunks(path, chunk_size)
    )
    while True:
        with decode_timer.time():
            chunk = next(chunks, None)
        if chunk is None:
            break
        with cluster_timer.time():
            if columnar:
                compressor.feed_columns(chunk)
            else:
                compressor.feed(chunk)
    compressor.finish()
    return compressor


# -- parallel sharding ----------------------------------------------------


@dataclass(frozen=True)
class _ShardTask:
    """One worker's slice of the input: path + hash residue class."""

    path: str
    shard: int
    workers: int
    config: CompressorConfig | None
    base_time: float | None
    chunk_size: int = DEFAULT_CHUNK_PACKETS
    engine: str = ENGINE_SCALAR


def record_shard(record: bytes, workers: int) -> int:
    """Shard index of a raw 44-byte TSH record, without decoding it.

    Reads the 5-tuple straight out of the record (protocol at byte 17,
    addresses at 20, ports at 28), orders the two (ip, port) endpoints —
    the big-endian byte comparison matches
    :meth:`~repro.net.flowkey.FiveTuple.canonical`'s numeric one — and
    CRC-hashes at C speed, so both directions of a conversation land in
    the same shard and the filter stays far cheaper than a decode.
    Sharding only needs this internal consistency; the value is not
    meant to match :func:`~repro.net.flowkey.flow_hash`.
    """
    forward = record[20:24] + record[28:30]  # src ip + src port
    backward = record[24:28] + record[30:32]  # dst ip + dst port
    if forward <= backward:
        key = forward + backward
    else:
        key = backward + forward
    return crc32(key + record[17:18]) % workers


def _compress_shard(task: _ShardTask) -> tuple[CompressedTrace, MetricsSnapshot]:
    """Worker body: compress the packets whose flow hashes to ``shard``.

    Each worker reads the file itself (no packet pickling between
    processes), shard-tests the raw record bytes, and decodes only its
    own residue class — decode cost stays ~1/workers per process.
    ``base_time`` anchors every shard to the trace start — shard-local
    first packets would otherwise skew the time-seq clocks.

    Metrics are recorded into a *fresh* scoped registry, never the
    process default: a forked worker inherits the parent's default
    registry state, and snapshotting that would ship the parent's
    pre-fork counts back ``workers`` times over.  The shard's own
    snapshot rides back with the output for the parent to merge.
    """
    workers = task.workers
    shard = task.shard
    registry = MetricsRegistry()
    with obs_scoped(registry):
        if task.engine == ENGINE_COLUMNAR:
            engine = ColumnarFlowCompressor(
                task.config, name=f"shard-{task.shard}", base_time=task.base_time
            )
            for columns in read_columns(task.path, task.chunk_size):
                # flow_shard_columns matches record_shard row for row, so a
                # columnar worker selects exactly the records a
                # record-filtering worker would decode.
                shards = flow_shard_columns(columns, workers)
                mine = [row for row, value in enumerate(shards) if value == shard]
                if mine:
                    engine.feed_columns(columns.select(mine))
            output = engine.finish()
        else:
            engine = FlowClusterCompressor(
                task.config, name=f"shard-{task.shard}", base_time=task.base_time
            )
            for record in iter_tsh_records(task.path, task.chunk_size):
                if record_shard(record, workers) == shard:
                    engine.add_packet(decode_record(record))
            output = engine.finish()
        _publish_compressor_stats(registry, engine.stats)
    return output, registry.snapshot()


def merge_compressed(
    shards: Iterable[CompressedTrace],
    name: str = "merged",
    config: CompressorConfig | None = None,
) -> CompressedTrace:
    """Merge per-shard datasets into one compressed trace.

    Short templates are re-clustered across shards with the same
    equation-4 search the compressor uses, so templates that would have
    merged in a single-process run still merge here.  Long templates and
    addresses are re-indexed; time-seq records are remapped and sorted by
    timestamp (the dataset's documented order).

    Fidelity caveat: the merge clusters shard-template *centers*, not
    the original flow vectors, so a flow can end up to 2x the eq-4
    threshold from its final template (its shard-local distance plus the
    center-to-center distance).  Single-process compression keeps every
    flow within 1x.
    """
    merged = CompressedTrace(name=name)
    matcher = TemplateMatcher(merged.short_templates, config or CompressorConfig())
    for shard in shards:
        short_map: list[int] = []
        for template in shard.short_templates:
            index = matcher.find(template.values)
            if index is None:
                index = matcher.add(template.values)
            short_map.append(index)
        long_base = len(merged.long_templates)
        merged.long_templates.extend(shard.long_templates)
        address_map = [merged.addresses.intern(a) for a in shard.addresses]
        for record in shard.time_seq:
            if record.dataset is DatasetId.SHORT:
                template_index = short_map[record.template_index]
            else:
                template_index = long_base + record.template_index
            merged.time_seq.append(
                TimeSeqRecord(
                    timestamp=record.timestamp,
                    dataset=record.dataset,
                    template_index=template_index,
                    address_index=address_map[record.address_index],
                    rtt=record.rtt,
                )
            )
        merged.original_packet_count += shard.original_packet_count
    merged.time_seq.sort(key=lambda record: record.timestamp)
    return merged


def compress_tsh_file_parallel(
    path: str | Path,
    workers: int,
    config: CompressorConfig | None = None,
    *,
    name: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_PACKETS,
    engine: str | None = None,
) -> CompressedTrace:
    """Compress a ``.tsh`` file across ``workers`` processes.

    Shards by flow hash so each conversation lands wholly in one worker;
    merges shard outputs with :func:`merge_compressed`.  ``workers == 1``
    degenerates to the streaming path (no process pool).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    trace_name = name or Path(path).stem
    if workers == 1:
        compressor = compress_tsh_file(
            path, config, chunk_size=chunk_size, name=trace_name, engine=engine
        )
        return compressor.output
    resolved = ENGINE_SCALAR if engine is None else resolve_engine(engine)
    base_time = first_tsh_timestamp(path)
    tasks = [
        _ShardTask(
            str(path), shard, workers, config, base_time, chunk_size, resolved
        )
        for shard in range(workers)
    ]
    with multiprocessing.Pool(workers) as pool:
        results = pool.map(_compress_shard, tasks)
    registry = obs_current()
    for _, snapshot in results:
        registry.merge(snapshot)
    return merge_compressed(
        (shard for shard, _ in results), name=trace_name, config=config
    )
