"""Backend-codec abstraction: name/tag registry plus a capability API.

A *backend* is a general-purpose byte transform applied to one
serialized section of a ``.fctc`` container (see ``docs/FORMAT.md``) —
the flow-clustering compressor removes the redundancy the paper models,
a backend squeezes whatever entropy is left.  Backends are registered by
name (the CLI/API surface) and by a one-byte wire *tag* (what a v2
container stores), and advertise their capabilities — whether they take
a compression level and which range — so callers can validate requests
before any bytes are transformed.

The registry is deliberately open: :func:`register_backend` accepts any
:class:`BackendCodec`, so an out-of-tree codec (zstd, say) can claim an
unused tag without touching this package.  Decoding a tag nobody
registered raises :class:`~repro.core.errors.CodecError` — never garbage
output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import CodecError

RESERVED_NAMES = ("auto",)
"""Selection-policy names that can never be registered as codecs."""


@dataclass(frozen=True)
class BackendCodec:
    """One registered backend: identity, capabilities, transforms.

    ``tag`` is the byte stored in v2 section/segment headers; it must be
    unique across the registry and stable forever (files outlive code).
    ``min_level``/``max_level``/``default_level`` describe the level
    capability: all three are ``None`` for level-less codecs (``raw``).
    ``compress_fn`` receives ``(data, level)`` where ``level`` is already
    validated and defaulted; ``decompress_fn`` receives the stored bytes.
    """

    name: str
    tag: int
    compress_fn: Callable[[bytes, int | None], bytes]
    decompress_fn: Callable[[bytes], bytes]
    min_level: int | None = None
    max_level: int | None = None
    default_level: int | None = None
    description: str = ""
    decompressor_factory: Callable[[], Any] | None = None
    """Optional incremental decompressor (``zlib.decompressobj``-style:
    ``decompress(data, max_length)`` + ``eof``).  When provided,
    :meth:`decompress` with ``max_size`` stops expanding as soon as the
    output exceeds the bound — the defense against crafted containers
    whose small stored payload inflates far past the declared section
    size."""

    @property
    def accepts_level(self) -> bool:
        """Whether this backend has a tunable compression level."""
        return self.max_level is not None

    def validate_level(self, level: int | None) -> int | None:
        """Resolve ``level`` against the capability range.

        Returns the effective level (the default when ``level`` is
        ``None``); raises :class:`CodecError` for a level outside the
        advertised range or for any level on a level-less backend.
        """
        if level is None:
            return self.default_level
        if not self.accepts_level:
            raise CodecError(f"backend '{self.name}' takes no compression level")
        if not self.min_level <= level <= self.max_level:
            raise CodecError(
                f"backend '{self.name}' level {level} outside "
                f"[{self.min_level}, {self.max_level}]"
            )
        return level

    def advisory_level(self, level: int | None) -> int | None:
        """``level`` if this backend can honor it, else ``None``.

        The lenient counterpart of :meth:`validate_level` for contexts
        where the level is a preference, not a demand — ``auto`` trials
        and per-section mappings, where one requested level meets
        backends with different (or no) ranges.
        """
        if level is None or not self.accepts_level:
            return None
        return level if self.min_level <= level <= self.max_level else None

    def compress(self, data: bytes, level: int | None = None) -> bytes:
        """Encode ``data``; ``level`` must lie in the advertised range."""
        return self.compress_fn(data, self.validate_level(level))

    def decompress(self, data: bytes, *, max_size: int | None = None) -> bytes:
        """Decode bytes produced by :meth:`compress`.

        Corrupt input surfaces as :class:`CodecError` — the container
        reader turns every backend failure into a diagnosable parse
        error instead of leaking library-specific exceptions.
        ``max_size`` (the container's declared raw section length) caps
        the expansion: with an incremental decompressor registered, the
        decode aborts the moment the output would exceed the cap, so a
        decompression bomb costs its stored bytes, not its inflated
        ones.  Backends without a factory decode fully and are
        length-checked afterwards.
        """
        try:
            if max_size is not None and self.decompressor_factory is not None:
                return self._decompress_bounded(data, max_size)
            out = self.decompress_fn(data)
        except CodecError:
            raise
        except Exception as exc:  # zlib.error, OSError (bz2), LZMAError...
            raise CodecError(
                f"backend '{self.name}' failed to decode section payload: {exc}"
            ) from exc
        if max_size is not None and len(out) > max_size:
            raise CodecError(
                f"backend '{self.name}' output exceeds the declared "
                f"section size ({len(out)} > {max_size})"
            )
        return out

    def _decompress_bounded(self, data: bytes, max_size: int) -> bytes:
        """Incremental decode that stops once ``max_size`` is exceeded.

        Drives a ``decompressobj``-style object, asking for at most one
        byte past the cap per round: producing that byte is the
        overflow proof.  A stalled decompressor (truncated stream)
        breaks out and leaves the short output for the caller's exact
        length check to report.
        """
        try:
            decompressor = self.decompressor_factory()
            out = bytearray()
            feed = data
            while True:
                chunk = decompressor.decompress(feed, max_size + 1 - len(out))
                out += chunk
                if len(out) > max_size:
                    raise CodecError(
                        f"backend '{self.name}' output exceeds the declared "
                        f"section size (> {max_size})"
                    )
                if decompressor.eof:
                    return bytes(out)
                # zlib buffers leftover input in unconsumed_tail; bz2 and
                # lzma retain it internally and continue on b"".
                feed = getattr(decompressor, "unconsumed_tail", b"")
                if not feed and not chunk:
                    return bytes(out)
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(
                f"backend '{self.name}' failed to decode section payload: {exc}"
            ) from exc


_BY_NAME: dict[str, BackendCodec] = {}
_BY_TAG: dict[int, BackendCodec] = {}


def register_backend(codec: BackendCodec) -> BackendCodec:
    """Add a backend to the registry; name and tag must be unused."""
    if not 0 <= codec.tag <= 0xFF:
        raise ValueError(f"backend tag must fit one byte: {codec.tag}")
    if codec.name in RESERVED_NAMES:
        raise ValueError(
            f"backend name '{codec.name}' is reserved for the selection policy"
        )
    if codec.name in _BY_NAME:
        raise ValueError(f"backend name already registered: '{codec.name}'")
    if codec.tag in _BY_TAG:
        raise ValueError(f"backend tag already registered: {codec.tag}")
    _BY_NAME[codec.name] = codec
    _BY_TAG[codec.tag] = codec
    return codec


def get_backend(name: str) -> BackendCodec:
    """Look a backend up by its registered name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CodecError(
            f"unknown backend '{name}' (available: {', '.join(backend_names())})"
        ) from None


def backend_for_tag(tag: int) -> BackendCodec:
    """Look a backend up by its wire tag (decode path)."""
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise CodecError(
            f"unknown backend tag {tag:#04x} — the file needs a codec "
            "this build does not register"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BY_NAME)


def available_backends() -> tuple[BackendCodec, ...]:
    """Registered backends, in registration order."""
    return tuple(_BY_NAME.values())
