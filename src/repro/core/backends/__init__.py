"""Pluggable backend codecs for ``.fctc``/``.fctca`` section payloads.

Importing this package registers the built-in backends (``raw``,
``zlib``, ``bz2``, ``lzma``); :mod:`repro.core.backends.auto` adds the
``auto`` selection policy on top.  See ``docs/FORMAT.md`` for the wire
encoding of backend tags and :mod:`repro.core.codec` for how sections
are framed around the transformed payloads.
"""

from repro.core.backends.base import (
    BackendCodec,
    available_backends,
    backend_for_tag,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.backends.stdlib import BZ2, LZMA, RAW, ZLIB
from repro.core.backends.auto import (
    AUTO,
    DEFAULT_CANDIDATES,
    DEFAULT_SAMPLE_BYTES,
    choose_backend,
    encode_auto,
)

__all__ = [
    "BackendCodec",
    "available_backends",
    "backend_for_tag",
    "backend_names",
    "get_backend",
    "register_backend",
    "RAW",
    "ZLIB",
    "BZ2",
    "LZMA",
    "AUTO",
    "DEFAULT_CANDIDATES",
    "DEFAULT_SAMPLE_BYTES",
    "choose_backend",
    "encode_auto",
]
