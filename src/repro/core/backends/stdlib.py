"""The built-in backends: ``raw`` plus the stdlib entropy coders.

Tags 0–3 are reserved by ``docs/FORMAT.md`` for these four; new codecs
must claim tags from 4 upward.  ``raw`` stores section bytes untouched —
it is both the default (the paper's format, zero decode cost) and the
fallback :func:`~repro.core.backends.auto.choose_backend` picks for
incompressible sections.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

from repro.core.backends.base import BackendCodec, register_backend

RAW = register_backend(
    BackendCodec(
        name="raw",
        tag=0,
        compress_fn=lambda data, level: data,
        decompress_fn=lambda data: data,
        description="identity — section bytes stored as-is (v1 behaviour)",
    )
)

ZLIB = register_backend(
    BackendCodec(
        name="zlib",
        tag=1,
        compress_fn=lambda data, level: zlib.compress(data, level),
        decompress_fn=zlib.decompress,
        decompressor_factory=zlib.decompressobj,
        min_level=0,
        max_level=9,
        default_level=6,
        description="DEFLATE (RFC 1950) — fast, moderate ratio",
    )
)

BZ2 = register_backend(
    BackendCodec(
        name="bz2",
        tag=2,
        compress_fn=lambda data, level: bz2.compress(data, level),
        decompress_fn=bz2.decompress,
        decompressor_factory=bz2.BZ2Decompressor,
        min_level=1,
        max_level=9,
        default_level=9,
        description="Burrows-Wheeler — slower, often better on text-like data",
    )
)

LZMA = register_backend(
    BackendCodec(
        name="lzma",
        tag=3,
        compress_fn=lambda data, level: lzma.compress(data, preset=level),
        decompress_fn=lzma.decompress,
        decompressor_factory=lzma.LZMADecompressor,
        min_level=0,
        max_level=9,
        default_level=6,
        description="LZMA (xz) — slowest, usually the best ratio",
    )
)
