"""``auto`` backend selection: trial-compress a sample, keep the winner.

The comparative-study literature on flow-record compression shows the
ratio/throughput winner varies by workload, so hard-coding one coder
leaves bytes (or time) on the table.  ``auto`` is not a wire backend —
no tag — but a *selection policy*: compress the first
:data:`DEFAULT_SAMPLE_BYTES` of a section with every candidate, pick the
best sample ratio, then encode the whole section with that one backend.
The container records only the winner's tag, so readers never know
``auto`` was involved.

Ties (and incompressible sections, where every coder's ratio is >= 1)
resolve to the earliest candidate in :data:`DEFAULT_CANDIDATES`, which
orders by decode speed — ``raw`` first.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.backends.base import BackendCodec, get_backend
from repro.obs import current as obs_current

AUTO = "auto"
"""The reserved spec name that triggers per-section trial selection."""

DEFAULT_SAMPLE_BYTES = 64 * 1024
"""How much of a section the trial pass compresses (first N KiB)."""

DEFAULT_CANDIDATES = ("raw", "zlib", "bz2", "lzma")
"""Trial order; earlier wins ties, so order by decode speed."""


def _trial(
    data: bytes,
    candidates: Iterable[str] | None,
    sample_bytes: int,
    level: int | None,
) -> tuple[BackendCodec, bytes, bool]:
    """Run the trial pass; returns (winner, winning payload, covered).

    ``covered`` is True when the sample was the whole input, in which
    case the winning payload is already the final encoding.  ``level``
    is advisory: candidates that cannot honor it fall back to their own
    default instead of failing the whole selection.
    """
    names = tuple(candidates) if candidates is not None else DEFAULT_CANDIDATES
    if not names:
        raise ValueError("auto selection needs at least one candidate")
    sample = bytes(data[:sample_bytes])
    covered = len(sample) == len(data)
    if not sample:
        winner = get_backend("raw")
        _count_selection(winner.name)
        return winner, b"", covered
    best: BackendCodec | None = None
    best_payload = b""
    for name in names:
        codec = get_backend(name)
        trial = codec.compress(sample, codec.advisory_level(level))
        if best is None or len(trial) < len(best_payload):
            best, best_payload = codec, trial
    _count_selection(best.name)
    return best, best_payload, covered


def _count_selection(winner: str) -> None:
    """Record one trial outcome — which backend the selection picked."""
    obs_current().counter(
        f"backend.auto.selected.{winner}",
        "auto-selection trials won by this backend",
    ).inc()


def choose_backend(
    data: bytes,
    *,
    candidates: Iterable[str] | None = None,
    sample_bytes: int = DEFAULT_SAMPLE_BYTES,
    level: int | None = None,
) -> BackendCodec:
    """Pick the backend with the best trial ratio on ``data``'s head.

    ``level`` is advisory — forwarded to candidates whose range covers
    it, ignored by the rest.  Empty input short-circuits to ``raw``:
    there is nothing to win and raw is free to decode.
    """
    return _trial(data, candidates, sample_bytes, level)[0]


def encode_auto(
    data: bytes,
    *,
    candidates: Iterable[str] | None = None,
    sample_bytes: int = DEFAULT_SAMPLE_BYTES,
    level: int | None = None,
) -> tuple[BackendCodec, bytes]:
    """Pick the best backend *and* encode ``data`` with it.

    When the sample already covered the whole input (the common case —
    sections are usually well under :data:`DEFAULT_SAMPLE_BYTES`), the
    winning trial payload is returned as-is instead of compressing the
    same bytes a second time.
    """
    codec, payload, covered = _trial(data, candidates, sample_bytes, level)
    if covered:
        return codec, payload
    return codec, codec.compress(data, codec.advisory_level(level))
