"""Flow metadata without packet synthesis — the analytics fast path.

The compressed form stores only *destination* addresses; every other
per-flow identity field is re-drawn at decompression time from a
deterministic RNG seeded by :func:`~repro.core.decompressor.flow_seed`.
That determinism is usually framed as a replay guarantee, but it cuts
the other way too: the source address of a flow is fully determined by
its ``time-seq`` record, so (src, dst, packets, bytes, time bounds) can
be recovered by replaying just the *first RNG draw* per flow — no
:class:`~repro.net.packet.PacketRecord` is ever built.

Everything else a traffic matrix needs is a pure function of the flow's
*template*, shared by every flow in its cluster:

* per-direction packet counts — the first packet travels client →
  server and the direction flips exactly at the dependent (g2 = 0)
  steps;
* per-direction byte totals — each packet's payload class (g3) maps to
  a representative size;
* the duration skeleton — a long flow replays its stored (quantized)
  gaps, a short flow advances one RTT per dependent step and one
  back-to-back gap per non-dependent step.

:class:`TemplateProfile` caches those per-template quantities once per
(template, config); :func:`flow_records` then walks ``time-seq`` exactly
like :func:`~repro.core.decompressor.flow_specs` (same identity tuple,
same occurrence ordinals, so filtered walks keep the surviving flows'
seeds stable) and emits one :class:`FlowRecord` per flow at O(1) RNG
cost.  End timestamps are accumulated with the same left-to-right float
additions the synthesizer performs, so they equal the synthesized last
packet's timestamp bit-for-bit.

:func:`flow_records_by_decode` is the differential twin: the same
records derived from actually synthesized packets.  The property suite
pins the two byte-identical; the analytics layer uses the decode twin as
its "stats via full decompression" baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator

from repro.core.codec import (
    GAP_UNITS_PER_SECOND,
    RTT_UNITS_PER_SECOND,
    TIMESTAMP_UNITS_PER_SECOND,
    quantize_gap,
    quantize_rtt,
    quantize_timestamp,
)
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.decompressor import (
    SERVER_PORT,
    DecompressorConfig,
    flow_seed,
    flow_specs,
    synthesize_flow,
)
from repro.core.errors import CodecError
from repro.flows.characterize import decode_packet_value
from repro.net.ip import random_class_b_or_c

__all__ = [
    "FlowRecord",
    "TemplateProfile",
    "flow_records",
    "flow_records_by_decode",
    "profile_template",
]


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One flow's metadata, exactly as a full replay would produce it.

    ``start``/``end`` are the flow's first and last packet timestamps
    (seconds relative to the container base / archive epoch, quantized
    start, synthesis-accumulated end); ``src`` is the synthesized client
    address, ``dst`` the stored destination.  ``packets_fwd``/``bytes_fwd``
    count the client → server direction, ``*_rev`` the reverse;
    ``packets``/``bytes`` are their sums.  ``rtt`` is the stored
    (quantized) RTT — 0.0 for long flows.
    """

    segment: int
    start: float
    end: float
    src: int
    dst: int
    is_long: bool
    packets: int
    bytes: int
    packets_fwd: int
    packets_rev: int
    bytes_fwd: int
    bytes_rev: int
    rtt: float


@dataclass(frozen=True, slots=True)
class TemplateProfile:
    """Per-template aggregates every member flow shares.

    ``dep_steps`` marks, for positions 1..n-1, whether the step is
    dependent (g2 = 0: direction flip, short flows wait one RTT);
    ``gap_seconds`` holds a long template's quantized inter-packet gaps
    in seconds (empty for short templates).  Byte totals already apply
    the config's representative payload sizes.
    """

    n: int
    packets_fwd: int
    packets_rev: int
    bytes_fwd: int
    bytes_rev: int
    dep_steps: tuple[bool, ...]
    gap_seconds: tuple[float, ...]


@lru_cache(maxsize=4096)
def profile_template(
    template: ShortFlowTemplate | LongFlowTemplate,
    is_long: bool,
    config: DecompressorConfig,
) -> TemplateProfile:
    """Fold one template into its :class:`TemplateProfile`.

    Mirrors the direction/payload logic of
    :func:`~repro.core.decompressor._synthesize_flow_packets` without
    touching timestamps or the RNG.  Cached on content: segments of one
    archive (and runs over the same traffic) share cluster centers, so
    the fold happens once per distinct (template, config) pair.
    """
    packets_fwd = packets_rev = 0
    bytes_fwd = bytes_rev = 0
    dep_steps: list[bool] = []
    client_to_server = True
    for position, value in enumerate(template.values):
        g1, g2, g3 = decode_packet_value(value, config.characterization)
        del g1  # flags do not affect matrix statistics
        if position > 0:
            dependent = g2 == 0
            dep_steps.append(dependent)
            if dependent:
                client_to_server = not client_to_server
        payload = config.payload_for_class(g3)
        if client_to_server:
            packets_fwd += 1
            bytes_fwd += payload
        else:
            packets_rev += 1
            bytes_rev += payload
    gap_seconds: tuple[float, ...] = ()
    if is_long and template.n > 1:
        gap_seconds = tuple(
            quantize_gap(gap) / GAP_UNITS_PER_SECOND
            for gap in template.gaps[: template.n - 1]
        )
    return TemplateProfile(
        n=template.n,
        packets_fwd=packets_fwd,
        packets_rev=packets_rev,
        bytes_fwd=bytes_fwd,
        bytes_rev=bytes_rev,
        dep_steps=tuple(dep_steps),
        gap_seconds=gap_seconds,
    )


def _flow_end(
    start: float,
    profile: TemplateProfile,
    is_long: bool,
    rtt: float,
    config: DecompressorConfig,
) -> float:
    """The flow's last packet timestamp, synthesis-identical.

    The additions run left to right from ``start``, the exact float
    operation sequence the synthesizer performs — sum-then-add would
    round differently.
    """
    end = start
    if is_long:
        for gap in profile.gap_seconds:
            end += gap
        return end
    effective_rtt = rtt if rtt > 0 else config.default_rtt
    for dependent in profile.dep_steps:
        end += effective_rtt if dependent else config.back_to_back_gap
    return end


def flow_records(
    compressed: CompressedTrace,
    config: DecompressorConfig | None = None,
    *,
    segment: int = 0,
    record_filter: Callable[[TimeSeqRecord], bool] | None = None,
) -> Iterator[FlowRecord]:
    """Yield flow metadata in timestamp order without synthesizing packets.

    The walk is :func:`~repro.core.decompressor.flow_specs` verbatim —
    same identity tuple, same occurrence ordinals counted over the full
    record walk (so ``record_filter`` never perturbs surviving flows'
    seeds) — but the only RNG work per flow is the one draw that decides
    the client address.  Start timestamps are nondecreasing, the
    invariant the streaming window aggregator relies on.
    """
    config = config or DecompressorConfig()
    occurrences: dict[tuple, int] = {}
    profiles: dict[tuple[bool, int], TemplateProfile] = {}
    # One reused generator, fully re-seeded per flow — state cannot
    # leak between flows, and the per-flow allocation disappears.
    rng = random.Random()
    for record in compressed.sorted_time_seq():
        timestamp_units = quantize_timestamp(record.timestamp)
        rtt_units = quantize_rtt(record.rtt)
        is_long = record.dataset is DatasetId.LONG
        try:
            server_ip = compressed.addresses.lookup(record.address_index)
        except IndexError as exc:  # validate() should have caught this
            raise CodecError(
                f"dangling address index: {record.address_index}"
            ) from exc
        identity = (
            timestamp_units,
            is_long,
            record.template_index,
            server_ip,
            rtt_units,
        )
        occurrence = occurrences.get(identity, 0)
        occurrences[identity] = occurrence + 1
        if record_filter is not None and not record_filter(record):
            continue
        key = (is_long, record.template_index)
        profile = profiles.get(key)
        if profile is None:
            profile = profiles[key] = profile_template(
                compressed.template_for(record), is_long, config
            )
        # The client address is the synthesizer's first draw; nothing
        # before it consumes entropy, so one draw recovers it exactly.
        rng.seed(flow_seed(config.seed, *identity, occurrence))
        client_ip = random_class_b_or_c(rng)
        start = timestamp_units / TIMESTAMP_UNITS_PER_SECOND
        rtt = rtt_units / RTT_UNITS_PER_SECOND
        yield FlowRecord(
            segment=segment,
            start=start,
            end=_flow_end(start, profile, is_long, rtt, config),
            src=client_ip,
            dst=server_ip,
            is_long=is_long,
            packets=profile.n,
            bytes=profile.bytes_fwd + profile.bytes_rev,
            packets_fwd=profile.packets_fwd,
            packets_rev=profile.packets_rev,
            bytes_fwd=profile.bytes_fwd,
            bytes_rev=profile.bytes_rev,
            rtt=rtt,
        )


def flow_records_by_decode(
    compressed: CompressedTrace,
    config: DecompressorConfig | None = None,
    *,
    segment: int = 0,
    record_filter: Callable[[TimeSeqRecord], bool] | None = None,
) -> Iterator[FlowRecord]:
    """The differential twin: the same records via full packet synthesis.

    Every flow's packets are materialized and folded back down to one
    :class:`FlowRecord`.  Direction is recovered from the server port
    (client ports start at 1024, so ``dst_port == 80`` identifies the
    client → server direction unambiguously).  This is the "statistics
    via full decompression" baseline the fast path is benchmarked and
    differentially tested against.
    """
    config = config or DecompressorConfig()
    for spec in flow_specs(
        compressed, config, order_prefix=(segment,), record_filter=record_filter
    ):
        packets_fwd = packets_rev = 0
        bytes_fwd = bytes_rev = 0
        src = spec.server_ip  # overwritten by the first forward packet
        end = spec.start
        for packet in synthesize_flow(spec, config):
            if packet.timestamp > end:
                end = packet.timestamp
            if packet.dst_port == SERVER_PORT:
                packets_fwd += 1
                bytes_fwd += packet.payload_len
                src = packet.src_ip
            else:
                packets_rev += 1
                bytes_rev += packet.payload_len
        yield FlowRecord(
            segment=segment,
            start=spec.start,
            end=end,
            src=src,
            dst=spec.server_ip,
            is_long=spec.is_long,
            packets=packets_fwd + packets_rev,
            bytes=bytes_fwd + bytes_rev,
            packets_fwd=packets_fwd,
            packets_rev=packets_rev,
            bytes_fwd=bytes_fwd,
            bytes_rev=bytes_rev,
            rtt=spec.rtt,
        )
