"""The paper's primary contribution: the flow-clustering trace compressor.

Section 3's compressor produces four datasets (``short-flows-template``,
``long-flows-template``, ``address``, ``time-seq``); section 4's
decompressor replays them into a synthetic trace that preserves the
semantic properties (flag sequences, dependence structure, payload
classes, destination locality, timing) the paper validates in section 6.
"""

from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.compressor import (
    CompressorConfig,
    FlowClusterCompressor,
    TemplateMatcher,
    compress_trace,
)
from repro.core.decompressor import (
    DecompressorConfig,
    FlowSpec,
    decompress_trace,
    flow_seed,
    flow_specs,
    synthesize_flow,
)
from repro.core.replay import (
    ReplayStats,
    StreamingDecompressor,
    iter_decompressed,
    merge_packet_stream,
)
from repro.core.codec import (
    ContainerInfo,
    ContainerWriteResult,
    SectionInfo,
    container_info,
    deserialize_compressed,
    read_compressed,
    serialize_compressed,
    serialize_compressed_v1,
    write_compressed,
    write_compressed_v1,
    write_container,
)
from repro.core.backends import (
    AUTO,
    BackendCodec,
    available_backends,
    backend_for_tag,
    backend_names,
    choose_backend,
    get_backend,
    register_backend,
)
from repro.core.streaming import (
    StreamingCompressor,
    StreamingStats,
    compress_stream,
    compress_tsh_file,
    compress_tsh_file_parallel,
    merge_compressed,
)
from repro.core.pipeline import (
    CompressionReport,
    compress_stream_to_bytes,
    compress_to_bytes,
    decompress_from_bytes,
    report_for_stream,
    roundtrip,
)
from repro.core.generator import TraceModel
from repro.core.errors import ArchiveError, CodecError, CompressionError

__all__ = [
    "AddressTable",
    "CompressedTrace",
    "DatasetId",
    "LongFlowTemplate",
    "ShortFlowTemplate",
    "TimeSeqRecord",
    "CompressorConfig",
    "FlowClusterCompressor",
    "TemplateMatcher",
    "compress_trace",
    "DecompressorConfig",
    "FlowSpec",
    "decompress_trace",
    "flow_seed",
    "flow_specs",
    "synthesize_flow",
    "ReplayStats",
    "StreamingDecompressor",
    "iter_decompressed",
    "merge_packet_stream",
    "ContainerInfo",
    "ContainerWriteResult",
    "SectionInfo",
    "container_info",
    "deserialize_compressed",
    "read_compressed",
    "serialize_compressed",
    "serialize_compressed_v1",
    "write_compressed",
    "write_compressed_v1",
    "write_container",
    "AUTO",
    "BackendCodec",
    "available_backends",
    "backend_for_tag",
    "backend_names",
    "choose_backend",
    "get_backend",
    "register_backend",
    "StreamingCompressor",
    "StreamingStats",
    "compress_stream",
    "compress_tsh_file",
    "compress_tsh_file_parallel",
    "merge_compressed",
    "CompressionReport",
    "compress_stream_to_bytes",
    "compress_to_bytes",
    "decompress_from_bytes",
    "report_for_stream",
    "roundtrip",
    "TraceModel",
    "ArchiveError",
    "CodecError",
    "CompressionError",
]
