"""The paper's primary contribution: the flow-clustering trace compressor.

Section 3's compressor produces four datasets (``short-flows-template``,
``long-flows-template``, ``address``, ``time-seq``); section 4's
decompressor replays them into a synthetic trace that preserves the
semantic properties (flag sequences, dependence structure, payload
classes, destination locality, timing) the paper validates in section 6.

Like :mod:`repro` and :mod:`repro.api`, this package is PEP 562-lazy:
``import repro.core`` resolves nothing until an attribute is touched,
so light leaf modules (``repro.core.backends``, ``repro.core.errors``)
can be imported without dragging in the compressor or
``multiprocessing``.
"""

from __future__ import annotations

import importlib

_LAZY_EXPORTS = {
    "repro.core.datasets": (
        "AddressTable",
        "CompressedTrace",
        "DatasetId",
        "LongFlowTemplate",
        "ShortFlowTemplate",
        "TimeSeqRecord",
    ),
    "repro.core.compressor": (
        "CompressorConfig",
        "FlowClusterCompressor",
        "TemplateMatcher",
        "compress_trace",
    ),
    "repro.core.decompressor": (
        "DecompressorConfig",
        "FlowSpec",
        "decompress_trace",
        "flow_seed",
        "flow_specs",
        "synthesize_flow",
    ),
    "repro.core.replay": (
        "ReplayStats",
        "StreamingDecompressor",
        "iter_decompressed",
        "merge_packet_stream",
    ),
    "repro.core.codec": (
        "ContainerInfo",
        "ContainerWriteResult",
        "SectionInfo",
        "container_info",
        "deserialize_compressed",
        "read_compressed",
        "serialize_compressed",
        "serialize_compressed_v1",
        "write_compressed",
        "write_compressed_v1",
        "write_container",
    ),
    "repro.core.backends": (
        "AUTO",
        "BackendCodec",
        "available_backends",
        "backend_for_tag",
        "backend_names",
        "choose_backend",
        "get_backend",
        "register_backend",
    ),
    "repro.core.streaming": (
        "StreamingCompressor",
        "StreamingStats",
        "compress_stream",
        "compress_tsh_file",
        "compress_tsh_file_parallel",
        "merge_compressed",
    ),
    "repro.core.pipeline": (
        "CompressionReport",
        "compress_stream_to_bytes",
        "compress_to_bytes",
        "decompress_from_bytes",
        "report_for_stream",
        "roundtrip",
    ),
    "repro.core.generator": ("TraceModel",),
    "repro.core.errors": ("ArchiveError", "CodecError", "CompressionError"),
}

_NAME_TO_MODULE = {
    name: module for module, names in _LAZY_EXPORTS.items() for name in names
}

__all__ = sorted(_NAME_TO_MODULE)


def __getattr__(name: str):
    try:
        module_name = _NAME_TO_MODULE[name]
    except KeyError:
        from repro import _submodule_or_raise

        return _submodule_or_raise(__name__, name)
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted({*globals(), *_NAME_TO_MODULE})
