"""The compressor's active-flow linked list (section 3).

"When a packet carrying a new flow is found, a new node is inserted at the
end of a linked list ...  Each node stores the following fields: a key (a
hashing of source and destination IP addresses, source and destination
port numbers, and protocol number), time-stamp, V_f value and two
pointers.  Each node has associated another linked list, where are
inserted the packets from the same flow."

The structure here is a doubly linked list of :class:`FlowNode` with an
auxiliary hash index for O(1) key lookup (the paper's hash key serves the
same purpose).  Each node accumulates its packet sub-list and the running
``V_f`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.flows.model import Direction
from repro.net.flowkey import FiveTuple, flow_hash


@dataclass
class PacketEntry:
    """One packet in a node's sub-list: what compression needs to keep."""

    timestamp: float
    value: int  # f(p_i)
    direction: Direction


class FlowNode:
    """A linked-list node for one active flow."""

    __slots__ = (
        "key",
        "key_hash",
        "first_timestamp",
        "values",
        "entries",
        "client_tuple",
        "dst_ip",
        "prev",
        "next",
    )

    def __init__(self, client_tuple: FiveTuple, first_timestamp: float) -> None:
        self.client_tuple = client_tuple
        self.key = client_tuple.canonical()
        self.key_hash = flow_hash(self.key)
        self.first_timestamp = first_timestamp
        self.values: list[int] = []
        self.entries: list[PacketEntry] = []
        self.dst_ip = client_tuple.dst_ip
        self.prev: Optional["FlowNode"] = None
        self.next: Optional["FlowNode"] = None

    @property
    def packet_count(self) -> int:
        """Packets accumulated so far (the paper's 'inserted nodes')."""
        return len(self.entries)

    def append_packet(
        self, timestamp: float, value: int, direction: Direction
    ) -> None:
        """Insert a packet into the node's packet sub-list."""
        self.values.append(value)
        self.entries.append(PacketEntry(timestamp, value, direction))

    def vector(self) -> tuple[int, ...]:
        """The flow's V_f vector accumulated so far."""
        return tuple(self.values)

    def inter_packet_gaps(self) -> list[float]:
        """Gaps between consecutive packets, with a trailing 0 (n entries)."""
        times = [entry.timestamp for entry in self.entries]
        gaps = [later - earlier for earlier, later in zip(times, times[1:])]
        gaps.append(0.0)
        return gaps

    def estimate_rtt(self) -> float:
        """Gap to the first direction turnaround (section 2's RTT notion)."""
        if not self.entries:
            return 0.0
        first = self.entries[0]
        for entry in self.entries[1:]:
            if entry.direction is not first.direction:
                return entry.timestamp - first.timestamp
        return 0.0


class ActiveFlowList:
    """Doubly linked list of active flows with hash-keyed lookup."""

    def __init__(self) -> None:
        self._head: Optional[FlowNode] = None
        self._tail: Optional[FlowNode] = None
        self._by_key: dict[FiveTuple, FlowNode] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[FlowNode]:
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def find(self, key: FiveTuple) -> Optional[FlowNode]:
        """The node for a canonical 5-tuple, or None."""
        return self._by_key.get(key)

    def insert(self, client_tuple: FiveTuple, timestamp: float) -> FlowNode:
        """Append a new flow node at the tail (paper: 'at the end')."""
        node = FlowNode(client_tuple, timestamp)
        if node.key in self._by_key:
            raise ValueError(f"flow already active: {node.key.describe()}")
        if self._tail is None:
            self._head = self._tail = node
        else:
            node.prev = self._tail
            self._tail.next = node
            self._tail = node
        self._by_key[node.key] = node
        self._size += 1
        return node

    def remove(self, node: FlowNode) -> None:
        """Unlink a node ("remove all nodes of this flow from the list")."""
        if self._by_key.get(node.key) is not node:
            raise ValueError(f"node not in list: {node.key.describe()}")
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None
        del self._by_key[node.key]
        self._size -= 1

    def pop_all(self) -> list[FlowNode]:
        """Remove and return every node, in list order (end-of-trace flush)."""
        nodes = list(self)
        for node in nodes:
            self.remove(node)
        return nodes
