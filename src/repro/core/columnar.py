"""The columnar flow-clustering engine — vectorized, byte-identical.

:class:`ColumnarFlowCompressor` implements exactly the algorithm of
:class:`~repro.core.compressor.FlowClusterCompressor` (section 3 of the
paper) over :class:`~repro.net.columns.PacketColumns` chunks.  Per-chunk
work — flag/payload classes, canonical keys, direction bits, terminator
tests — is vectorized; only the irreducibly sequential part (one dict
probe and a couple of list appends per packet) remains a Python loop,
with no ``PacketRecord``/``FiveTuple``/``PacketEntry`` objects on it.

**Byte identity is a hard contract**, pinned by the differential harness
in ``tests/property/test_columnar_identity.py``: for any packet sequence
and any chunking, this engine's output equals the scalar engine's to the
byte.  The replicated semantics worth naming:

* insertion-ordered dicts stand in for the active-flow linked list and
  the ``_last_seen`` map — both receive the same insert/remove sequence,
  so iteration (idle eviction, end-of-trace flush) visits flows in the
  same order;
* a flow's direction structure collapses to booleans: a packet's
  direction equals the first packet's exactly when their canonical
  ``forward`` bits agree, so g2 dependence and the RTT turnaround are
  tracked with two bits and one lazily-set float per flow;
* base-time rebase, the idle-eviction freshness gate and its
  ``exclude`` rule, and the close/dataset logic mirror the scalar code
  line for line (same float arithmetic, same ordering).

Engine selection (:func:`resolve_engine`) is wired through
``Options(engine=...)``: ``"auto"`` picks columnar when numpy imports
and scalar otherwise; ``"columnar"`` also runs on the ``array``
fallback backend — slower, same bytes.
"""

from __future__ import annotations

import logging
from dataclasses import replace

from repro.obs import current as obs_current
from repro.core.compressor import (
    CompressorConfig,
    CompressorStats,
    TemplateMatcher,
)
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CompressionError
from repro.net.columns import PacketColumns, numpy_or_none, tolist
from repro.net.flowkey import canonical_key_columns
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_FIN, TCP_RST, classify_flags

_log = logging.getLogger(__name__)

ENGINE_AUTO = "auto"
ENGINE_SCALAR = "scalar"
ENGINE_COLUMNAR = "columnar"
ENGINES = (ENGINE_AUTO, ENGINE_SCALAR, ENGINE_COLUMNAR)

_TERMINATOR_MASK = TCP_FIN | TCP_RST

# g1 class per raw flag byte — classify_flags tabulated once.
_FLAG_CLASS = tuple(int(classify_flags(flags)) for flags in range(256))
_flag_class_np = None


def resolve_engine(engine: str | None) -> str:
    """Normalize an engine request to ``"scalar"`` or ``"columnar"``.

    ``None`` and ``"auto"`` pick columnar exactly when numpy is
    importable — the fallback backend is correct but not faster than
    the scalar engine, so auto only opts in where the win is real.
    Unknown names raise ``ValueError``.
    """
    if engine is None or engine == ENGINE_AUTO:
        return ENGINE_COLUMNAR if numpy_or_none() is not None else ENGINE_SCALAR
    if engine not in (ENGINE_SCALAR, ENGINE_COLUMNAR):
        raise ValueError(
            f"engine must be one of {'/'.join(ENGINES)}: {engine!r}"
        )
    return engine


# Flow-state list layout (a list, not a dataclass: the hot loop indexes
# it directly).
_FIRST_TS = 0  # first packet timestamp
_DST_IP = 1  # first packet's destination address (the interned one)
_FIRST_FWD = 2  # first packet's canonical-forward bit
_LAST_FWD = 3  # previous packet's canonical-forward bit
_RTT = 4  # first direction turnaround delta, or None
_LAST_SEEN = 5  # last packet timestamp (idle eviction)
_VALUES = 6  # accumulated f(p_i) values
_TIMES = 7  # accumulated timestamps (long-flow gaps)


class ColumnarFlowCompressor:
    """Streaming compressor over columnar chunks; same output bytes as
    :class:`~repro.core.compressor.FlowClusterCompressor`.

    Feed :class:`PacketColumns` chunks with :meth:`feed_columns` (or
    single records with :meth:`add_packet`), then :meth:`finish`.
    """

    def __init__(
        self,
        config: CompressorConfig | None = None,
        name: str = "compressed",
        base_time: float | None = None,
    ) -> None:
        self.config = config or CompressorConfig()
        self.stats = CompressorStats()
        self._flows: dict[tuple[int, int], list] = {}
        self._output = CompressedTrace(name=name)
        self._matcher = TemplateMatcher(self._output.short_templates, self.config)
        self._base_time = base_time
        self._explicit_base = base_time is not None
        self._earliest_seen: float | None = None
        self._peak_active = 0
        self._finished = False
        kernel = "numpy" if numpy_or_none() is not None else "fallback"
        obs_current().counter(
            f"columnar.kernel.{kernel}",
            "columnar compressors instantiated on this kernel backend",
        ).inc()

    @property
    def output(self) -> CompressedTrace:
        """The datasets built so far (complete only after :meth:`finish`)."""
        return self._output

    @property
    def active_flows(self) -> int:
        """Flows currently open — the streaming working-set size."""
        return len(self._flows)

    @property
    def peak_active_flows(self) -> int:
        """High-water mark of :attr:`active_flows` over the whole feed."""
        return self._peak_active

    # -- feeding ----------------------------------------------------------

    def feed_columns(self, columns: PacketColumns) -> int:
        """Process one chunk (timestamp order across all feeds)."""
        if self._finished:
            raise CompressionError("compressor already finished")
        count = len(columns)
        if count == 0:
            return 0
        obs_current().histogram(
            "columnar.chunk_packets", "rows per columnar chunk fed"
        ).observe(count)
        timestamps, keys, forwards, base_values, terminators, dst_ips = (
            self._derive(columns)
        )
        config = self.config
        timeout = config.idle_timeout
        short_max = config.short_flow_max
        w_dep = config.characterization.weights.dependence
        flows = self._flows
        stats = self.stats
        output_time_seq = self._output.time_seq
        base = self._base_time
        explicit = self._explicit_base
        earliest = self._earliest_seen
        peak = self._peak_active

        for i in range(count):
            now = timestamps[i]
            if base is None:
                base = self._base_time = now
            elif not explicit and now < base:
                # Rebase: shift already-closed flows to the new earlier
                # base (same arithmetic as the scalar _rebase).
                delta = base - now
                base = self._base_time = now
                output_time_seq[:] = [
                    replace(record, timestamp=record.timestamp + delta)
                    for record in output_time_seq
                ]
            key = keys[i]
            if earliest is not None and now - earliest > timeout:
                self._earliest_seen = earliest
                self._expire_idle(now, exclude=key)
                earliest = self._earliest_seen
            stats.packets += 1
            forward = forwards[i]
            state = flows.get(key)
            if state is None:
                # Flow opener: g2 is 1 (waits on nothing).
                flows[key] = state = [
                    now,
                    dst_ips[i],
                    forward,
                    forward,
                    None,
                    now,
                    [base_values[i] + w_dep],
                    [now],
                ]
                if len(flows) > peak:
                    peak = len(flows)
            else:
                if forward == state[_LAST_FWD]:
                    value = base_values[i] + w_dep
                else:
                    value = base_values[i]
                if state[_RTT] is None and forward != state[_FIRST_FWD]:
                    state[_RTT] = now - state[_FIRST_TS]
                state[_LAST_FWD] = forward
                state[_LAST_SEEN] = now
                state[_VALUES].append(value)
                state[_TIMES].append(now)
            if earliest is None or now < earliest:
                earliest = now
            if terminators[i]:
                del flows[key]
                self._close(state, short_max)

        self._earliest_seen = earliest
        self._peak_active = peak
        return count

    def add_packet(self, packet: PacketRecord) -> None:
        """Process one packet — the scalar-compatible entry point."""
        if self._finished:
            raise CompressionError("compressor already finished")
        now = packet.timestamp
        if self._base_time is None:
            self._base_time = now
        elif not self._explicit_base and now < self._base_time:
            delta = self._base_time - now
            self._base_time = now
            self._output.time_seq[:] = [
                replace(record, timestamp=record.timestamp + delta)
                for record in self._output.time_seq
            ]
        forward_end = (packet.src_ip << 16) | packet.src_port
        backward_end = (packet.dst_ip << 16) | packet.dst_port
        forward = forward_end <= backward_end
        low, high = (
            (forward_end, backward_end)
            if forward
            else (backward_end, forward_end)
        )
        key = ((low << 8) | packet.protocol, high)
        self._expire_idle(now, exclude=key)
        self.stats.packets += 1
        characterization = self.config.characterization
        weights = characterization.weights
        payload = packet.payload_len
        if payload == 0:
            payload_class = 0
        elif payload <= characterization.payload_small_max:
            payload_class = 1
        else:
            payload_class = 2
        base_value = (
            weights.flags * _FLAG_CLASS[packet.flags & 0xFF]
            + weights.payload * payload_class
        )
        w_dep = weights.dependence
        flows = self._flows
        state = flows.get(key)
        if state is None:
            flows[key] = state = [
                now,
                packet.dst_ip,
                forward,
                forward,
                None,
                now,
                [base_value + w_dep],
                [now],
            ]
            if len(flows) > self._peak_active:
                self._peak_active = len(flows)
        else:
            value = base_value + w_dep if forward == state[_LAST_FWD] else base_value
            if state[_RTT] is None and forward != state[_FIRST_FWD]:
                state[_RTT] = now - state[_FIRST_TS]
            state[_LAST_FWD] = forward
            state[_LAST_SEEN] = now
            state[_VALUES].append(value)
            state[_TIMES].append(now)
        if self._earliest_seen is None or now < self._earliest_seen:
            self._earliest_seen = now
        if packet.flags & _TERMINATOR_MASK:
            del flows[key]
            self._close(state, self.config.short_flow_max)

    def finish(self) -> CompressedTrace:
        """Flush open flows (in arrival order) and return the datasets."""
        if not self._finished:
            short_max = self.config.short_flow_max
            for state in list(self._flows.values()):
                self._close(state, short_max)
            self._flows.clear()
            self._finished = True
        return self._output

    # -- internals --------------------------------------------------------

    def _derive(self, columns: PacketColumns):
        """Per-chunk vectorized precomputation, returned as plain lists."""
        characterization = self.config.characterization
        weights = characterization.weights
        w_flags, w_payload = weights.flags, weights.payload
        small_max = characterization.payload_small_max
        np = numpy_or_none()
        if np is not None:
            global _flag_class_np
            if _flag_class_np is None:
                _flag_class_np = np.array(_FLAG_CLASS, dtype=np.int64)
            flags = np.asarray(columns.flags)
            payload = np.asarray(columns.payload_len)
            payload_class = (payload > 0).astype(np.int64) + (payload > small_max)
            base_values = (
                w_flags * _flag_class_np[flags] + w_payload * payload_class
            ).tolist()
            terminators = ((flags & _TERMINATOR_MASK) != 0).tolist()
            timestamps = np.asarray(columns.timestamps).tolist()
            dst_ips = np.asarray(columns.dst_ip).tolist()
        else:
            flag_table = _FLAG_CLASS
            base_values = [
                w_flags * flag_table[flag]
                + w_payload
                * (0 if payload == 0 else (1 if payload <= small_max else 2))
                for flag, payload in zip(
                    tolist(columns.flags), tolist(columns.payload_len)
                )
            ]
            terminators = [
                bool(flag & _TERMINATOR_MASK) for flag in tolist(columns.flags)
            ]
            timestamps = tolist(columns.timestamps)
            dst_ips = tolist(columns.dst_ip)
        key_lo, key_hi, forwards = canonical_key_columns(columns)
        keys = list(zip(key_lo, key_hi))
        return timestamps, keys, forwards, base_values, terminators, dst_ips

    def _expire_idle(self, now: float, exclude=None) -> None:
        # Mirrors the scalar engine: the freshness gate on the earliest
        # last-activity bound, the strict exclusion of the flow carrying
        # the clock tick, stale collection in flow-arrival order, and
        # the bound recomputation afterwards.
        timeout = self.config.idle_timeout
        if self._earliest_seen is None or now - self._earliest_seen <= timeout:
            return
        flows = self._flows
        stale = [
            key
            for key, state in flows.items()
            if now - state[_LAST_SEEN] > timeout and key != exclude
        ]
        if stale:
            short_max = self.config.short_flow_max
            for key in stale:
                self._close(flows.pop(key), short_max)
            self.stats.flows_evicted += len(stale)
            if _log.isEnabledFor(logging.DEBUG):
                _log.debug(
                    "idle eviction at t=%.6f: closed %d stale flow(s), "
                    "%d active",
                    now,
                    len(stale),
                    len(flows),
                )
        self._earliest_seen = min(
            (state[_LAST_SEEN] for state in flows.values()), default=None
        )

    def _close(self, state: list, short_max: int) -> None:
        """Route a finished flow to the short or long dataset."""
        values = state[_VALUES]
        stats = self.stats
        stats.flows_closed += 1
        if len(values) <= short_max:
            stats.short_flows += 1
            vector = tuple(values)
            index = self._matcher.find(vector)
            if index is None:
                index = self._matcher.add(vector)
                stats.template_misses += 1
            else:
                stats.template_hits += 1
            rtt = state[_RTT]
            self._append_time_seq(
                state, DatasetId.SHORT, index, 0.0 if rtt is None else rtt
            )
        else:
            stats.long_flows += 1
            times = state[_TIMES]
            gaps = [later - earlier for earlier, later in zip(times, times[1:])]
            gaps.append(0.0)
            index = len(self._output.long_templates)
            self._output.long_templates.append(
                LongFlowTemplate(values=tuple(values), gaps=tuple(gaps))
            )
            self._append_time_seq(state, DatasetId.LONG, index, 0.0)

    def _append_time_seq(
        self, state: list, dataset: DatasetId, template_index: int, rtt: float
    ) -> None:
        base = self._base_time if self._base_time is not None else 0.0
        address_index = self._output.addresses.intern(state[_DST_IP])
        self._output.time_seq.append(
            TimeSeqRecord(
                timestamp=max(0.0, state[_FIRST_TS] - base),
                dataset=dataset,
                template_index=template_index,
                address_index=address_index,
                rtt=max(0.0, rtt),
            )
        )
        self._output.original_packet_count += len(state[_VALUES])
