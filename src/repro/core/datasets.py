"""The four compressed datasets of section 3.

``short-flows-template``
    "stores the templates of flows with less than 51 packets.  This
    dataset has a first field that stores the value of n (number of
    packets), and then a sequence of f(p_i) values."

``long-flows-template``
    "stores the templates of flows with more than 50 packets.  The first
    field stores the value n and then, for n packets, the f(p_i) value and
    the inter packet time."

``address``
    "stores a sequence of unique IP destination address found in the
    trace."

``time-seq``
    "stores for each flow, the time-stamp of the first packet ... a
    dataset identifier (S/L), an index to a specific template position
    into the template dataset, the RTT of short flows and another index to
    the address dataset."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class DatasetId(enum.Enum):
    """The time-seq dataset identifier field: short or long template."""

    SHORT = "S"
    LONG = "L"


@dataclass(frozen=True, slots=True)
class ShortFlowTemplate:
    """A short-flow cluster center: ``n`` and the ``V_f`` vector."""

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a template needs at least one packet value")
        if any(v < 0 or v > 255 for v in self.values):
            raise ValueError("f(p) values must fit one byte (0..255)")

    @property
    def n(self) -> int:
        """Number of packets this template describes."""
        return len(self.values)


@dataclass(frozen=True, slots=True)
class LongFlowTemplate:
    """A long-flow record: per packet, ``f(p_i)`` and inter-packet time.

    ``gaps[i]`` is the time between packet ``i`` and packet ``i+1``;
    the last entry is unused and kept at 0 for a regular layout
    (paper stores "the f(p_i) value and the inter packet time" per
    packet).
    """

    values: tuple[int, ...]
    gaps: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a template needs at least one packet value")
        if len(self.values) != len(self.gaps):
            raise ValueError(
                f"values/gaps length mismatch: {len(self.values)} vs {len(self.gaps)}"
            )
        if any(v < 0 or v > 255 for v in self.values):
            raise ValueError("f(p) values must fit one byte (0..255)")
        if any(g < 0 for g in self.gaps):
            raise ValueError("inter-packet gaps cannot be negative")

    @property
    def n(self) -> int:
        """Number of packets this template describes."""
        return len(self.values)


class AddressTable:
    """The ``address`` dataset: unique destination IPs, index-addressable."""

    def __init__(self, addresses: Iterable[int] = ()) -> None:
        self._addresses: list[int] = []
        self._index: dict[int, int] = {}
        for address in addresses:
            self.intern(address)

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self):
        return iter(self._addresses)

    def intern(self, address: int) -> int:
        """Return the index of ``address``, inserting it if new."""
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"not a 32-bit address: {address}")
        existing = self._index.get(address)
        if existing is not None:
            return existing
        index = len(self._addresses)
        self._addresses.append(address)
        self._index[address] = index
        return index

    def lookup(self, index: int) -> int:
        """The address stored at ``index``."""
        return self._addresses[index]

    def addresses(self) -> list[int]:
        """A copy of the address list, in insertion order."""
        return list(self._addresses)


@dataclass(frozen=True, slots=True)
class TimeSeqRecord:
    """One ``time-seq`` entry: the per-flow replay record.

    ``rtt`` is meaningful only for short flows ("for long flows, the field
    RTT in the time-seq dataset is not filled"); it is stored as 0.0 for
    long flows.
    """

    timestamp: float
    dataset: DatasetId
    template_index: int
    address_index: int
    rtt: float = 0.0

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp: {self.timestamp}")
        if self.template_index < 0:
            raise ValueError(f"negative template index: {self.template_index}")
        if self.address_index < 0:
            raise ValueError(f"negative address index: {self.address_index}")
        if self.rtt < 0:
            raise ValueError(f"negative RTT: {self.rtt}")


@dataclass
class CompressedTrace:
    """All four datasets plus bookkeeping for one compressed trace."""

    short_templates: list[ShortFlowTemplate] = field(default_factory=list)
    long_templates: list[LongFlowTemplate] = field(default_factory=list)
    addresses: AddressTable = field(default_factory=AddressTable)
    time_seq: list[TimeSeqRecord] = field(default_factory=list)
    name: str = "compressed"
    original_packet_count: int = 0

    def flow_count(self) -> int:
        """Number of flows recorded (time-seq entries)."""
        return len(self.time_seq)

    def template_counts(self) -> tuple[int, int]:
        """(short template count, long template count)."""
        return len(self.short_templates), len(self.long_templates)

    def template_for(self, record: TimeSeqRecord) -> ShortFlowTemplate | LongFlowTemplate:
        """Resolve a time-seq record to its template."""
        if record.dataset is DatasetId.SHORT:
            return self.short_templates[record.template_index]
        return self.long_templates[record.template_index]

    def packet_count(self) -> int:
        """Packets the decompressed trace will contain."""
        return sum(self.template_for(record).n for record in self.time_seq)

    def packets_for(self, record: TimeSeqRecord) -> int:
        """Packets the given time-seq record stands for (its template's n)."""
        return self.template_for(record).n

    def time_bounds(self) -> tuple[float, float] | None:
        """(earliest, latest) time-seq timestamp, or None when empty.

        The archive's segment index stores these bounds so time-range
        queries can skip whole segments without decoding them.
        """
        if not self.time_seq:
            return None
        timestamps = [record.timestamp for record in self.time_seq]
        return min(timestamps), max(timestamps)

    def select(
        self, records: Iterable[TimeSeqRecord], name: str | None = None
    ) -> "CompressedTrace":
        """A new trace holding only ``records`` (from this trace's time-seq).

        Referenced templates and addresses are copied and re-indexed
        densely; everything unreferenced is dropped.  This is the dataset
        side of archive filtering: a query engine selects matching
        time-seq records and this builds the self-contained sub-trace.
        ``original_packet_count`` becomes the selected flows' packet total
        (the only packet accounting that survives a flow-level subset).
        """
        subset = CompressedTrace(name=name or self.name)
        short_map: dict[int, int] = {}
        long_map: dict[int, int] = {}
        for record in records:
            if record.dataset is DatasetId.SHORT:
                index = short_map.get(record.template_index)
                if index is None:
                    index = len(subset.short_templates)
                    subset.short_templates.append(
                        self.short_templates[record.template_index]
                    )
                    short_map[record.template_index] = index
            else:
                index = long_map.get(record.template_index)
                if index is None:
                    index = len(subset.long_templates)
                    subset.long_templates.append(
                        self.long_templates[record.template_index]
                    )
                    long_map[record.template_index] = index
            address_index = subset.addresses.intern(
                self.addresses.lookup(record.address_index)
            )
            subset.time_seq.append(
                TimeSeqRecord(
                    timestamp=record.timestamp,
                    dataset=record.dataset,
                    template_index=index,
                    address_index=address_index,
                    rtt=record.rtt,
                )
            )
            subset.original_packet_count += self.packets_for(record)
        return subset

    def sorted_time_seq(self) -> list[TimeSeqRecord]:
        """time-seq entries sorted by timestamp (the decompressor's order).

        "Note that this dataset is sorted by the time-stamp data field."
        """
        return sorted(self.time_seq, key=lambda r: r.timestamp)

    def validate(self) -> None:
        """Check cross-dataset referential integrity; raise on corruption."""
        short_count, long_count = self.template_counts()
        address_count = len(self.addresses)
        for position, record in enumerate(self.time_seq):
            limit = short_count if record.dataset is DatasetId.SHORT else long_count
            if record.template_index >= limit:
                raise ValueError(
                    f"time-seq[{position}]: template index "
                    f"{record.template_index} out of range for "
                    f"{record.dataset.value} dataset of size {limit}"
                )
            if record.address_index >= address_count:
                raise ValueError(
                    f"time-seq[{position}]: address index "
                    f"{record.address_index} out of range ({address_count})"
                )
