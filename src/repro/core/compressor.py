"""The online flow-clustering compressor (section 3).

The algorithm, as the paper describes it:

1. Packets stream in.  A packet whose 5-tuple is unknown opens a new node
   at the end of the active-flow linked list.
2. Each packet is mapped to its ``f(p_i)`` value (section 2) and appended
   to its node's packet sub-list.
3. When a FIN or RST arrives (or the trace ends), the flow closes:

   * **short flow** (``2..50`` packets by default) — search the
     ``short-flows-template`` dataset for an identical or similar
     (equation 4) vector of the same length; on a miss, the vector founds
     a new template ("the center of a new cluster"); either way a
     ``time-seq`` record is written with the flow's first timestamp, the
     template index, its estimated RTT and the destination-address index.
   * **long flow** (``> 50`` packets) — no search ("the probability of
     find two identical V_f vectors is really very low"); the flow's
     values *and inter-packet times* go verbatim into
     ``long-flows-template``.

The template search is accelerated with a by-length bucket index — the
paper's search is also restricted to same-``n`` templates since distance
is only defined for equal lengths.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CompressionError
from repro.core.linkedlist import ActiveFlowList, FlowNode
from repro.flows.characterize import CharacterizationConfig, packet_value
from repro.flows.model import Direction, FlowPacket
from repro.flows.distance import (
    MAX_PACKET_DISTANCE,
    SIMILARITY_PERCENT,
    vector_distance,
    similarity_threshold,
)
from repro.net.packet import PacketRecord
from repro.net.tcp import is_flow_terminator
from repro.trace.trace import Trace

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class CompressorConfig:
    """Tunables of the compressor; defaults are the paper's constants."""

    short_flow_max: int = 50
    similarity_percent: float = SIMILARITY_PERCENT
    per_packet_max: int = MAX_PACKET_DISTANCE
    characterization: CharacterizationConfig = CharacterizationConfig()
    idle_timeout: float = 64.0

    def __post_init__(self) -> None:
        if self.short_flow_max < 1:
            raise ValueError(f"short_flow_max must be >= 1: {self.short_flow_max}")
        if self.idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {self.idle_timeout}")


@dataclass
class CompressorStats:
    """Counters for introspection and the evaluation harness.

    Plain ints on purpose: these are bumped on the per-packet hot path,
    so they must stay cheaper than any registry lookup.  The streaming
    front-end folds them into the :mod:`repro.obs` registry once, at
    ``finish()`` — the counters stay exact and the hot path stays free.
    ``flows_evicted`` counts flows closed by the idle-eviction scan (a
    subset of ``flows_closed``); both engines maintain it identically,
    which the engine-parity metrics test pins.
    """

    packets: int = 0
    flows_closed: int = 0
    short_flows: int = 0
    long_flows: int = 0
    template_hits: int = 0
    template_misses: int = 0
    flows_evicted: int = 0

    def hit_ratio(self) -> float:
        """Fraction of short flows absorbed by an existing template."""
        total = self.template_hits + self.template_misses
        return self.template_hits / total if total else 0.0

    def publish(self, registry) -> None:
        """Fold these totals into a :class:`~repro.obs.MetricsRegistry`.

        Called exactly once per compression run by whichever front-end
        owns the run (batch ``compress_trace``, the streaming
        compressor's ``finish``, or a parallel shard) — never by the
        engine itself, so wrapped engines cannot double-publish.
        """
        registry.counter("compress.packets", "packets compressed").inc(
            self.packets
        )
        registry.counter("compress.flows", "flows closed (short + long)").inc(
            self.flows_closed
        )
        registry.counter(
            "compress.flows.short", "flows routed to the short-flow dataset"
        ).inc(self.short_flows)
        registry.counter(
            "compress.flows.long", "flows routed to the long-flow dataset"
        ).inc(self.long_flows)
        registry.counter(
            "compress.template.hits", "short flows absorbed by an existing template"
        ).inc(self.template_hits)
        registry.counter(
            "compress.template.misses", "short flows founding a new template"
        ).inc(self.template_misses)
        registry.counter(
            "compress.evictions", "flows closed by the idle-eviction scan"
        ).inc(self.flows_evicted)


class TemplateMatcher:
    """Equation-4 similarity search over a short-template dataset.

    Buckets template indices by vector length — distance is only defined
    for equal-length vectors — and scans a bucket in insertion order, so
    search results (and therefore template numbering) are deterministic.
    Shared by the compressor's close path and the parallel shard merge.
    """

    def __init__(
        self, templates: list[ShortFlowTemplate], config: CompressorConfig
    ) -> None:
        self._templates = templates
        self._config = config
        self._by_length: dict[int, list[int]] = defaultdict(list)
        for index, template in enumerate(templates):
            self._by_length[template.n].append(index)

    def find(self, vector: tuple[int, ...]) -> int | None:
        """First template of the same length within d_max (eq. 4).

        Exact duplicates always merge, even at a 0% threshold where the
        strict "lower than" rule would otherwise reject them.
        """
        threshold = similarity_threshold(
            len(vector), self._config.similarity_percent, self._config.per_packet_max
        )
        for index in self._by_length.get(len(vector), ()):
            center = self._templates[index].values
            distance = vector_distance(center, vector)
            if distance == 0 or distance < threshold:
                return index
        return None

    def add(self, vector: tuple[int, ...]) -> int:
        """Append ``vector`` as a new template; returns its index."""
        index = len(self._templates)
        self._templates.append(ShortFlowTemplate(vector))
        self._by_length[len(vector)].append(index)
        return index


class FlowClusterCompressor:
    """Streaming compressor; feed packets, then :meth:`finish`."""

    def __init__(
        self,
        config: CompressorConfig | None = None,
        name: str = "compressed",
        base_time: float | None = None,
    ) -> None:
        self.config = config or CompressorConfig()
        self.stats = CompressorStats()
        self._active = ActiveFlowList()
        self._last_seen: dict = {}
        self._output = CompressedTrace(name=name)
        self._matcher = TemplateMatcher(self._output.short_templates, self.config)
        self._base_time = base_time
        # An explicit base is an external clock (archive epoch, shard
        # anchor) and stays fixed; an auto-derived base must track the
        # *earliest* timestamp, not the first packet seen — mildly
        # out-of-order traces would otherwise clamp early flows to 0
        # and reorder them on decompression.
        self._explicit_base = base_time is not None
        self._earliest_seen: float | None = None
        self._finished = False

    @property
    def output(self) -> CompressedTrace:
        """The datasets built so far (complete only after :meth:`finish`)."""
        return self._output

    @property
    def active_flows(self) -> int:
        """Flows currently open — the streaming working-set size."""
        return len(self._active)

    def add_packet(self, packet: PacketRecord) -> None:
        """Process one packet of the input trace (timestamp order)."""
        if self._finished:
            raise CompressionError("compressor already finished")
        if self._base_time is None:
            self._base_time = packet.timestamp
        elif not self._explicit_base and packet.timestamp < self._base_time:
            self._rebase(packet.timestamp)
        key = packet.five_tuple().canonical()
        self._expire_idle(packet.timestamp, exclude=key)
        self.stats.packets += 1

        node = self._active.find(key)
        if node is None:
            node = self._active.insert(packet.five_tuple(), packet.timestamp)

        direction = (
            Direction.CLIENT_TO_SERVER
            if packet.five_tuple() == node.client_tuple
            else Direction.SERVER_TO_CLIENT
        )
        previous = node.entries[-1].direction if node.entries else None
        value = packet_value(
            FlowPacket(packet, direction), previous, self.config.characterization
        )
        node.append_packet(packet.timestamp, value, direction)
        self._last_seen[node.key] = packet.timestamp
        if self._earliest_seen is None or packet.timestamp < self._earliest_seen:
            self._earliest_seen = packet.timestamp

        if is_flow_terminator(packet.flags):
            self._active.remove(node)
            self._last_seen.pop(node.key, None)
            self._close_flow(node)

    def finish(self) -> CompressedTrace:
        """Flush open flows and return the completed datasets."""
        if not self._finished:
            for node in self._active.pop_all():
                self._last_seen.pop(node.key, None)
                self._close_flow(node)
            self._finished = True
        return self._output

    # -- internals -------------------------------------------------------

    def _rebase(self, new_base: float) -> None:
        """Lower the auto-derived base to a newly seen earlier timestamp.

        Flows already closed were recorded against the old (too late)
        base; shift their time-seq offsets so every record stays
        relative to the trace's true earliest packet.  Mild reordering
        only ever lowers the base within the first reorder window, so
        this rewrite is rare and cheap in practice.
        """
        delta = self._base_time - new_base
        self._base_time = new_base
        self._output.time_seq[:] = [
            replace(record, timestamp=record.timestamp + delta)
            for record in self._output.time_seq
        ]

    def _expire_idle(self, now: float, exclude=None) -> None:
        # ``_earliest_seen`` is a lower bound on every live flow's last
        # activity (updates only raise values), so when even the bound is
        # fresh no flow can be stale and the O(active-flows) scan is
        # skipped — the common case on dense traces.
        #
        # ``exclude`` is the incoming packet's flow key: that flow is
        # provably active *at* ``now``, so even when its previous packet
        # sits just past the idle horizon it must not be evicted and
        # split in two — eviction applies strictly to flows other than
        # the one delivering the clock tick.  Trade-off: a flow resuming
        # after an arbitrarily long quiet spell stays whole, and a long
        # flow's in-flow gap then saturates at the codec's u16 bound
        # (6.5535 s) like any other over-limit gap — timing fidelity
        # for such outliers is bounded by the codec, not by a split.
        timeout = self.config.idle_timeout
        if self._earliest_seen is None or now - self._earliest_seen <= timeout:
            return
        stale = [
            key
            for key, last in self._last_seen.items()
            if now - last > timeout and key != exclude
        ]
        for key in stale:
            node = self._active.find(key)
            if node is not None:
                self._active.remove(node)
                self.stats.flows_evicted += 1
                self._close_flow(node)
            del self._last_seen[key]
        if stale and _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "idle eviction at t=%.6f: closed %d stale flow(s), %d active",
                now,
                len(stale),
                len(self._active),
            )
        self._earliest_seen = min(self._last_seen.values(), default=None)

    def _close_flow(self, node: FlowNode) -> None:
        """Route a finished flow to the short or long dataset."""
        if node.packet_count == 0:
            return
        self.stats.flows_closed += 1
        if node.packet_count <= self.config.short_flow_max:
            self._close_short(node)
        else:
            self._close_long(node)

    def _close_short(self, node: FlowNode) -> None:
        self.stats.short_flows += 1
        vector = node.vector()
        index = self._matcher.find(vector)
        if index is None:
            index = self._matcher.add(vector)
            self.stats.template_misses += 1
        else:
            self.stats.template_hits += 1
        self._append_time_seq(node, DatasetId.SHORT, index, rtt=node.estimate_rtt())

    def _close_long(self, node: FlowNode) -> None:
        self.stats.long_flows += 1
        template = LongFlowTemplate(
            values=node.vector(), gaps=tuple(node.inter_packet_gaps())
        )
        index = len(self._output.long_templates)
        self._output.long_templates.append(template)
        self._append_time_seq(node, DatasetId.LONG, index, rtt=0.0)

    def _append_time_seq(
        self, node: FlowNode, dataset: DatasetId, template_index: int, rtt: float
    ) -> None:
        base = self._base_time if self._base_time is not None else 0.0
        address_index = self._output.addresses.intern(node.dst_ip)
        # An auto-derived base tracks the earliest packet seen, so the
        # offset is never negative; only an explicit base (archive epoch,
        # shard anchor) can postdate a flow start, and clamping to that
        # externally chosen epoch is the documented behavior.
        self._output.time_seq.append(
            TimeSeqRecord(
                timestamp=max(0.0, node.first_timestamp - base),
                dataset=dataset,
                template_index=template_index,
                address_index=address_index,
                rtt=max(0.0, rtt),
            )
        )
        self._output.original_packet_count += node.packet_count


def compress_trace(
    trace: Trace | Iterable[PacketRecord], config: CompressorConfig | None = None
) -> CompressedTrace:
    """Compress a whole trace in one call."""
    from repro.obs import current as obs_current

    name = trace.name if isinstance(trace, Trace) else "compressed"
    compressor = FlowClusterCompressor(config, name=name)
    packets = trace.packets if isinstance(trace, Trace) else trace
    for packet in packets:
        compressor.add_packet(packet)
    output = compressor.finish()
    # This front-end owns the run, so the batch path reports the same
    # compress.* counters the streaming front-end does.
    compressor.stats.publish(obs_current())
    return output
