"""The decompression algorithm (section 4).

The decompressor walks ``time-seq`` in timestamp order; for each flow it
resolves the template (short or long), decodes every ``f(p_i)`` back into
its (flag class, dependence, payload class) triple, and re-synthesizes
packets:

* **timing** — short flows get their stored per-flow RTT: a *dependent*
  packet (g2 = 0) is emitted one RTT after its predecessor, a
  *non-dependent* packet back-to-back (a small serialization gap); long
  flows replay their stored inter-packet times.
* **direction** — the dependence bits reconstruct the turn-taking: g2 = 0
  means the direction flipped relative to the previous packet, g2 = 1
  means it stayed.  The first packet travels client → server.
* **addresses** — destination comes from the ``address`` dataset; "for
  source address, we assign randomly an IP class B or C address".
* **ports** — "a random value between 1024 and 65000 to client port
  number, and to the server side the value 80".
* **flags / sizes** — from g1 and g3 (payload classes map to
  representative sizes).

Packets from all flows are merged by timestamp, replacing the paper's
linked-list insertion sort with an equivalent heap merge.

This module holds the *shared* re-synthesis primitives — the per-flow
:class:`FlowSpec` (everything one flow needs to replay), the stable
:func:`flow_seed` mix, :func:`flow_specs` (dataset walk in timestamp
order) and :func:`synthesize_flow` (one flow's packet generator) — plus
the batch :func:`decompress_trace` entry point.  The bounded-memory
streaming engine in :mod:`repro.core.replay` drives the same primitives
through a k-way heap merge instead of a global sort, which is why the
two paths are byte-identical.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable, Iterable, Iterator

from repro.core.codec import (
    GAP_UNITS_PER_SECOND,
    RTT_UNITS_PER_SECOND,
    TIMESTAMP_UNITS_PER_SECOND,
    quantize_gap,
    quantize_rtt,
    quantize_timestamp,
)
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError
from repro.flows.characterize import CharacterizationConfig, decode_packet_value
from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.ip import random_class_b_or_c
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN, FlagClass
from repro.trace.trace import Trace

CLIENT_PORT_MIN = 1024
CLIENT_PORT_MAX = 65000
SERVER_PORT = 80

_FLAGS_FOR_CLASS = {
    int(FlagClass.SYN): TCP_SYN,
    int(FlagClass.SYN_ACK): TCP_SYN | TCP_ACK,
    int(FlagClass.ACK): TCP_ACK,
    int(FlagClass.FIN_RST): TCP_FIN | TCP_ACK,
}

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF
_SEED_LAYOUT = struct.Struct(">QIBIIII")
"""Struct-packed flow identity fed to blake2b: config seed (u64),
timestamp units (u32), long flag (u8), template index (u32), server
address (u32), RTT units (u32), occurrence ordinal (u32)."""


def flow_seed(
    config_seed: int,
    timestamp_units: int,
    is_long: bool,
    template_index: int,
    server_ip: int,
    rtt_units: int,
    occurrence: int,
) -> int:
    """Deterministic per-flow RNG seed: blake2b over the packed identity.

    Decompression promises to be a pure function of (datasets, config).
    Python's built-in ``hash()`` of a mixed tuple cannot carry that
    guarantee — its integer mixing is an implementation detail free to
    change between interpreter versions, and nearby tuples collide
    trivially — so the identity is struct-packed and run through a real
    hash.  blake2b is part of ``hashlib``'s guaranteed algorithms, so
    the same datasets replay to the same bytes on every platform and
    interpreter.

    ``occurrence`` disambiguates flows whose identity fields collide
    (same start time, template, destination and RTT): the n-th such
    clone gets ordinal n, in ``time-seq`` timestamp order.
    """
    payload = _SEED_LAYOUT.pack(
        config_seed & _MASK64,
        timestamp_units & _MASK32,
        1 if is_long else 0,
        template_index & _MASK32,
        server_ip & _MASK32,
        rtt_units & _MASK32,
        occurrence & _MASK32,
    )
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class DecompressorConfig:
    """Tunables of the decompressor.

    ``payload_small`` / ``payload_large`` are the representative sizes for
    the g3 = 1 and g3 = 2 payload classes (the compressed form keeps only
    the class); ``back_to_back_gap`` is the emission gap of non-dependent
    packets; ``default_rtt`` replaces a missing (zero) short-flow RTT.
    """

    payload_small: int = 300
    payload_large: int = 1460
    back_to_back_gap: float = 0.0002
    default_rtt: float = 0.050
    seed: int = 20050320
    characterization: CharacterizationConfig = CharacterizationConfig()

    def payload_for_class(self, g3: int) -> int:
        """Representative payload bytes of a g3 class."""
        if g3 == 0:
            return 0
        if g3 == 1:
            return self.payload_small
        if g3 == 2:
            return self.payload_large
        raise ValueError(f"invalid payload class: {g3}")


@dataclass(frozen=True, slots=True)
class FlowSpec:
    """One flow, resolved and ready to replay.

    ``start`` and ``rtt`` are already quantized to the codec's on-disk
    resolution (so in-memory and serialized containers replay
    identically); ``seed`` is the flow's :func:`flow_seed`; ``order`` is
    a strictly increasing tiebreak tuple — ``(flow position,)`` for a
    single container, ``(segment, flow position)`` across an archive —
    that makes the merge order total and reproduces the batch path's
    stable sort.
    """

    start: float
    rtt: float
    is_long: bool
    template: ShortFlowTemplate | LongFlowTemplate
    server_ip: int
    seed: int
    order: tuple[int, ...]


def flow_specs(
    compressed: CompressedTrace,
    config: DecompressorConfig,
    *,
    order_prefix: tuple[int, ...] = (),
    record_filter: Callable[[TimeSeqRecord], bool] | None = None,
) -> Iterator[FlowSpec]:
    """Resolve ``time-seq`` into replayable specs, in timestamp order.

    ``record_filter`` drops records from the output *without* changing
    the surviving flows' seeds: occurrence ordinals are counted over the
    full record walk, so a filtered replay (the query engine's packet
    stream) emits exactly the packets the unfiltered replay would.
    Start timestamps of the yielded specs are nondecreasing — the
    invariant the streaming merge's admission logic relies on.
    """
    occurrences: dict[tuple, int] = {}
    for index, record in enumerate(compressed.sorted_time_seq()):
        timestamp_units = quantize_timestamp(record.timestamp)
        rtt_units = quantize_rtt(record.rtt)
        is_long = record.dataset is DatasetId.LONG
        try:
            server_ip = compressed.addresses.lookup(record.address_index)
        except IndexError as exc:  # validate() should have caught this
            raise CodecError(
                f"dangling address index: {record.address_index}"
            ) from exc
        identity = (
            timestamp_units,
            is_long,
            record.template_index,
            server_ip,
            rtt_units,
        )
        occurrence = occurrences.get(identity, 0)
        occurrences[identity] = occurrence + 1
        if record_filter is not None and not record_filter(record):
            continue
        yield FlowSpec(
            start=timestamp_units / TIMESTAMP_UNITS_PER_SECOND,
            rtt=rtt_units / RTT_UNITS_PER_SECOND,
            is_long=is_long,
            template=compressed.template_for(record),
            server_ip=server_ip,
            seed=flow_seed(config.seed, *identity, occurrence),
            order=(*order_prefix, index),
        )


def synthesize_flow(
    spec: FlowSpec, config: DecompressorConfig
) -> Iterator[PacketRecord]:
    """Re-synthesize one flow's packets lazily, in global merge order.

    Per-flow timestamps are nondecreasing (every step adds a
    non-negative gap), which is what lets the streaming merge treat each
    flow as a sorted run.  Nondecreasing is not strict: a long flow
    whose stored gap quantizes to zero puts several packets on one
    timestamp, and a direction flip inside such a tie makes the rest of
    :func:`merge_sort_key` *decrease* mid-flow.  The batch path's global
    sort reorders those ties; a bounded-memory heap merge cannot (it
    holds one packet per flow).  So ties are reconciled here, at the
    source: packets sharing a timestamp are buffered and yielded in
    stable :func:`merge_sort_key` order, making every flow a genuinely
    sorted run.  The batch output is unchanged (its stable sort already
    ordered ties this way); the streaming merge becomes byte-identical
    to it for tied flows too.  Memory cost is the largest same-timestamp
    group, not the flow.
    """
    group: list[PacketRecord] = []
    for packet in _synthesize_flow_packets(spec, config):
        if group and packet.timestamp != group[-1].timestamp:
            if len(group) > 1:
                group.sort(key=merge_sort_key)
            yield from group
            group.clear()
        group.append(packet)
    if len(group) > 1:
        group.sort(key=merge_sort_key)
    yield from group


def _synthesize_flow_packets(
    spec: FlowSpec, config: DecompressorConfig
) -> Iterator[PacketRecord]:
    """The raw per-packet synthesis, in template (generation) order."""
    rng = random.Random(spec.seed)
    client_ip = random_class_b_or_c(rng)
    client_port = rng.randint(CLIENT_PORT_MIN, CLIENT_PORT_MAX)

    template = spec.template
    rtt = spec.rtt if spec.rtt > 0 else config.default_rtt

    timestamp = spec.start
    client_to_server = True  # first packet: client opens the flow
    client_seq = rng.getrandbits(32)
    server_seq = rng.getrandbits(32)

    for position, value in enumerate(template.values):
        g1, g2, g3 = decode_packet_value(value, config.characterization)
        if position > 0:
            if spec.is_long:
                # Quantize to the codec's resolution so in-memory and
                # serialized containers decompress identically.
                timestamp += (
                    quantize_gap(template.gaps[position - 1])
                    / GAP_UNITS_PER_SECOND
                )
            elif g2 == 0:  # dependent: waited one RTT on the opposite node
                timestamp += rtt
            else:  # back-to-back with its predecessor
                timestamp += config.back_to_back_gap
            if g2 == 0:
                client_to_server = not client_to_server

        payload = config.payload_for_class(g3)
        flags = _FLAGS_FOR_CLASS[g1]
        if client_to_server:
            packet = PacketRecord(
                timestamp=timestamp,
                src_ip=client_ip,
                dst_ip=spec.server_ip,
                src_port=client_port,
                dst_port=SERVER_PORT,
                flags=flags,
                payload_len=payload,
                seq=client_seq,
                ack=server_seq,
                ip_id=rng.getrandbits(16),
                ttl=plausible_ttl(client_ip),
                window=plausible_window(client_ip),
            )
            client_seq = (client_seq + max(payload, 1)) & 0xFFFFFFFF
        else:
            packet = PacketRecord(
                timestamp=timestamp,
                src_ip=spec.server_ip,
                dst_ip=client_ip,
                src_port=SERVER_PORT,
                dst_port=client_port,
                flags=flags,
                payload_len=payload,
                seq=server_seq,
                ack=client_seq,
                ip_id=rng.getrandbits(16),
                ttl=plausible_ttl(spec.server_ip),
                window=plausible_window(spec.server_ip),
            )
            server_seq = (server_seq + max(payload, 1)) & 0xFFFFFFFF
        yield packet


def merge_sort_key(packet: PacketRecord) -> tuple:
    """The global packet order of a decompressed trace.

    Both the batch sort and the streaming heap merge order packets by
    this key (the merge adds the ``FlowSpec.order`` + packet-position
    tiebreak, which reproduces the batch path's stable sort exactly).
    """
    return (packet.timestamp, packet.src_ip, packet.src_port, packet.dst_ip, packet.seq)


def decompress_trace(
    compressed: CompressedTrace, config: DecompressorConfig | None = None
) -> Trace:
    """Reconstruct a synthetic trace from the four datasets.

    The result is lossy by design: per-flow identities are re-drawn, but
    flag sequences, dependence structure, payload classes, destination
    addresses, flow timing skeletons and flow ordering are preserved.

    Decompression is a pure function of (datasets, config): timestamps
    and RTTs are quantized to the on-disk codec's resolution and each
    flow's randomness is seeded with :func:`flow_seed` — a blake2b mix
    of the flow's own record content — so decompressing an in-memory
    container and its serialized round-trip produce byte-identical
    traces, on any interpreter version or platform.

    This is the batch path: every packet is materialized, then sorted.
    :class:`repro.core.replay.StreamingDecompressor` emits the identical
    packet sequence in bounded memory.
    """
    config = config or DecompressorConfig()
    compressed.validate()

    merged: list[PacketRecord] = []
    for spec in flow_specs(compressed, config):
        merged.extend(synthesize_flow(spec, config))

    merged.sort(key=merge_sort_key)
    return Trace(merged, name=f"{compressed.name}-decompressed")
