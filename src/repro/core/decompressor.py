"""The decompression algorithm (section 4).

The decompressor walks ``time-seq`` in timestamp order; for each flow it
resolves the template (short or long), decodes every ``f(p_i)`` back into
its (flag class, dependence, payload class) triple, and re-synthesizes
packets:

* **timing** — short flows get their stored per-flow RTT: a *dependent*
  packet (g2 = 0) is emitted one RTT after its predecessor, a
  *non-dependent* packet back-to-back (a small serialization gap); long
  flows replay their stored inter-packet times.
* **direction** — the dependence bits reconstruct the turn-taking: g2 = 0
  means the direction flipped relative to the previous packet, g2 = 1
  means it stayed.  The first packet travels client → server.
* **addresses** — destination comes from the ``address`` dataset; "for
  source address, we assign randomly an IP class B or C address".
* **ports** — "a random value between 1024 and 65000 to client port
  number, and to the server side the value 80".
* **flags / sizes** — from g1 and g3 (payload classes map to
  representative sizes).

Packets from all flows are merged by timestamp, replacing the paper's
linked-list insertion sort with an equivalent heap merge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.codec import (
    GAP_UNITS_PER_SECOND,
    RTT_UNITS_PER_SECOND,
    TIMESTAMP_UNITS_PER_SECOND,
    quantize_gap,
    quantize_rtt,
    quantize_timestamp,
)
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError
from repro.flows.characterize import CharacterizationConfig, decode_packet_value
from repro.net.hostprops import plausible_ttl, plausible_window
from repro.net.ip import random_class_b_or_c
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN, FlagClass
from repro.trace.trace import Trace

CLIENT_PORT_MIN = 1024
CLIENT_PORT_MAX = 65000
SERVER_PORT = 80

_FLAGS_FOR_CLASS = {
    int(FlagClass.SYN): TCP_SYN,
    int(FlagClass.SYN_ACK): TCP_SYN | TCP_ACK,
    int(FlagClass.ACK): TCP_ACK,
    int(FlagClass.FIN_RST): TCP_FIN | TCP_ACK,
}


@dataclass(frozen=True)
class DecompressorConfig:
    """Tunables of the decompressor.

    ``payload_small`` / ``payload_large`` are the representative sizes for
    the g3 = 1 and g3 = 2 payload classes (the compressed form keeps only
    the class); ``back_to_back_gap`` is the emission gap of non-dependent
    packets; ``default_rtt`` replaces a missing (zero) short-flow RTT.
    """

    payload_small: int = 300
    payload_large: int = 1460
    back_to_back_gap: float = 0.0002
    default_rtt: float = 0.050
    seed: int = 20050320
    characterization: CharacterizationConfig = CharacterizationConfig()

    def payload_for_class(self, g3: int) -> int:
        """Representative payload bytes of a g3 class."""
        if g3 == 0:
            return 0
        if g3 == 1:
            return self.payload_small
        if g3 == 2:
            return self.payload_large
        raise ValueError(f"invalid payload class: {g3}")


def _flow_packets(
    record: TimeSeqRecord,
    template: ShortFlowTemplate | LongFlowTemplate,
    server_ip: int,
    rng: random.Random,
    config: DecompressorConfig,
) -> list[PacketRecord]:
    """Re-synthesize all packets of one flow."""
    client_ip = random_class_b_or_c(rng)
    client_port = rng.randint(CLIENT_PORT_MIN, CLIENT_PORT_MAX)

    is_long = isinstance(template, LongFlowTemplate)
    rtt = record.rtt if record.rtt > 0 else config.default_rtt

    packets: list[PacketRecord] = []
    timestamp = record.timestamp
    client_to_server = True  # first packet: client opens the flow
    client_seq = rng.getrandbits(32)
    server_seq = rng.getrandbits(32)

    for position, value in enumerate(template.values):
        g1, g2, g3 = decode_packet_value(value, config.characterization)
        if position > 0:
            if is_long:
                # Quantize to the codec's resolution so in-memory and
                # serialized containers decompress identically.
                timestamp += (
                    quantize_gap(template.gaps[position - 1])
                    / GAP_UNITS_PER_SECOND
                )
            elif g2 == 0:  # dependent: waited one RTT on the opposite node
                timestamp += rtt
            else:  # back-to-back with its predecessor
                timestamp += config.back_to_back_gap
            if g2 == 0:
                client_to_server = not client_to_server

        payload = config.payload_for_class(g3)
        flags = _FLAGS_FOR_CLASS[g1]
        if client_to_server:
            packet = PacketRecord(
                timestamp=timestamp,
                src_ip=client_ip,
                dst_ip=server_ip,
                src_port=client_port,
                dst_port=SERVER_PORT,
                flags=flags,
                payload_len=payload,
                seq=client_seq,
                ack=server_seq,
                ip_id=rng.getrandbits(16),
                ttl=plausible_ttl(client_ip),
                window=plausible_window(client_ip),
            )
            client_seq = (client_seq + max(payload, 1)) & 0xFFFFFFFF
        else:
            packet = PacketRecord(
                timestamp=timestamp,
                src_ip=server_ip,
                dst_ip=client_ip,
                src_port=SERVER_PORT,
                dst_port=client_port,
                flags=flags,
                payload_len=payload,
                seq=server_seq,
                ack=client_seq,
                ip_id=rng.getrandbits(16),
                ttl=plausible_ttl(server_ip),
                window=plausible_window(server_ip),
            )
            server_seq = (server_seq + max(payload, 1)) & 0xFFFFFFFF
        packets.append(packet)
    return packets


def decompress_trace(
    compressed: CompressedTrace, config: DecompressorConfig | None = None
) -> Trace:
    """Reconstruct a synthetic trace from the four datasets.

    The result is lossy by design: per-flow identities are re-drawn, but
    flag sequences, dependence structure, payload classes, destination
    addresses, flow timing skeletons and flow ordering are preserved.

    Decompression is a pure function of (datasets, config): timestamps
    and RTTs are quantized to the on-disk codec's resolution and each
    flow's randomness is seeded from its own record content, so
    decompressing an in-memory container and its serialized round-trip
    produce byte-identical traces.
    """
    config = config or DecompressorConfig()
    compressed.validate()

    merged: list[PacketRecord] = []
    occurrences: dict[tuple, int] = {}
    for record in compressed.sorted_time_seq():
        timestamp_units = quantize_timestamp(record.timestamp)
        rtt_units = quantize_rtt(record.rtt)
        identity = (
            timestamp_units,
            record.dataset is DatasetId.LONG,
            record.template_index,
            record.address_index,
            rtt_units,
        )
        occurrence = occurrences.get(identity, 0)
        occurrences[identity] = occurrence + 1
        flow_rng = random.Random(
            hash((config.seed,) + identity + (occurrence,))
        )
        quantized = TimeSeqRecord(
            timestamp=timestamp_units / TIMESTAMP_UNITS_PER_SECOND,
            dataset=record.dataset,
            template_index=record.template_index,
            address_index=record.address_index,
            rtt=rtt_units / RTT_UNITS_PER_SECOND,
        )
        template = compressed.template_for(record)
        try:
            server_ip = compressed.addresses.lookup(record.address_index)
        except IndexError as exc:  # validate() should have caught this
            raise CodecError(f"dangling address index: {record.address_index}") from exc
        merged.extend(
            _flow_packets(quantized, template, server_ip, flow_rng, config)
        )

    merged.sort(
        key=lambda p: (p.timestamp, p.src_ip, p.src_port, p.dst_ip, p.seq)
    )
    return Trace(merged, name=f"{compressed.name}-decompressed")
