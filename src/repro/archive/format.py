"""The ``.fctca`` segmented archive container.

Layout::

    header   : magic "FCTA", version, epoch (f64 seconds)
    segments : N back-to-back ``.fctc`` containers (codec.write_compressed)
    footer   : magic "FIDX", entry count, one index entry per segment
    trailer  : footer offset (u64), footer length (u32), magic "AEND"

The fixed-size trailer at the end of the file locates the footer, so a
reader seeks twice (trailer, footer) and then knows every segment's byte
range and coarse statistics without touching segment data.  Appending
truncates the old footer, writes new segments in its place, and rewrites
footer + trailer — segment bytes are never moved.

Two archive generations exist (``docs/FORMAT.md`` is the normative
spec): **v1** footers carry no backend information; **v2** footers (the
writer's default) add four backend-tag bytes per index entry recording
which :mod:`repro.core.backends` codec stored each section of the
segment's ``.fctc`` container.  The reader accepts both, and appending
to a v1 archive rewrites its footer as v2 in place — segment bytes are
never touched, so v1 segments keep decoding byte-identically.

Each :class:`SegmentIndexEntry` carries what the query planner needs to
*rule a segment out* without decoding it: the segment's byte range, its
time-seq timestamp bounds, flow/packet counts, per-flow packet-count and
RTT bounds, and an :class:`AddressSummary` of the destinations it
references (an exact sorted u32 set for small segments, a Bloom filter
above :data:`EXACT_SUMMARY_MAX` uniques).  Index checks are conservative:
a ``False`` is a guarantee the segment holds no match, a ``True`` only a
possibility.

All timestamps in the index are stored in the codec's 100 µs units and
are relative to the archive ``epoch`` — the same clock the segments'
time-seq records use.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable
from zlib import crc32

from repro.core.codec import quantize_rtt, quantize_timestamp
from repro.core.datasets import CompressedTrace, DatasetId
from repro.core.errors import ArchiveError

ARCHIVE_MAGIC = b"FCTA"
ARCHIVE_VERSION_V1 = 1  # legacy: no per-segment backend tags in the index
ARCHIVE_VERSION_V2 = 2  # four section-backend tag bytes per index entry
ARCHIVE_VERSION = ARCHIVE_VERSION_V2  # what the writer emits
FOOTER_MAGIC = b"FIDX"
TRAILER_MAGIC = b"AEND"

HEADER = struct.Struct(">4sB3xd")  # magic, version, pad, epoch seconds
TRAILER = struct.Struct(">QI4s")  # footer offset, footer length, magic
_FOOTER_HEAD = struct.Struct(">4sI")  # magic, entry count
_ENTRY_FIXED = struct.Struct(">QQIIIIIIIHHIBI")
_ENTRY_BACKENDS = struct.Struct(">4B")  # v2: one backend tag per section

RAW_SECTION_BACKENDS = (0, 0, 0, 0)
"""The tag tuple of an untagged (v1) segment: every section is raw."""

EXACT_SUMMARY_MAX = 512
"""Unique destinations up to which the summary stays an exact sorted set."""

BLOOM_BITS_PER_ADDRESS = 10
BLOOM_HASHES = 4

SUMMARY_EXACT = 0
SUMMARY_BLOOM = 1


def _bloom_bits(address: int, bit_count: int) -> Iterable[int]:
    key = struct.pack(">I", address)
    h1 = crc32(key)
    h2 = crc32(key, 0x9E3779B9) | 1  # odd step so all bits stay reachable
    return ((h1 + i * h2) % bit_count for i in range(BLOOM_HASHES))


@dataclass(frozen=True)
class AddressSummary:
    """Compact may-contain summary of a segment's destination addresses.

    ``SUMMARY_EXACT`` payloads are a sorted tuple of u32 addresses —
    membership and prefix-range checks are exact.  ``SUMMARY_BLOOM``
    payloads are a Bloom filter: membership may report false positives
    (never false negatives) and prefix checks degrade to "maybe".
    """

    mode: int
    addresses: tuple[int, ...] = ()
    bloom: bytes = b""

    @classmethod
    def build(
        cls, addresses: Iterable[int], exact_max: int = EXACT_SUMMARY_MAX
    ) -> "AddressSummary":
        unique = sorted(set(addresses))
        if len(unique) <= exact_max:
            return cls(mode=SUMMARY_EXACT, addresses=tuple(unique))
        bit_count = max(8, len(unique) * BLOOM_BITS_PER_ADDRESS)
        bit_count += -bit_count % 8
        bits = bytearray(bit_count // 8)
        for address in unique:
            for bit in _bloom_bits(address, bit_count):
                bits[bit >> 3] |= 1 << (bit & 7)
        return cls(mode=SUMMARY_BLOOM, bloom=bytes(bits))

    def may_contain(self, address: int) -> bool:
        """False guarantees the segment never references ``address``."""
        if self.mode == SUMMARY_EXACT:
            position = bisect_left(self.addresses, address)
            return (
                position < len(self.addresses)
                and self.addresses[position] == address
            )
        bit_count = len(self.bloom) * 8
        if bit_count == 0:
            return False
        return all(
            self.bloom[bit >> 3] & (1 << (bit & 7))
            for bit in _bloom_bits(address, bit_count)
        )

    def may_contain_range(self, low: int, high: int) -> bool:
        """False guarantees no referenced address falls in [low, high].

        Exact summaries answer precisely via a sorted-set range probe;
        Bloom filters cannot enumerate, so any non-degenerate range is a
        "maybe" (single-address ranges still use the membership test).
        """
        if low > high:
            return False
        if self.mode == SUMMARY_EXACT:
            position = bisect_left(self.addresses, low)
            return (
                position < len(self.addresses) and self.addresses[position] <= high
            )
        if low == high:
            return self.may_contain(low)
        return True

    def payload(self) -> bytes:
        if self.mode == SUMMARY_EXACT:
            return struct.pack(f">{len(self.addresses)}I", *self.addresses)
        return self.bloom

    @classmethod
    def from_payload(cls, mode: int, payload: bytes) -> "AddressSummary":
        if mode == SUMMARY_EXACT:
            if len(payload) % 4:
                raise ArchiveError(
                    f"exact address summary length not a multiple of 4: "
                    f"{len(payload)}"
                )
            return cls(
                mode=SUMMARY_EXACT,
                addresses=struct.unpack(f">{len(payload) // 4}I", payload),
            )
        if mode == SUMMARY_BLOOM:
            return cls(mode=SUMMARY_BLOOM, bloom=payload)
        raise ArchiveError(f"unknown address summary mode: {mode}")


@dataclass(frozen=True)
class SegmentIndexEntry:
    """One footer record: where a segment lives and what it can contain.

    ``section_backends`` (v2 footers) carries the wire tag of the
    backend that stored each of the segment's four ``.fctc`` sections,
    in :data:`~repro.core.codec.SECTION_NAMES` order — so ``archive
    info`` can report per-segment codecs without touching segment bytes.
    Entries parsed from a v1 footer report
    :data:`RAW_SECTION_BACKENDS`, which is exact: v1 segments store
    every section raw.
    """

    offset: int
    length: int
    time_min_units: int
    time_max_units: int
    flow_count: int
    short_flow_count: int
    packet_count: int
    min_flow_packets: int
    max_flow_packets: int
    min_rtt_units: int
    max_rtt_units: int
    address_count: int
    summary: AddressSummary
    section_backends: tuple[int, int, int, int] = RAW_SECTION_BACKENDS

    @property
    def time_min(self) -> float:
        """Earliest time-seq timestamp, seconds since the archive epoch."""
        return self.time_min_units / 10_000

    @property
    def time_max(self) -> float:
        """Latest time-seq timestamp, seconds since the archive epoch."""
        return self.time_max_units / 10_000

    @property
    def long_flow_count(self) -> int:
        return self.flow_count - self.short_flow_count

    @property
    def min_rtt(self) -> float:
        return self.min_rtt_units / 10_000

    @property
    def max_rtt(self) -> float:
        return self.max_rtt_units / 10_000

    def pack(self, version: int = ARCHIVE_VERSION) -> bytes:
        payload = self.summary.payload()
        packed = _ENTRY_FIXED.pack(
            self.offset,
            self.length,
            self.time_min_units,
            self.time_max_units,
            self.flow_count,
            self.short_flow_count,
            self.packet_count,
            self.min_flow_packets,
            self.max_flow_packets,
            self.min_rtt_units,
            self.max_rtt_units,
            self.address_count,
            self.summary.mode,
            len(payload),
        )
        if version >= ARCHIVE_VERSION_V2:
            packed += _ENTRY_BACKENDS.pack(*self.section_backends)
        return packed + payload

    @classmethod
    def unpack(
        cls, data: bytes, position: int, version: int = ARCHIVE_VERSION
    ) -> tuple["SegmentIndexEntry", int]:
        """Parse one entry at ``position``; returns (entry, next position)."""
        end = position + _ENTRY_FIXED.size
        if end > len(data):
            raise ArchiveError("truncated archive index entry")
        (
            offset,
            length,
            time_min_units,
            time_max_units,
            flow_count,
            short_flow_count,
            packet_count,
            min_flow_packets,
            max_flow_packets,
            min_rtt_units,
            max_rtt_units,
            address_count,
            summary_mode,
            summary_length,
        ) = _ENTRY_FIXED.unpack_from(data, position)
        section_backends = RAW_SECTION_BACKENDS
        if version >= ARCHIVE_VERSION_V2:
            if end + _ENTRY_BACKENDS.size > len(data):
                raise ArchiveError("truncated archive index entry backends")
            section_backends = _ENTRY_BACKENDS.unpack_from(data, end)
            end += _ENTRY_BACKENDS.size
        if end + summary_length > len(data):
            raise ArchiveError("truncated archive address summary")
        summary = AddressSummary.from_payload(
            summary_mode, bytes(data[end : end + summary_length])
        )
        entry = cls(
            offset=offset,
            length=length,
            time_min_units=time_min_units,
            time_max_units=time_max_units,
            flow_count=flow_count,
            short_flow_count=short_flow_count,
            packet_count=packet_count,
            min_flow_packets=min_flow_packets,
            max_flow_packets=max_flow_packets,
            min_rtt_units=min_rtt_units,
            max_rtt_units=max_rtt_units,
            address_count=address_count,
            summary=summary,
            section_backends=section_backends,
        )
        return entry, end + summary_length


def index_entry_for(
    compressed: CompressedTrace,
    offset: int,
    length: int,
    section_backends: tuple[int, int, int, int] = RAW_SECTION_BACKENDS,
) -> SegmentIndexEntry:
    """Build the footer entry describing one serialized segment.

    Bounds are computed over the *quantized* (on-disk) values so the
    index is exact with respect to what a decoder will see — a query
    compared against these bounds can never miss a decoded record.
    ``section_backends`` records the wire tags the segment's serializer
    actually used (:attr:`~repro.core.codec.ContainerWriteResult.backend_tags`).
    """
    if not compressed.time_seq:
        raise ArchiveError("refusing to index an empty segment")
    time_units = [quantize_timestamp(r.timestamp) for r in compressed.time_seq]
    rtt_units = [quantize_rtt(r.rtt) for r in compressed.time_seq]
    flow_packets = [compressed.packets_for(r) for r in compressed.time_seq]
    short_flows = sum(
        1 for r in compressed.time_seq if r.dataset is DatasetId.SHORT
    )
    return SegmentIndexEntry(
        offset=offset,
        length=length,
        time_min_units=min(time_units),
        time_max_units=max(time_units),
        flow_count=len(compressed.time_seq),
        short_flow_count=short_flows,
        packet_count=compressed.original_packet_count,
        min_flow_packets=min(flow_packets),
        max_flow_packets=max(flow_packets),
        min_rtt_units=min(rtt_units),
        max_rtt_units=max(rtt_units),
        address_count=len(compressed.addresses),
        summary=AddressSummary.build(compressed.addresses),
        section_backends=tuple(section_backends),
    )


def pack_footer(
    entries: Iterable[SegmentIndexEntry], version: int = ARCHIVE_VERSION
) -> bytes:
    """Serialize the footer (index head + every entry)."""
    packed = [entry.pack(version) for entry in entries]
    return _FOOTER_HEAD.pack(FOOTER_MAGIC, len(packed)) + b"".join(packed)


def unpack_footer(
    data: bytes, version: int = ARCHIVE_VERSION
) -> list[SegmentIndexEntry]:
    """Parse a footer produced by :func:`pack_footer`.

    ``version`` is the archive header's version byte — v1 footers have
    no per-entry backend tags, so entries come back with
    :data:`RAW_SECTION_BACKENDS`.
    """
    if len(data) < _FOOTER_HEAD.size:
        raise ArchiveError("truncated archive footer")
    magic, count = _FOOTER_HEAD.unpack_from(data, 0)
    if magic != FOOTER_MAGIC:
        raise ArchiveError(f"bad archive footer magic: {magic!r}")
    entries: list[SegmentIndexEntry] = []
    position = _FOOTER_HEAD.size
    for _ in range(count):
        entry, position = SegmentIndexEntry.unpack(data, position, version)
        entries.append(entry)
    if position != len(data):
        raise ArchiveError("trailing bytes after archive footer")
    return entries
