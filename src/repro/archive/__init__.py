"""Segmented ``.fctca`` trace archives: rolling captures, indexed reads.

The archive layer sits on top of the streaming compressor: the writer
rotates compressed segments by packet count / time span into a single
container whose footer indexes every segment (byte range, time bounds,
flow counts, destination summary); the reader seeks to and decodes only
the segments a caller asks for.  The query engine in :mod:`repro.query`
plans against the index.
"""

from repro.archive.format import (
    ARCHIVE_VERSION,
    ARCHIVE_VERSION_V1,
    ARCHIVE_VERSION_V2,
    RAW_SECTION_BACKENDS,
    AddressSummary,
    SegmentIndexEntry,
    index_entry_for,
    pack_footer,
    unpack_footer,
)
from repro.archive.reader import (
    ArchiveReader,
    ArchiveSpecFeed,
    order_by_time,
    parse_archive_tail,
    segment_runs,
)
from repro.archive.writer import (
    DEFAULT_SEGMENT_PACKETS,
    DEFAULT_SEGMENT_SPAN,
    ArchiveWriter,
    build_archive,
)

__all__ = [
    "ARCHIVE_VERSION",
    "ARCHIVE_VERSION_V1",
    "ARCHIVE_VERSION_V2",
    "RAW_SECTION_BACKENDS",
    "AddressSummary",
    "SegmentIndexEntry",
    "index_entry_for",
    "pack_footer",
    "unpack_footer",
    "ArchiveReader",
    "ArchiveSpecFeed",
    "order_by_time",
    "parse_archive_tail",
    "segment_runs",
    "DEFAULT_SEGMENT_PACKETS",
    "DEFAULT_SEGMENT_SPAN",
    "ArchiveWriter",
    "build_archive",
]
