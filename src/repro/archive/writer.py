"""Segment writer: rolling captures into one indexed ``.fctca`` file.

:class:`ArchiveWriter` couples the streaming compressor to the archive
container.  Packets are fed one at a time (or via :meth:`feed`); the
writer rotates to a fresh segment whenever the current one reaches
``segment_packets`` packets or spans ``segment_span`` seconds of trace
time, closes the segment's compressor, serializes it as a standalone
``.fctc`` blob, and records its :class:`~repro.archive.format.SegmentIndexEntry`.
Closing the writer lands the footer index and trailer.

Every segment's compressor is anchored to the shared archive ``epoch``
(the first packet's timestamp unless given), so time-seq timestamps are
comparable across segments — the property the time index relies on.

A flow still open at a rotation boundary is flushed into the closing
segment, exactly as a rolling capture that restarts its collector would
split it.  Queries therefore see one flow record per segment the flow
touches.

Appending re-opens an existing archive, parses its footer, truncates it,
and continues writing segments in its place; the epoch is taken from the
archive header so appended captures must share the original time base.
"""

from __future__ import annotations

import logging
import os
import threading
from pathlib import Path
from typing import BinaryIO, Callable, Iterable

from repro.archive.format import (
    ARCHIVE_MAGIC,
    ARCHIVE_VERSION,
    HEADER,
    TRAILER,
    TRAILER_MAGIC,
    SegmentIndexEntry,
    index_entry_for,
    pack_footer,
)
from repro.core.codec import validate_backend_request, write_container
from repro.core.compressor import CompressorConfig
from repro.core.datasets import CompressedTrace
from repro.core.errors import ArchiveError, warn_deprecated
from repro.core.streaming import StreamingCompressor
from repro.net.columns import PacketColumns, tolist
from repro.net.packet import PacketRecord
from repro.obs import current as obs_current

_log = logging.getLogger(__name__)

DEFAULT_SEGMENT_PACKETS = 65536
DEFAULT_SEGMENT_SPAN = 60.0

_UNSET = object()  # sentinel: distinguish "not passed" from an explicit None


class EpochRef:
    """A shared, late-bound time base.

    Every compressor that feeds one archive must anchor its relative
    clock to the same instant, but that instant is only known when the
    first packet (from *whichever* stream wins) arrives.  An
    ``EpochRef`` is the one mutable cell they all hold: :meth:`anchor`
    installs the first candidate timestamp and returns the epoch ever
    after.  The archive writer and every :class:`SegmentFeeder` draining
    into it share one ref.
    """

    __slots__ = ("value",)

    def __init__(self, value: float | None = None) -> None:
        self.value = value

    def anchor(self, timestamp: float) -> float:
        if self.value is None:
            self.value = timestamp
        return self.value


class SegmentFeeder:
    """Rotation policy for one packet stream, sealing into a sink.

    The per-stream half of archive building, extracted from
    :class:`ArchiveWriter` so it can be instantiated *per source*: a
    feeder owns one :class:`~repro.core.streaming.StreamingCompressor`,
    applies the packet-count / trace-time rotation bounds, and hands
    each sealed :class:`~repro.core.datasets.CompressedTrace` to
    ``sink`` (typically :meth:`ArchiveWriter.write_segment`).  The
    writer itself runs exactly one feeder; ``repro serve`` runs one per
    ingest source, all sharing the writer's :class:`EpochRef` so their
    segment clocks stay comparable.

    A segment rotates *before* the first packet that would overflow
    ``segment_packets`` or land ``segment_span`` seconds of trace time
    past the segment's first packet — the boundary rule the offline
    writer has always used, preserved bit-for-bit so a live-ingested
    stream segments exactly like the same capture compressed offline.

    Not thread-safe: one feeder belongs to one feeding task.  The sink
    is invoked synchronously from the feed call that closed the
    segment.
    """

    def __init__(
        self,
        sink: Callable[[CompressedTrace], object],
        *,
        epoch: EpochRef,
        segment_packets: int = DEFAULT_SEGMENT_PACKETS,
        segment_span: float | None = DEFAULT_SEGMENT_SPAN,
        config: CompressorConfig | None = None,
        name: str = "segment",
        engine: str | None = None,
        segment_name: Callable[[int], str] | None = None,
    ) -> None:
        if segment_packets < 1:
            raise ValueError(f"segment_packets must be >= 1: {segment_packets}")
        if segment_span is not None and segment_span <= 0:
            raise ValueError(f"segment_span must be positive: {segment_span}")
        self._sink = sink
        self._epoch = epoch
        self._segment_packets = segment_packets
        self._segment_span = segment_span
        self._config = config
        self._name = name
        self._engine = engine
        self._segment_name = segment_name or (
            lambda ordinal: f"{name}/seg-{ordinal:05d}"
        )
        self._compressor: StreamingCompressor | None = None
        self._segment_first_ts = 0.0
        self._segment_fed = 0
        self._sealed = 0
        self._closed = False

    @property
    def packets_pending(self) -> int:
        """Packets fed into the open (unsealed) segment so far."""
        return self._segment_fed

    @property
    def segments_sealed(self) -> int:
        return self._sealed

    @property
    def compressor(self) -> StreamingCompressor | None:
        """The live compressor (``None`` until the first packet)."""
        return self._compressor

    def add_packet(self, packet: PacketRecord) -> None:
        """Feed one packet, sealing a segment at the configured bounds."""
        if self._closed:
            raise ArchiveError("segment feeder already closed")
        if self._segment_fed and (
            self._segment_fed >= self._segment_packets
            or (
                self._segment_span is not None
                and packet.timestamp - self._segment_first_ts
                >= self._segment_span
            )
        ):
            self._seal()
        if not self._segment_fed:
            self._open_segment(packet.timestamp)
        self._compressor.add_packet(packet)
        self._segment_fed += 1

    def feed(
        self, packets: Iterable[PacketRecord] | Iterable[PacketColumns]
    ) -> int:
        """Feed records, columnar chunks, or a mix; returns the count."""
        if isinstance(packets, PacketColumns):
            return self.feed_columns(packets)
        count = 0
        for item in packets:
            if isinstance(item, PacketColumns):
                count += self.feed_columns(item)
            else:
                self.add_packet(item)
                count += 1
        return count

    def feed_columns(self, columns: PacketColumns) -> int:
        """Feed one columnar chunk, splitting it at rotation boundaries.

        Equivalent to :meth:`add_packet` row by row, but each stretch
        between boundaries is fed as one vectorized sub-chunk.
        """
        if self._closed:
            raise ArchiveError("segment feeder already closed")
        total = len(columns)
        if total == 0:
            return 0
        timestamps = tolist(columns.timestamps)
        start = 0
        while start < total:
            if self._segment_fed and (
                self._segment_fed >= self._segment_packets
                or (
                    self._segment_span is not None
                    and timestamps[start] - self._segment_first_ts
                    >= self._segment_span
                )
            ):
                self._seal()
            if not self._segment_fed:
                self._open_segment(timestamps[start])
            # Rows [start:stop) all fit in the open segment: stop at the
            # packet budget or the first timestamp past the span bound.
            stop = min(total, start + self._segment_packets - self._segment_fed)
            if self._segment_span is not None:
                limit = self._segment_first_ts + self._segment_span
                for row in range(start, stop):
                    if timestamps[row] >= limit:
                        stop = row
                        break
            self._compressor.feed_columns(columns.slice(start, stop))
            self._segment_fed += stop - start
            start = stop
        return total

    def flush(self) -> bool:
        """Seal the open segment now, regardless of the rotation bounds.

        The wall-clock rotation hook of the ingest daemon (a quiet
        source must still land what it holds) and the drain path.
        Returns whether a segment was written.
        """
        if self._closed:
            raise ArchiveError("segment feeder already closed")
        return self._seal()

    def close(self) -> int:
        """Flush the open segment and retire the feeder; returns seals."""
        if not self._closed:
            self._seal()
            if self._compressor is not None:
                # Publish the trailing (empty) engine's counters so a
                # feeder's metric set is stable regardless of where the
                # last rotation boundary fell.
                self._compressor.finish()
            self._closed = True
        return self._sealed

    def _open_segment(self, first_timestamp: float) -> None:
        if self._compressor is None:
            self._compressor = StreamingCompressor(
                self._config,
                name=self._segment_name(0),
                base_time=self._epoch.anchor(first_timestamp),
                engine=self._engine,
            )
        self._segment_first_ts = first_timestamp

    def _seal(self) -> bool:
        if not self._segment_fed or self._compressor is None:
            return False
        fed = self._segment_fed
        self._segment_fed = 0
        compressed = self._compressor.flush_segment(
            name=self._segment_name(self._sealed)
        )
        if compressed is None:
            return False
        self._sealed += 1
        self._sink(compressed)
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "rotated segment %s: %d packet(s), %d flow(s)",
                compressed.name,
                fed,
                len(compressed.time_seq),
            )
        return True


def _merge_create_kwargs(options, **overrides) -> dict:
    """Expand a layered :class:`repro.api.Options` into writer kwargs.

    The ``options=`` keyword on :meth:`ArchiveWriter.create` /
    :meth:`ArchiveWriter.append` threads the façade's single config
    object through this layer; any explicitly passed keyword still wins
    over the corresponding options field.  Duck-typed on the three
    layers actually read (``archive``, ``compressor``, ``codec``) so
    this module never imports :mod:`repro.api` (which imports it).
    """
    if options is not None:
        merged = {
            "segment_packets": options.archive.segment_packets,
            "segment_span": options.archive.segment_span,
            "epoch": options.archive.epoch,
            "config": options.compressor,
            "name": options.name,
            "backend": options.codec.backend,
            "level": options.codec.level,
            "engine": options.streaming.engine,
        }
    else:
        merged = {
            "segment_packets": DEFAULT_SEGMENT_PACKETS,
            "segment_span": DEFAULT_SEGMENT_SPAN,
            "epoch": None,
            "config": None,
            "name": None,
            "backend": None,
            "level": None,
            "engine": None,
        }
    merged.update(
        {key: value for key, value in overrides.items() if value is not _UNSET}
    )
    return merged


class ArchiveWriter:
    """Write (or extend) a segmented archive; use as a context manager."""

    def __init__(
        self,
        stream: BinaryIO,
        *,
        entries: list[SegmentIndexEntry],
        epoch: float | None,
        segment_packets: int = DEFAULT_SEGMENT_PACKETS,
        segment_span: float | None = DEFAULT_SEGMENT_SPAN,
        config: CompressorConfig | None = None,
        name: str = "archive",
        backend: str | None = None,
        level: int | None = None,
        engine: str | None = None,
    ) -> None:
        if segment_packets < 1:
            raise ValueError(f"segment_packets must be >= 1: {segment_packets}")
        if segment_span is not None and segment_span <= 0:
            raise ValueError(f"segment_span must be positive: {segment_span}")
        self._stream = stream
        self._entries = entries
        self._epoch_ref = EpochRef(epoch)
        self._segment_packets = segment_packets
        self._segment_span = segment_span
        self._config = config
        self._name = name
        self._backend = backend
        self._level = level
        self._engine = engine
        self._feeder: SegmentFeeder | None = None
        self._closed = False
        # Serializes segment landing and sealing: the ingest daemon's
        # per-source feeders all sink into one writer, and although its
        # event loop is single-threaded, the container append must stay
        # atomic under any driver (threads included).
        self._lock = threading.Lock()

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        options=None,
        epoch: float | None = _UNSET,
        segment_packets: int = _UNSET,
        segment_span: float | None = _UNSET,
        config: CompressorConfig | None = _UNSET,
        name: str | None = _UNSET,
        backend: str | None = _UNSET,
        level: int | None = _UNSET,
        engine: str | None = _UNSET,
    ) -> "ArchiveWriter":
        """Start a new archive at ``path`` (truncating any existing file).

        ``epoch`` defaults to the first fed packet's timestamp; the
        header is (re)written with the final value on :meth:`close`.
        ``backend``/``level`` select the section codec every segment is
        serialized through (:mod:`repro.core.backends`; ``None`` = raw).
        ``options`` (a layered :class:`repro.api.Options`) fills every
        knob at once; explicit keywords override its fields.  An
        invalid backend/level combination fails here — before the path
        is truncated or a single packet compressed.
        """
        merged = _merge_create_kwargs(
            options,
            epoch=epoch,
            segment_packets=segment_packets,
            segment_span=segment_span,
            config=config,
            name=name,
            backend=backend,
            level=level,
            engine=engine,
        )
        validate_backend_request(merged["backend"], merged["level"])
        stream = open(path, "w+b")
        stream.write(
            HEADER.pack(ARCHIVE_MAGIC, ARCHIVE_VERSION, merged["epoch"] or 0.0)
        )
        return cls(
            stream,
            entries=[],
            epoch=merged["epoch"],
            segment_packets=merged["segment_packets"],
            segment_span=merged["segment_span"],
            config=merged["config"],
            name=merged["name"] or Path(path).stem,
            backend=merged["backend"],
            level=merged["level"],
            engine=merged["engine"],
        )

    @classmethod
    def append(
        cls,
        path: str | Path,
        *,
        options=None,
        segment_packets: int = _UNSET,
        segment_span: float | None = _UNSET,
        config: CompressorConfig | None = _UNSET,
        name: str | None = _UNSET,
        backend: str | None = _UNSET,
        level: int | None = _UNSET,
        engine: str | None = _UNSET,
    ) -> "ArchiveWriter":
        """Extend an existing archive in place.

        The old footer is truncated and new segments take its place; the
        epoch is fixed by the archive header, so appended packets must
        carry timestamps on the same clock as the original capture.
        ``backend``/``level`` apply to the *new* segments only, and
        ``options`` fills knobs exactly as in :meth:`create`.
        Appending to a v1 archive upgrades it: the rewritten footer and
        header are v2 (old entries report every section as raw, which is
        exactly how v1 segments are stored) while old segment bytes stay
        untouched.
        """
        merged = _merge_create_kwargs(
            options,
            segment_packets=segment_packets,
            segment_span=segment_span,
            config=config,
            name=name,
            backend=backend,
            level=level,
            engine=engine,
        )
        segment_packets = merged["segment_packets"]
        segment_span = merged["segment_span"]
        config, name = merged["config"], merged["name"]
        backend, level = merged["backend"], merged["level"]
        validate_backend_request(backend, level)
        stream = open(path, "r+b")
        try:
            epoch, entries, footer_offset = _read_tail(stream)
        except Exception:
            stream.close()
            raise
        stream.seek(footer_offset)
        stream.truncate()
        return cls(
            stream,
            entries=entries,
            epoch=epoch,
            segment_packets=segment_packets,
            segment_span=segment_span,
            config=config,
            name=name or Path(path).stem,
            backend=backend,
            level=level,
            engine=merged["engine"],
        )

    # -- feeding ----------------------------------------------------------

    @property
    def epoch(self) -> float | None:
        return self._epoch_ref.value

    @property
    def epoch_ref(self) -> EpochRef:
        """The shared time-base cell external feeders must anchor to."""
        return self._epoch_ref

    def ensure_epoch(self, timestamp: float) -> float:
        """Anchor the archive epoch to ``timestamp`` if still unset."""
        return self._epoch_ref.anchor(timestamp)

    @property
    def segment_count(self) -> int:
        """Segments landed so far (the open segment is not counted)."""
        return len(self._entries)

    def _ensure_feeder(self) -> SegmentFeeder:
        if self._closed:
            raise ArchiveError("archive writer already closed")
        if self._feeder is None:
            self._feeder = SegmentFeeder(
                self._land_segment,
                epoch=self._epoch_ref,
                segment_packets=self._segment_packets,
                segment_span=self._segment_span,
                config=self._config,
                name=self._name,
                engine=self._engine,
                # The archive-global ordinal, not the feeder-local one:
                # segment names have always counted landed entries, and
                # they are serialized into the container bytes.
                segment_name=lambda _ordinal: (
                    f"{self._name}/seg-{len(self._entries):05d}"
                ),
            )
        return self._feeder

    def _land_segment(self, compressed: CompressedTrace) -> SegmentIndexEntry:
        entry = self.write_segment(compressed)
        obs_current().counter(
            "archive.segments_rotated", "segments closed and landed on disk"
        ).inc()
        return entry

    def add_packet(self, packet: PacketRecord) -> None:
        """Feed one packet, rotating segments at the configured bounds."""
        self._ensure_feeder().add_packet(packet)

    def feed(
        self, packets: Iterable[PacketRecord] | Iterable[PacketColumns]
    ) -> int:
        """Feed packets; returns how many were added.

        Accepts a plain packet iterable, a single
        :class:`~repro.net.columns.PacketColumns` chunk, or an iterable
        of such chunks — columnar feeds keep the vectorized hot path all
        the way into each segment's compressor.
        """
        return self._ensure_feeder().feed(packets)

    def feed_columns(self, columns: PacketColumns) -> int:
        """Feed one columnar chunk, splitting it at rotation boundaries.

        Equivalent to :meth:`add_packet` row by row — a segment rotates
        before the first row that would overflow ``segment_packets`` or
        land ``segment_span`` seconds past the segment's first packet —
        but each stretch between boundaries is fed as one vectorized
        sub-chunk.
        """
        return self._ensure_feeder().feed_columns(columns)

    def write_segment(
        self,
        compressed: CompressedTrace,
        *,
        backend: str | dict[str, str] | None = None,
        level: int | None = None,
    ) -> SegmentIndexEntry:
        """Land a pre-built compressed trace as one segment.

        The low-level hook behind both packet-driven rotation and archive
        filtering (which re-packs record subsets).  The segment's
        time-seq timestamps must already be relative to the archive
        epoch.  Empty traces are rejected — an empty segment indexes
        nothing and would only cost seeks.  ``backend``/``level``
        override the writer-wide codec for this one segment (the query
        engine uses this to preserve each source segment's backends when
        re-packing); the backends actually used are recorded in the
        entry's ``section_backends``.
        """
        if self._closed:
            raise ArchiveError("archive writer already closed")
        if not compressed.time_seq:
            raise ArchiveError("refusing to write an empty segment")
        with self._lock:
            offset = self._stream.tell()
            result = write_container(
                self._stream,
                compressed,
                backend=backend if backend is not None else self._backend,
                level=level if level is not None else self._level,
            )
            entry = index_entry_for(
                compressed, offset, result.length, result.backend_tags
            )
            self._entries.append(entry)
        obs_current().counter(
            "archive.segment_bytes", "serialized segment bytes landed"
        ).inc(result.length)
        return entry

    # -- closing ----------------------------------------------------------

    def close(self) -> list[SegmentIndexEntry]:
        """Flush the open segment, write footer + trailer, close the file."""
        if self._closed:
            return self._entries
        if self._feeder is not None:
            self._feeder.close()
        self._seal()
        return self._entries

    def _seal(self) -> None:
        """Write footer + trailer + final header, fsync, close the stream.

        Also the error-path salvage: whatever segments fully landed are
        sealed into a valid archive.  The stream position may sit after
        partial bytes of a failed segment write — the footer simply
        starts there and no index entry references the dead space.

        Durability: the file *and its directory* are fsynced before the
        handle closes, so a sealed archive survives a crash or power cut
        right after :meth:`close` returns — the contract a long-running
        capture daemon hands its operators.  Streams without a real file
        descriptor (in-memory buffers) skip the sync.
        """
        registry = obs_current()
        with registry.timer(
            "archive.seal", "wall time writing footer, trailer, and final header"
        ).time():
            with self._lock:
                footer_offset = self._stream.tell()
                footer = pack_footer(self._entries)
                self._stream.write(footer)
                self._stream.write(
                    TRAILER.pack(footer_offset, len(footer), TRAILER_MAGIC)
                )
                self._stream.seek(0)
                self._stream.write(
                    HEADER.pack(ARCHIVE_MAGIC, ARCHIVE_VERSION, self.epoch or 0.0)
                )
                _fsync_stream_and_dir(self._stream)
                self._stream.close()
                self._closed = True
        registry.counter("archive.index_bytes", "footer index bytes written").inc(
            len(footer)
        )
        _log.debug(
            "sealed archive: %d segment(s), %d index byte(s)",
            len(self._entries),
            len(footer),
        )

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif not self._closed:
            # A failed feed must not destroy the file: append has already
            # truncated the old footer and build has claimed the path, so
            # seal the fully-landed segments back into a valid archive
            # (the open segment's packets are discarded).  Best effort —
            # if even sealing fails (dead disk), just drop the handle.
            try:
                self._seal()
            except OSError:
                self._stream.close()
                self._closed = True


def _fsync_stream_and_dir(stream: BinaryIO) -> None:
    """Flush ``stream`` to stable storage, then its directory entry.

    The two-step seal durability: ``fsync`` on the file makes the bytes
    durable, ``fsync`` on the containing directory makes the *name*
    durable (a freshly created archive is otherwise lost if the
    directory inode never lands).  Both steps degrade to no-ops for
    streams without a real descriptor (``BytesIO`` raises
    ``UnsupportedOperation``, which is both ``OSError`` and
    ``ValueError``).
    """
    try:
        stream.flush()
        os.fsync(stream.fileno())
    except (AttributeError, OSError, ValueError):
        return
    name = getattr(stream, "name", None)
    if not isinstance(name, (str, bytes, os.PathLike)):
        return
    directory = os.path.dirname(os.path.abspath(os.fspath(name)))
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _read_tail(stream: BinaryIO) -> tuple[float, list[SegmentIndexEntry], int]:
    """Parse header + trailer + footer of an existing archive stream.

    Drops the version component of :func:`parse_archive_tail`: the
    writer always seals as the current version, upgrading v1 archives in
    place on append.
    """
    from repro.archive.reader import parse_archive_tail  # local: avoid cycle

    epoch, entries, footer_offset, _version = parse_archive_tail(stream)
    return epoch, entries, footer_offset


def build_archive(
    path: str | Path,
    packets: Iterable[PacketRecord],
    *,
    epoch: float | None = None,
    segment_packets: int = DEFAULT_SEGMENT_PACKETS,
    segment_span: float | None = DEFAULT_SEGMENT_SPAN,
    config: CompressorConfig | None = None,
    name: str | None = None,
    backend: str | None = None,
    level: int | None = None,
) -> list[SegmentIndexEntry]:
    """Compress ``packets`` into a new archive at ``path`` in one call.

    .. deprecated:: 1.1  Use :func:`repro.api.create_archive` (or a
       ``repro.open(source).compress("out.fctca")`` session); this shim
       produces byte-identical archives and is kept for one release.
    """
    warn_deprecated("build_archive", "repro.api.create_archive")
    with ArchiveWriter.create(
        path,
        epoch=epoch,
        segment_packets=segment_packets,
        segment_span=segment_span,
        config=config,
        name=name,
        backend=backend,
        level=level,
    ) as writer:
        writer.feed(packets)
        return writer.close()
