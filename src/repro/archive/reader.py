"""Segment reader: seek-and-decode access into a ``.fctca`` archive.

:class:`ArchiveReader` memory-maps the archive (falling back to plain
seeks where mmap is unavailable), parses the fixed trailer and footer
index once, and then serves individual segments on demand —
:meth:`load_segment` decodes exactly one segment's bytes through the
ordinary ``.fctc`` codec and nothing else.  The index entries are public
so query planners can decide *which* segments to decode; the reader
counts what was actually decoded (``segments_decoded`` /
``bytes_decoded``) so callers can assert they touched less than the
whole file.

:meth:`iter_packets` is the archive-scale replay path: it streams the
whole archive's synthetic packets in one globally time-ordered sequence,
decoding segments one at a time as the merge frontier reaches them (the
footer's per-segment time bounds tell the merge when the next segment
*must* be decoded without touching its bytes).  With ``workers > 1`` the
per-segment synthesis fans out across processes while the parent
performs the same ordered merge at the seams — identical output, more
throughput, memory bounded by in-flight segments instead of the
concurrent-flow fan-out.
"""

from __future__ import annotations

import heapq
import io
import mmap
import multiprocessing
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Iterator

from repro.archive.format import (
    ARCHIVE_MAGIC,
    ARCHIVE_VERSION_V1,
    ARCHIVE_VERSION_V2,
    HEADER,
    TRAILER,
    TRAILER_MAGIC,
    SegmentIndexEntry,
    unpack_footer,
)
from repro.core.codec import read_compressed
from repro.core.datasets import CompressedTrace
from repro.core.decompressor import (
    DecompressorConfig,
    FlowSpec,
    decompress_trace,
    flow_specs,
    merge_sort_key,
)
from repro.core.errors import ArchiveError, CodecError
from repro.core.flowmeta import FlowRecord, flow_records
from repro.core.replay import ReplayStats, merge_packet_stream
from repro.net.packet import PacketRecord
from repro.obs import current as obs_current


def parse_archive_tail(
    stream: BinaryIO,
) -> tuple[float, list[SegmentIndexEntry], int, int]:
    """Validate an archive stream.

    Returns (epoch, entries, footer offset, archive version).  Shared by
    the reader and the append path (which truncates the footer and
    writes new segments over it).  Both archive generations parse: v1
    footers simply report every segment's sections as raw, which is how
    v1 segments are in fact stored.
    """
    stream.seek(0, io.SEEK_END)
    size = stream.tell()
    if size < HEADER.size + TRAILER.size:
        raise ArchiveError(f"archive too small to be valid: {size} bytes")
    stream.seek(0)
    magic, version, epoch = HEADER.unpack(stream.read(HEADER.size))
    if magic != ARCHIVE_MAGIC:
        raise ArchiveError(f"bad archive magic: {magic!r}")
    if version not in (ARCHIVE_VERSION_V1, ARCHIVE_VERSION_V2):
        raise ArchiveError(f"unsupported archive version: {version}")
    stream.seek(size - TRAILER.size)
    footer_offset, footer_length, trailer_magic = TRAILER.unpack(
        stream.read(TRAILER.size)
    )
    if trailer_magic != TRAILER_MAGIC:
        raise ArchiveError(f"bad archive trailer magic: {trailer_magic!r}")
    if (
        footer_offset < HEADER.size
        or footer_offset + footer_length + TRAILER.size != size
    ):
        raise ArchiveError(
            f"archive footer range [{footer_offset}, +{footer_length}] "
            f"inconsistent with file size {size}"
        )
    stream.seek(footer_offset)
    entries = unpack_footer(stream.read(footer_length), version)
    for index, entry in enumerate(entries):
        if entry.offset < HEADER.size or entry.offset + entry.length > footer_offset:
            raise ArchiveError(
                f"segment {index} byte range [{entry.offset}, +{entry.length}] "
                f"escapes the segment region"
            )
    return epoch, entries, footer_offset, version


class ArchiveReader:
    """Open a ``.fctca`` file for segment-granular reads."""

    def __init__(self, path: str | Path, *, use_mmap: bool = True) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        self._mmap: mmap.mmap | None = None
        try:
            (
                self.epoch,
                self.entries,
                self._footer_offset,
                self.version,
            ) = parse_archive_tail(self._file)
            if use_mmap:
                try:
                    self._mmap = mmap.mmap(
                        self._file.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except (OSError, ValueError):
                    self._mmap = None  # fall back to seek+read
        except Exception:
            self._file.close()
            raise
        self.segments_decoded = 0
        self.bytes_decoded = 0

    @property
    def segment_count(self) -> int:
        return len(self.entries)

    def flow_count(self) -> int:
        """Total flows across every segment (from the index alone)."""
        return sum(entry.flow_count for entry in self.entries)

    def packet_count(self) -> int:
        """Total original packets across every segment (index only)."""
        return sum(entry.packet_count for entry in self.entries)

    def time_bounds(self) -> tuple[float, float] | None:
        """(earliest, latest) flow timestamp across segments (index only)."""
        if not self.entries:
            return None
        return (
            min(entry.time_min for entry in self.entries),
            max(entry.time_max for entry in self.entries),
        )

    def read_segment_bytes(self, index: int) -> bytes:
        """The raw ``.fctc`` bytes of segment ``index``."""
        entry = self._entry(index)
        if self._mmap is not None:
            return self._mmap[entry.offset : entry.offset + entry.length]
        self._file.seek(entry.offset)
        data = self._file.read(entry.length)
        if len(data) != entry.length:
            raise ArchiveError(f"segment {index}: short read")
        return data

    def load_segment(self, index: int) -> CompressedTrace:
        """Decode one segment; counts toward the decode statistics."""
        entry = self._entry(index)
        try:
            compressed = read_compressed(io.BytesIO(self.read_segment_bytes(index)))
        except CodecError as exc:
            raise ArchiveError(f"segment {index}: {exc}") from exc
        self.segments_decoded += 1
        self.bytes_decoded += entry.length
        registry = obs_current()
        registry.counter(
            "archive.segments_decoded", "archive segments decoded"
        ).inc()
        registry.counter(
            "archive.bytes_decoded", "serialized segment bytes decoded"
        ).inc(entry.length)
        return compressed

    def iter_segments(self) -> Iterator[tuple[int, CompressedTrace]]:
        """Decode every segment in file order."""
        for index in range(len(self.entries)):
            yield index, self.load_segment(index)

    def iter_packets(
        self,
        config: DecompressorConfig | None = None,
        *,
        workers: int = 1,
        stats: ReplayStats | None = None,
    ) -> Iterator[PacketRecord]:
        """Stream the archive's synthetic packets in global time order.

        The output is exactly the merge of every segment's batch
        ``decompress_trace`` packets under the decompressor's global
        sort order (ties broken by segment, then flow, then packet
        position) — but no segment's packet list is ever materialized on
        the sequential path: segments are decoded one at a time when the
        merge frontier reaches their index ``time_min``, and a decoded
        segment's datasets are dropped as soon as its last flow drains.

        ``workers > 1`` synthesizes segments in a process pool (each
        worker re-opens the archive and replays one segment) while the
        parent merges the seams in the same order — byte-identical
        output; memory is bounded by the in-flight segments' packets
        rather than the concurrent-flow fan-out, the trade for
        multi-core throughput.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        config = config or DecompressorConfig()
        indices = list(range(len(self.entries)))
        if workers > 1:
            return _iter_packets_parallel(
                self.path, self.entries, indices, config, workers, stats
            )

        def spec_source(
            segment: int, compressed: CompressedTrace
        ) -> Iterator[FlowSpec]:
            return flow_specs(compressed, config, order_prefix=(segment,))

        feed = ArchiveSpecFeed(self, segment_runs(self.entries, indices), spec_source)
        return merge_packet_stream(feed, config, stats)

    def iter_flow_records(
        self,
        config: DecompressorConfig | None = None,
        *,
        indices: list[int] | None = None,
        source: Callable[[int, CompressedTrace], Iterator[FlowRecord]]
        | None = None,
    ) -> Iterator[FlowRecord]:
        """Stream flow metadata in global start order — no packet synthesis.

        The flow-level twin of :meth:`iter_packets`: one
        :class:`~repro.core.flowmeta.FlowRecord` per flow, start
        timestamps nondecreasing across the whole archive.  Segments are
        walked in :func:`segment_runs` order — within a run the
        per-segment record streams heap-merge, between runs they simply
        concatenate — so downstream window aggregation never needs more
        than the current run's datasets in memory.

        ``indices`` restricts the walk (a query planner's surviving
        segments); ``source(segment, compressed)`` overrides the
        per-segment record stream — the query engine passes a filtering
        source, the differential harness the synthesize-everything twin.
        """
        config = config or DecompressorConfig()
        if indices is None:
            indices = list(range(len(self.entries)))
        if source is None:
            source = lambda segment, compressed: flow_records(  # noqa: E731
                compressed, config, segment=segment
            )
        for run in segment_runs(self.entries, indices):
            streams = [
                source(segment, self.load_segment(segment)) for segment in run
            ]
            if len(streams) == 1:
                yield from streams[0]
            else:
                yield from heapq.merge(
                    *streams, key=lambda record: record.start
                )

    def _entry(self, index: int) -> SegmentIndexEntry:
        if not 0 <= index < len(self.entries):
            raise ArchiveError(
                f"segment index {index} out of range ({len(self.entries)})"
            )
        return self.entries[index]

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._file.close()

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- archive-scale streaming replay ---------------------------------------


def order_by_time(
    entries: list[SegmentIndexEntry], indices: list[int]
) -> list[int]:
    """Segment indices sorted by index ``time_min`` (file order on ties).

    Both replay paths walk segments in this order: it is what makes a
    single-level overlap check in :func:`segment_runs` complete, and
    what makes the head of the parallel path's FIFO carry the minimum
    ``time_min`` of everything still pending.  For archives written by
    a rolling capture it is simply file order.
    """
    return sorted(indices, key=lambda index: (entries[index].time_min_units, index))


def segment_runs(
    entries: list[SegmentIndexEntry], indices: list[int]
) -> list[list[int]]:
    """Group segments whose record-start ranges overlap, in time order.

    A rolling capture rotates segments at points in time, so flow starts
    of segment *k* all precede segment *k + 1*'s and every run is a
    single segment — the streaming sweet spot.  Appended captures (or
    hand-built archives) may interleave; those segments are decoded
    together and their record streams heap-merged, keeping the spec
    stream globally sorted by start time at a memory cost of one run of
    segments instead of one.

    Segments are visited in :func:`order_by_time` order, which makes
    merging into the *latest* run sufficient: a segment overlapping any
    earlier run would have to start before that run's successor did,
    contradicting the sort.  Consecutive runs therefore satisfy
    ``run[i] max start <= run[i+1] min start``, the invariant the feed's
    admission bound relies on.
    """
    runs: list[list[int]] = []
    run_max = 0
    for index in order_by_time(entries, indices):
        entry = entries[index]
        if runs and entry.time_min_units < run_max:
            runs[-1].append(index)
            run_max = max(run_max, entry.time_max_units)
        else:
            runs.append([index])
            run_max = entry.time_max_units
    return runs


class ArchiveSpecFeed:
    """A :class:`~repro.core.replay.SpecFeed` over archive segments.

    Decodes lazily: while the next run is untouched, the footer's
    ``time_min`` serves as the merge's admission bound for free; the
    run's segments are only decoded when the frontier provably needs
    their first record.  ``spec_source(segment, compressed)`` maps one
    decoded segment to its spec stream — the query engine passes a
    filtering source here, the plain replay an unfiltered one.  ``halt``
    (optional) stops the feed from opening further runs — the query
    engine's ``limit``.
    """

    def __init__(
        self,
        reader: ArchiveReader,
        runs: list[list[int]],
        spec_source: Callable[[int, CompressedTrace], Iterator[FlowSpec]],
        halt: Callable[[], bool] | None = None,
    ) -> None:
        self._reader = reader
        self._runs = deque(runs)
        self._spec_source = spec_source
        self._halt = halt
        self._current: Iterator[FlowSpec] | None = None
        self._buffered: FlowSpec | None = None

    def next_start_bound(self) -> float | None:
        if self._buffered is None and self._current is not None:
            self._buffered = next(self._current, None)
            if self._buffered is None:
                self._current = None
        if self._buffered is not None:
            return self._buffered.start
        if self._runs and not (self._halt is not None and self._halt()):
            return self._reader.entries[self._runs[0][0]].time_min
        return None

    def pop(self) -> FlowSpec | None:
        while self._buffered is None:
            if self._current is None:
                if not self._runs or (self._halt is not None and self._halt()):
                    return None
                self._current = self._open_run(self._runs.popleft())
            self._buffered = next(self._current, None)
            if self._buffered is None:
                self._current = None
        spec, self._buffered = self._buffered, None
        return spec

    def _open_run(self, run: list[int]) -> Iterator[FlowSpec]:
        streams = [
            self._spec_source(segment, self._reader.load_segment(segment))
            for segment in run
        ]
        if len(streams) == 1:
            return streams[0]
        return heapq.merge(*streams, key=lambda spec: (spec.start, *spec.order))


@dataclass(frozen=True)
class _SegmentReplayTask:
    """One worker's unit: replay segment ``segment`` of the archive."""

    path: str
    segment: int
    config: DecompressorConfig


def _replay_segment(task: _SegmentReplayTask) -> list[PacketRecord]:
    """Worker body: batch-decompress one segment into its sorted packets."""
    with ArchiveReader(task.path) as reader:
        return decompress_trace(reader.load_segment(task.segment), task.config).packets


def _iter_packets_parallel(
    path: Path,
    entries: list[SegmentIndexEntry],
    indices: list[int],
    config: DecompressorConfig,
    workers: int,
    stats: ReplayStats | None = None,
) -> Iterator[PacketRecord]:
    """Ordered seam merge over per-segment packet lists from a pool.

    Each worker's list is already in the decompressor's global order, so
    the parent only interleaves at the seams: a segment's list is pulled
    (blocking on the pool) exactly when the merge frontier reaches the
    segment's index ``time_min``.  Segments are dispatched in
    :func:`order_by_time` order, so the FIFO head's ``time_min`` is the
    minimum over everything still pending and the admission check is a
    true lower bound.  The heap key mirrors the sequential path —
    (packet sort key, segment, position-in-list) — position stands in
    for (flow, packet) because each list is already stably sorted by
    that finer key.

    ``stats`` fills in flow/packet counts as the stream is consumed;
    ``peak_open_flows`` stays 0 here — the parent merges whole segment
    lists and never holds per-flow state.
    """
    if not indices:
        return
    stats = stats if stats is not None else ReplayStats()
    ordered = order_by_time(entries, indices)
    tasks = deque(_SegmentReplayTask(str(path), index, config) for index in ordered)
    pending = deque(ordered)
    heap: list[tuple[tuple, PacketRecord, int, list[PacketRecord], int]] = []

    def push(segment: int, packets: list[PacketRecord], position: int) -> None:
        packet = packets[position]
        key = (*merge_sort_key(packet), segment, position)
        heapq.heappush(heap, (key, packet, segment, packets, position))

    with multiprocessing.Pool(workers) as pool:
        # Dispatch a bounded window of tasks (workers + 1 outstanding)
        # instead of imap over the whole list: workers must not race
        # ahead of the consumer and buffer every synthesized segment —
        # that would rebuild the batch path's memory blowup in the
        # result queue.
        in_flight: deque = deque()

        def refill() -> None:
            while tasks and len(in_flight) <= workers:
                in_flight.append(
                    pool.apply_async(_replay_segment, (tasks.popleft(),))
                )

        refill()
        while True:
            while pending and (
                not heap or heap[0][0][0] >= entries[pending[0]].time_min
            ):
                segment = pending.popleft()
                packets = in_flight.popleft().get()
                refill()
                stats.flows_replayed += entries[segment].flow_count
                if packets:
                    push(segment, packets, 0)
            if not heap:
                return
            _key, packet, segment, packets, position = heapq.heappop(heap)
            yield packet
            stats.packets_emitted += 1
            if position + 1 < len(packets):
                push(segment, packets, position + 1)
