"""Segment reader: seek-and-decode access into a ``.fctca`` archive.

:class:`ArchiveReader` memory-maps the archive (falling back to plain
seeks where mmap is unavailable), parses the fixed trailer and footer
index once, and then serves individual segments on demand —
:meth:`load_segment` decodes exactly one segment's bytes through the
ordinary ``.fctc`` codec and nothing else.  The index entries are public
so query planners can decide *which* segments to decode; the reader
counts what was actually decoded (``segments_decoded`` /
``bytes_decoded``) so callers can assert they touched less than the
whole file.
"""

from __future__ import annotations

import io
import mmap
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.archive.format import (
    ARCHIVE_MAGIC,
    ARCHIVE_VERSION,
    HEADER,
    TRAILER,
    TRAILER_MAGIC,
    SegmentIndexEntry,
    unpack_footer,
)
from repro.core.codec import read_compressed
from repro.core.datasets import CompressedTrace
from repro.core.errors import ArchiveError, CodecError


def parse_archive_tail(
    stream: BinaryIO,
) -> tuple[float, list[SegmentIndexEntry], int]:
    """Validate an archive stream; returns (epoch, entries, footer offset).

    Shared by the reader and the append path (which truncates the footer
    and writes new segments over it).
    """
    stream.seek(0, io.SEEK_END)
    size = stream.tell()
    if size < HEADER.size + TRAILER.size:
        raise ArchiveError(f"archive too small to be valid: {size} bytes")
    stream.seek(0)
    magic, version, epoch = HEADER.unpack(stream.read(HEADER.size))
    if magic != ARCHIVE_MAGIC:
        raise ArchiveError(f"bad archive magic: {magic!r}")
    if version != ARCHIVE_VERSION:
        raise ArchiveError(f"unsupported archive version: {version}")
    stream.seek(size - TRAILER.size)
    footer_offset, footer_length, trailer_magic = TRAILER.unpack(
        stream.read(TRAILER.size)
    )
    if trailer_magic != TRAILER_MAGIC:
        raise ArchiveError(f"bad archive trailer magic: {trailer_magic!r}")
    if (
        footer_offset < HEADER.size
        or footer_offset + footer_length + TRAILER.size != size
    ):
        raise ArchiveError(
            f"archive footer range [{footer_offset}, +{footer_length}] "
            f"inconsistent with file size {size}"
        )
    stream.seek(footer_offset)
    entries = unpack_footer(stream.read(footer_length))
    for index, entry in enumerate(entries):
        if entry.offset < HEADER.size or entry.offset + entry.length > footer_offset:
            raise ArchiveError(
                f"segment {index} byte range [{entry.offset}, +{entry.length}] "
                f"escapes the segment region"
            )
    return epoch, entries, footer_offset


class ArchiveReader:
    """Open a ``.fctca`` file for segment-granular reads."""

    def __init__(self, path: str | Path, *, use_mmap: bool = True) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        self._mmap: mmap.mmap | None = None
        try:
            self.epoch, self.entries, self._footer_offset = parse_archive_tail(
                self._file
            )
            if use_mmap:
                try:
                    self._mmap = mmap.mmap(
                        self._file.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except (OSError, ValueError):
                    self._mmap = None  # fall back to seek+read
        except Exception:
            self._file.close()
            raise
        self.segments_decoded = 0
        self.bytes_decoded = 0

    @property
    def segment_count(self) -> int:
        return len(self.entries)

    def flow_count(self) -> int:
        """Total flows across every segment (from the index alone)."""
        return sum(entry.flow_count for entry in self.entries)

    def packet_count(self) -> int:
        """Total original packets across every segment (index only)."""
        return sum(entry.packet_count for entry in self.entries)

    def time_bounds(self) -> tuple[float, float] | None:
        """(earliest, latest) flow timestamp across segments (index only)."""
        if not self.entries:
            return None
        return (
            min(entry.time_min for entry in self.entries),
            max(entry.time_max for entry in self.entries),
        )

    def read_segment_bytes(self, index: int) -> bytes:
        """The raw ``.fctc`` bytes of segment ``index``."""
        entry = self._entry(index)
        if self._mmap is not None:
            return self._mmap[entry.offset : entry.offset + entry.length]
        self._file.seek(entry.offset)
        data = self._file.read(entry.length)
        if len(data) != entry.length:
            raise ArchiveError(f"segment {index}: short read")
        return data

    def load_segment(self, index: int) -> CompressedTrace:
        """Decode one segment; counts toward the decode statistics."""
        entry = self._entry(index)
        try:
            compressed = read_compressed(io.BytesIO(self.read_segment_bytes(index)))
        except CodecError as exc:
            raise ArchiveError(f"segment {index}: {exc}") from exc
        self.segments_decoded += 1
        self.bytes_decoded += entry.length
        return compressed

    def iter_segments(self) -> Iterator[tuple[int, CompressedTrace]]:
        """Decode every segment in file order."""
        for index in range(len(self.entries)):
            yield index, self.load_segment(index)

    def _entry(self, index: int) -> SegmentIndexEntry:
        if not 0 <= index < len(self.entries):
            raise ArchiveError(
                f"segment index {index} out of range ({len(self.entries)})"
            )
        return self.entries[index]

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._file.close()

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
