"""The :class:`TraceStore` session — one façade over the whole system.

``repro.open(path)`` sniffs the input (TSH / pcap / ``.fctc`` container
/ ``.fctca`` archive) and returns the matching session class.  All four
expose one capability-driven surface:

========================  ====  ====  =========  =======
verb                      tsh   pcap  container  archive
========================  ====  ====  =========  =======
``info()``                 ✓     ✓       ✓          ✓
``packets()``              ✓     ✓       ✓          ✓
``flows()`` / ``query()``  ✓     ✓       ✓          ✓
``compress(dest)``         ✓     ✓       ✓¹         ✓¹
``export(dest)``           ✓     ✓       ✓          ✓
``append(source)``         —     —       —          ✓
``filter(dest, pred)``     —     —       —          ✓
``stats()``                ✓     ✓       ✓³         ✓³
``matrices()``             ✓     ✓       ✓          ✓
``model()``                ✓     ✓       ✓²         —
========================  ====  ====  =========  =======

¹ re-encode through a different section backend; ² a container *is* a
fitted traffic model, a trace file is compressed first; ³ the windowed
traffic-matrix report (``repro.analysis/matrix-report/v1``) — a raw
trace's ``stats()`` without matrix arguments keeps returning the legacy
packet-level :class:`~repro.trace.stats.TraceStatistics`.

A verb a kind cannot honor raises
:class:`~repro.api.errors.CapabilityError` naming the kinds that can.
Internally each verb picks the batch, streaming, or archive-segment
engine path by source kind and input size — callers never choose a
module, only an :class:`~repro.api.options.Options` value.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.api.errors import (
    CapabilityError,
    CorruptInputError,
    EmptyTraceError,
    OptionsError,
)
from repro.api.options import (
    MODE_BATCH,
    MODE_STREAM,
    Options,
)
from repro.api.sniff import SourceKind, sniff_kind
from repro.analysis.matrices import (
    DEFAULT_SCAN_FANOUT,
    DEFAULT_TOP_K,
    DEFAULT_WINDOW,
    AddressAnonymizer,
    MatrixReport,
    StreamingWindowAggregator,
    TrafficMatrix,
    matrix_report_for_archive,
    matrix_report_for_compressed,
)
from repro.core.flowmeta import flow_records
from repro.core.codec import (
    container_info,
    dataset_sizes,
    deserialize_compressed,
    serialize_compressed,
)
from repro.core.compressor import compress_trace
from repro.core.datasets import CompressedTrace
from repro.core.errors import CodecError, CompressionError
from repro.core.pipeline import CompressionReport, report_for, report_for_stream
from repro.core.replay import (
    IteratorSpecFeed,
    StreamingDecompressor,
    merge_packet_stream,
)
from repro.core.decompressor import flow_specs
from repro.core.generator import TraceModel
from repro.net.packet import PacketRecord
from repro.obs import RunReport, record_run, scoped as obs_scoped
from repro.query.engine import (
    FlowSummary,
    QueryEngine,
    QueryResult,
    QueryStats,
    flow_summaries,
    summarize_record,
)
from repro.query.predicates import MatchAll, Predicate
from repro.trace.export import ExportResult, export_packet_stream
from repro.trace.reader import count_tsh_packets, iter_tsh_packets
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.trace import Trace

__all__ = [
    "ArchiveBuildReport",
    "ArchiveStore",
    "ContainerStore",
    "StoreInfo",
    "TraceFileStore",
    "TraceStore",
    "open_store",
]


@contextmanager
def _typed_decode_errors(path: Path):
    """Re-raise low-level decode failures as the façade's typed errors."""
    try:
        yield
    except CodecError as exc:  # ArchiveError subclasses CodecError
        raise CorruptInputError(f"{path}: {exc}") from exc


@dataclass(frozen=True)
class StoreInfo:
    """The uniform ``store.info()`` headline plus kind-specific lines.

    ``packets`` counts original (pre-compression) packets; ``flows`` is
    ``None`` where the source has no flow structure on disk (raw trace
    files).  ``detail_lines`` carries the kind-specific report the CLI
    prints verbatim.
    """

    kind: SourceKind
    path: Path
    size_bytes: int
    packets: int
    flows: int | None
    detail_lines: tuple[str, ...]

    def summary_lines(self) -> list[str]:
        return list(self.detail_lines)


@dataclass(frozen=True)
class ArchiveBuildReport:
    """What one archive write (build / append / re-encode) produced."""

    path: Path
    segments_written: int
    segments_total: int
    packets: int


class TraceStore:
    """Base session: holds the path + options, defaults verbs to typed errors.

    Use as a context manager; only the archive session holds an open
    file handle, but closing uniformly keeps caller code kind-agnostic.
    """

    kind: SourceKind

    def __init__(self, path: str | Path, options: Options | None = None) -> None:
        self.path = Path(path)
        self.options = options or Options()

    # -- capability scaffolding ------------------------------------------

    def _unsupported(self, verb: str, supported: str) -> CapabilityError:
        return CapabilityError(
            f"{verb} is not supported on a {self.kind.value} store "
            f"({self.path}); supported on: {supported}"
        )

    # -- the uniform surface ---------------------------------------------

    def info(self) -> StoreInfo:
        raise NotImplementedError

    def packets(
        self,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        workers: int = 1,
        stats: QueryStats | None = None,
    ) -> Iterator[PacketRecord]:
        raise NotImplementedError

    def flows(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> Iterator[FlowSummary]:
        raise NotImplementedError

    def query(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> QueryResult:
        raise NotImplementedError

    def compress(
        self,
        dest: str | Path,
        *,
        options: Options | None = None,
        report: bool = False,
    ) -> CompressionReport | ArchiveBuildReport | RunReport:
        """Compress (or re-encode) this source into ``dest``.

        With ``report=True`` the whole run records into a private
        :mod:`repro.obs` registry and the structured
        :class:`~repro.obs.RunReport` is returned instead of the
        kind-specific build report — every counter, stage timer and
        high-water mark of the run, ready for ``to_json()``.  With
        ``report=False`` (default) metrics land in the ambient registry,
        unless ``options.metrics`` is False, which scopes a disabled
        registry around the verb.  The engine path taken is the same in
        all three cases.
        """
        options = options or self.options
        if report:
            with record_run(
                "compress",
                meta={
                    "source": str(self.path),
                    "dest": str(Path(dest)),
                    "source_kind": self.kind.value,
                },
            ) as run:
                self._compress(dest, options=options)
            return run.report
        if not options.metrics:
            with obs_scoped(None):
                return self._compress(dest, options=options)
        return self._compress(dest, options=options)

    def _compress(
        self, dest: str | Path, *, options: Options
    ) -> CompressionReport | ArchiveBuildReport:
        raise NotImplementedError

    def export(
        self,
        dest: str | Path,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        workers: int = 1,
        stats: QueryStats | None = None,
    ) -> ExportResult:
        """Write the (optionally filtered) packet stream to ``dest``.

        The output format follows the suffix (``.pcap`` → pcap-lite,
        anything else → TSH); packets stream straight to disk, so
        memory never scales with the trace.  One verb covers what used
        to be three subcommands: decompress, replay, and convert.
        """
        return export_packet_stream(
            self.packets(predicate, limit=limit, workers=workers, stats=stats),
            dest,
        )

    def append(
        self,
        sources: Iterable[str | Path] | Iterable[PacketRecord],
        *,
        options: Options | None = None,
    ) -> ArchiveBuildReport:
        raise self._unsupported("append", "archive")

    def filter(
        self,
        dest: str | Path,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        options: Options | None = None,
    ) -> tuple[int, QueryStats]:
        raise self._unsupported("filter", "archive")

    def stats(
        self,
        *,
        window: float | None = None,
        origin: float = 0.0,
        since: float | None = None,
        until: float | None = None,
        top_k: int = DEFAULT_TOP_K,
        scan_fanout: int = DEFAULT_SCAN_FANOUT,
        anonymize_key: str | bytes | None = None,
        method: str = "index",
    ) -> TraceStatistics | MatrixReport:
        raise self._unsupported("stats", "tsh, pcap, container, archive")

    def matrices(
        self,
        *,
        window: float | None = DEFAULT_WINDOW,
        origin: float = 0.0,
        anonymize_key: str | bytes | None = None,
    ) -> Iterator[TrafficMatrix]:
        raise self._unsupported("matrices", "tsh, pcap, container, archive")

    def window_probe(
        self,
        windows: int,
        *,
        since: float | None = None,
        until: float | None = None,
    ):
        raise self._unsupported("window_probe", "archive")

    def fidelity(self, *, options: Options | None = None):
        raise self._unsupported("fidelity", "tsh, pcap")

    def model(self) -> TraceModel:
        raise self._unsupported("model", "tsh, pcap, container")

    def addresses(self) -> list[int]:
        raise self._unsupported("listing the address dataset", "container")

    def sections(self):
        raise self._unsupported("listing stored sections", "container")

    def close(self) -> None:
        """Release any open handles (idempotent)."""

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- shared helpers ---------------------------------------------------

    def _name(self, options: Options) -> str:
        return options.name or self.path.stem

    def _reject_parallel(self, workers: int) -> None:
        if workers != 1:
            raise self._unsupported("parallel replay (workers > 1)", "archive")

    def _query_over_rows(
        self,
        rows: Iterator[FlowSummary],
        predicate: Predicate | None,
        limit: int | None,
        stats: QueryStats,
    ) -> Iterator[FlowSummary]:
        """Evaluate a predicate over summary rows, maintaining ``stats``."""
        predicate = predicate or MatchAll()
        for row in rows:
            stats.flows_scanned += 1
            if predicate.match_flow(row):
                stats.flows_matched += 1
                yield row
                if limit is not None and stats.flows_matched >= limit:
                    return


class TraceFileStore(TraceStore):
    """Session over a raw packet-header trace (TSH or pcap).

    TSH inputs stream in fixed-size chunks wherever possible; pcap — a
    format this library only keeps for interoperability — is read
    whole.  Flow-level verbs (``flows``/``query``) run the input
    through the streaming compressor first: a raw trace has no flow
    records on disk, so the compressor *is* the flow scanner.
    """

    def __init__(self, path: str | Path, options: Options | None = None) -> None:
        super().__init__(path, options)
        self.kind = sniff_kind(self.path)
        if self.kind not in (SourceKind.TSH, SourceKind.PCAP):
            raise CorruptInputError(
                f"{self.path}: not a raw trace file ({self.kind.value})"
            )
        self._trace: Trace | None = None
        if self.packet_count() == 0:
            raise EmptyTraceError(f"{self.path}: trace holds no packets")

    # -- reading -----------------------------------------------------------

    def packet_count(self) -> int:
        if self.kind is SourceKind.TSH:
            return count_tsh_packets(self.path)
        return len(self.load_trace())

    def load_trace(self) -> Trace:
        """Materialize the whole trace, once per session (batch verbs)."""
        if self._trace is None:
            if self.kind is SourceKind.TSH:
                self._trace = Trace.load_tsh(self.path, name=self.options.name)
            else:
                self._trace = Trace.load_pcap(self.path, name=self.options.name)
        return self._trace

    def packets(
        self,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        workers: int = 1,
        stats: QueryStats | None = None,
    ) -> Iterator[PacketRecord]:
        self._reject_parallel(workers)
        if predicate is not None or limit is not None or stats is not None:
            raise self._unsupported(
                "filtered packet replay", "container, archive"
            )
        if self.kind is SourceKind.TSH:
            return iter_tsh_packets(
                self.path, self.options.streaming.chunk_packets
            )
        return iter(self.load_trace().packets)

    def flows(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> Iterator[FlowSummary]:
        stats = QueryStats()
        return self._query_over_rows(
            flow_summaries(0, self._compress_in_memory(self.options)),
            predicate,
            limit,
            stats,
        )

    def query(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> QueryResult:
        stats = QueryStats(
            segments_total=1,
            segments_matched=1,
            segments_decoded=1,
            bytes_total=self.path.stat().st_size,
            bytes_decoded=self.path.stat().st_size,
        )
        result = QueryResult(stats=stats)
        rows = flow_summaries(0, self._compress_in_memory(self.options))
        result.flows = list(self._query_over_rows(rows, predicate, limit, stats))
        return result

    def stats(
        self,
        *,
        window: float | None = None,
        origin: float = 0.0,
        since: float | None = None,
        until: float | None = None,
        top_k: int = DEFAULT_TOP_K,
        scan_fanout: int = DEFAULT_SCAN_FANOUT,
        anonymize_key: str | bytes | None = None,
        method: str = "index",
    ) -> TraceStatistics | MatrixReport:
        """Packet-level statistics, or the windowed matrix report.

        With no matrix arguments this stays the legacy packet-level
        :class:`~repro.trace.stats.TraceStatistics`.  Any matrix
        argument (a ``window`` span, time bounds, an anonymization key,
        ``method="decode"``) switches to the
        :class:`~repro.analysis.matrices.MatrixReport` built from this
        trace's in-memory compression — a raw trace has no flow records
        on disk, so the compressor is the flow scanner here too.
        """
        if (
            window is None
            and since is None
            and until is None
            and anonymize_key is None
            and method == "index"
        ):
            return compute_statistics(self.load_trace())
        return matrix_report_for_compressed(
            self._compress_in_memory(self.options),
            source=str(self.path),
            window=window,
            origin=origin,
            since=since,
            until=until,
            top_k=top_k,
            scan_fanout=scan_fanout,
            anonymize_key=anonymize_key,
            method=method,
            config=self.options.decompressor,
        )

    def matrices(
        self,
        *,
        window: float | None = DEFAULT_WINDOW,
        origin: float = 0.0,
        anonymize_key: str | bytes | None = None,
    ) -> Iterator[TrafficMatrix]:
        return _matrices_over(
            flow_records(
                self._compress_in_memory(self.options),
                self.options.decompressor,
            ),
            window=window,
            origin=origin,
            anonymize_key=anonymize_key,
        )

    def fidelity(self, *, options: Options | None = None):
        """Score this capture's compress→reconstruct roundtrip.

        Returns a :class:`~repro.analysis.fidelity.ScenarioFidelity`
        labelled with the store's name (``seed`` is 0 — captures have
        no generator seed): compression ratio against the TSH size plus
        the interarrival-entropy / temporal-complexity / flow-size-KS
        drift between this file and its reconstruction.
        """
        from repro.analysis.fidelity import score_roundtrip
        from repro.core.codec import (
            deserialize_compressed,
            serialize_compressed,
        )
        from repro.core.decompressor import decompress_trace

        options = options or self.options
        original = self.load_trace()
        compressed = self._compress_in_memory(options)
        data = serialize_compressed(
            compressed, backend=options.codec.backend, level=options.codec.level
        )
        reconstructed = decompress_trace(
            deserialize_compressed(data), options.decompressor
        )
        return score_roundtrip(
            self._name(options), 0, original, reconstructed, len(data)
        )

    def model(self) -> TraceModel:
        return TraceModel.fit(self._compress_in_memory(self.options))

    def info(self) -> StoreInfo:
        packets = self.packet_count()
        size = self.path.stat().st_size
        return StoreInfo(
            kind=self.kind,
            path=self.path,
            size_bytes=size,
            packets=packets,
            flows=None,
            detail_lines=(
                f"kind    : {self.kind.value} trace file",
                f"packets : {packets}",
                f"size    : {size} B",
            ),
        )

    # -- compressing -------------------------------------------------------

    def _compress(
        self, dest: str | Path, *, options: Options
    ) -> CompressionReport | ArchiveBuildReport:
        """Compress into ``dest`` — ``.fctca`` builds a segmented archive,
        anything else a single ``.fctc`` container.

        The engine path is chosen internally: ``workers > 1`` shards
        flows across processes (TSH container output only — the sharded
        merge has no archive or pcap form, so those combinations are
        rejected rather than silently run single-process), stream mode
        (or ``auto`` above the size threshold) feeds chunked reads to
        the streaming compressor, and small batch inputs run the
        paper's one-shot path.  Batch and stream produce byte-identical
        containers.
        """
        dest = Path(dest)
        if options.streaming.workers > 1 and (
            dest.suffix.lower() == ".fctca" or self.kind is not SourceKind.TSH
        ):
            raise OptionsError(
                "workers > 1 shards a TSH trace into one container; it "
                "supports neither archive output nor pcap input"
            )
        if dest.suffix.lower() == ".fctca":
            return _build_archive(dest, [self._input_feed(options)], options)
        backend, level = options.codec.backend, options.codec.level
        name = self._name(options)
        if options.streaming.workers > 1:
            from repro.core.streaming import compress_tsh_file_parallel

            compressed = compress_tsh_file_parallel(
                self.path,
                options.streaming.workers,
                options.compressor,
                name=name,
                chunk_size=options.streaming.chunk_packets,
                engine=options.streaming.engine,
            )
        elif self._should_stream(options):
            from repro.core.streaming import compress_tsh_file

            compressed = compress_tsh_file(
                self.path,
                options.compressor,
                chunk_size=options.streaming.chunk_packets,
                name=name,
                engine=options.streaming.engine,
            ).output
        elif self.kind is SourceKind.TSH and self._columnar(options):
            # Batch-sized TSH input on the columnar engine: the chunked
            # vectorized path is strictly faster than materializing the
            # trace, and produces the same bytes and the same report
            # numbers (a TSH trace's stored size is 44 * packets either
            # way).
            from repro.core.streaming import compress_tsh_file

            compressed = compress_tsh_file(
                self.path,
                options.compressor,
                chunk_size=options.streaming.chunk_packets,
                name=name,
                engine="columnar",
            ).output
        else:
            trace = self.load_trace()
            trace.name = name
            compressed = compress_trace(trace, options.compressor)
            data = serialize_compressed(compressed, backend=backend, level=level)
            dest.write_bytes(data)
            return report_for(trace, compressed, data)
        data = serialize_compressed(compressed, backend=backend, level=level)
        dest.write_bytes(data)
        return report_for_stream(compressed, data)

    @staticmethod
    def _columnar(options: Options) -> bool:
        """True when this options value resolves to the columnar engine."""
        from repro.core.columnar import ENGINE_COLUMNAR, resolve_engine

        return resolve_engine(options.streaming.engine) == ENGINE_COLUMNAR

    def _should_stream(self, options: Options) -> bool:
        streaming = options.streaming
        if self.kind is not SourceKind.TSH:
            return False  # pcap has no chunked reader; batch is the path
        if streaming.mode == MODE_STREAM:
            return True
        if streaming.mode == MODE_BATCH:
            return False
        return self.packet_count() >= streaming.stream_threshold_packets

    def _input_packets(self, options: Options) -> Iterator[PacketRecord]:
        """The input stream under a *per-call* options value.

        ``packets()`` chunks by the session's options; compression verbs
        that take their own ``options=`` must honor that value's
        streaming layer instead.
        """
        if self.kind is SourceKind.TSH:
            return iter_tsh_packets(self.path, options.streaming.chunk_packets)
        return iter(self.load_trace().packets)

    def _input_feed(self, options: Options):
        """The archive-build feed: columnar chunks where the fast path
        applies (TSH input, columnar engine), packet records otherwise.
        :meth:`ArchiveWriter.feed` accepts either shape."""
        if self.kind is SourceKind.TSH and self._columnar(options):
            from repro.trace.reader import read_columns

            return read_columns(self.path, options.streaming.chunk_packets)
        return self._input_packets(options)

    def _compress_in_memory(self, options: Options) -> CompressedTrace:
        """The flow scan behind ``flows``/``query``/``model``: compress
        without serializing, streaming where the format allows."""
        if self.kind is SourceKind.TSH:
            from repro.core.streaming import compress_tsh_file

            return compress_tsh_file(
                self.path,
                options.compressor,
                chunk_size=options.streaming.chunk_packets,
                name=self._name(options),
                engine=options.streaming.engine,
            ).output
        return compress_trace(self.load_trace(), options.compressor)


class ContainerStore(TraceStore):
    """Session over one compressed ``.fctc`` container.

    The container is decoded eagerly — it is the *compressed* form, a
    few percent of the trace — so corruption surfaces at
    :func:`repro.open` as :class:`CorruptInputError`, and every verb
    afterwards works off the validated datasets.
    """

    kind = SourceKind.CONTAINER

    def __init__(self, path: str | Path, options: Options | None = None) -> None:
        super().__init__(path, options)
        self._data = self.path.read_bytes()
        with _typed_decode_errors(self.path):
            self.compressed = deserialize_compressed(self._data)
            self._container_info = container_info(self._data)

    def packets(
        self,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        workers: int = 1,
        stats: QueryStats | None = None,
    ) -> Iterator[PacketRecord]:
        self._reject_parallel(workers)
        config = self.options.decompressor
        if predicate is None and limit is None and stats is None:
            return StreamingDecompressor(self.compressed, config).packets()
        if stats is None:
            stats = QueryStats()
        stats.segments_total = stats.segments_matched = 1
        stats.segments_decoded = 1
        stats.bytes_total = stats.bytes_decoded = len(self._data)
        match = (predicate or MatchAll()).match_flow

        def keep(record) -> bool:
            stats.flows_scanned += 1
            if limit is not None and stats.flows_matched >= limit:
                return False
            if match(summarize_record(0, self.compressed, record)):
                stats.flows_matched += 1
                return True
            return False

        feed = IteratorSpecFeed(
            flow_specs(self.compressed, config, record_filter=keep)
        )
        return merge_packet_stream(feed, config)

    def flows(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> Iterator[FlowSummary]:
        return self._query_over_rows(
            flow_summaries(0, self.compressed), predicate, limit, QueryStats()
        )

    def query(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> QueryResult:
        stats = QueryStats(
            segments_total=1,
            segments_matched=1,
            segments_decoded=1,
            bytes_total=len(self._data),
            bytes_decoded=len(self._data),
        )
        result = QueryResult(stats=stats)
        result.flows = list(
            self._query_over_rows(
                flow_summaries(0, self.compressed), predicate, limit, stats
            )
        )
        return result

    def _compress(
        self, dest: str | Path, *, options: Options
    ) -> CompressionReport | ArchiveBuildReport:
        """Re-encode: same datasets, different section backends.

        A ``None`` backend keeps each section's *source* backend — the
        default is a faithful rewrite, matching the archive verbs, not
        a silent fall-back to raw.  ``dest`` ending in ``.fctca`` wraps
        the container as a one-segment archive instead (epoch 0 —
        container timestamps are already relative to their base time).
        """
        dest = Path(dest)
        backend = options.codec.backend
        if backend is None:
            backend = self._source_backend_spec()
        if dest.suffix.lower() == ".fctca":
            from repro.archive.writer import ArchiveWriter

            with ArchiveWriter.create(
                dest,
                options=options,
                epoch=options.archive.epoch or 0.0,
                name=self._name(options),
            ) as writer:
                writer.write_segment(
                    self.compressed, backend=backend, level=options.codec.level
                )
                entries = writer.close()
            return ArchiveBuildReport(
                path=dest,
                segments_written=len(entries),
                segments_total=len(entries),
                packets=self.compressed.original_packet_count,
            )
        data = serialize_compressed(
            self.compressed, backend=backend, level=options.codec.level
        )
        dest.write_bytes(data)
        return report_for_stream(self.compressed, data)

    def _source_backend_spec(self) -> dict[str, str]:
        """Per-section backend names this container was stored with."""
        return {
            section.name: section.backend
            for section in self._container_info.sections
        }

    def model(self) -> TraceModel:
        return TraceModel.fit(self.compressed)

    def stats(
        self,
        *,
        window: float | None = DEFAULT_WINDOW,
        origin: float = 0.0,
        since: float | None = None,
        until: float | None = None,
        top_k: int = DEFAULT_TOP_K,
        scan_fanout: int = DEFAULT_SCAN_FANOUT,
        anonymize_key: str | bytes | None = None,
        method: str = "index",
    ) -> MatrixReport:
        """The windowed traffic-matrix report over this container's flows."""
        return matrix_report_for_compressed(
            self.compressed,
            source=str(self.path),
            window=window,
            origin=origin,
            since=since,
            until=until,
            top_k=top_k,
            scan_fanout=scan_fanout,
            anonymize_key=anonymize_key,
            method=method,
            config=self.options.decompressor,
        )

    def matrices(
        self,
        *,
        window: float | None = DEFAULT_WINDOW,
        origin: float = 0.0,
        anonymize_key: str | bytes | None = None,
    ) -> Iterator[TrafficMatrix]:
        return _matrices_over(
            flow_records(self.compressed, self.options.decompressor),
            window=window,
            origin=origin,
            anonymize_key=anonymize_key,
        )

    def info(self) -> StoreInfo:
        """Everything ``repro-trace inspect`` prints, as structured lines."""
        info = self._container_info
        compressed = self.compressed
        sizes = dataset_sizes(compressed, format_version=info.format_version)
        lines = [
            f"name                 : {compressed.name}",
            f"format               : v{info.format_version}",
            f"flows (time-seq)     : {compressed.flow_count()}",
            f"original packets     : {compressed.original_packet_count}",
        ]
        short_count, long_count = compressed.template_counts()
        lines.append(f"short templates      : {short_count}")
        lines.append(f"long templates       : {long_count}")
        lines.append(f"unique destinations  : {len(compressed.addresses)}")
        total = sizes["total"] or 1
        lines.append("raw dataset sizes (pre-backend):")
        for dataset, size in sizes.items():
            if dataset == "total":
                lines.append(f"  {dataset:<22}: {size} B")
            else:
                lines.append(
                    f"  {dataset:<22}: {size} B ({100.0 * size / total:.1f}%)"
                )
        stored_total = info.total_bytes or 1
        lines.append("stored sections:")
        for section in info.sections:
            share = 100.0 * section.stored_bytes / stored_total
            ratio = 100.0 * section.stored_bytes / (section.raw_bytes or 1)
            lines.append(
                f"  {section.name:<22}: {section.stored_bytes} B "
                f"({section.backend}, {share:.1f}% of file, "
                f"{ratio:.1f}% of raw)"
            )
        lines.append(f"  {'file total':<22}: {info.total_bytes} B")
        return StoreInfo(
            kind=self.kind,
            path=self.path,
            size_bytes=len(self._data),
            packets=compressed.original_packet_count,
            flows=compressed.flow_count(),
            detail_lines=tuple(lines),
        )

    def addresses(self) -> list[int]:
        """The destination-address dataset, in index order."""
        return list(self.compressed.addresses)

    def sections(self):
        """Per-section storage framing (name, backend, sizes) as stored.

        A tuple of :class:`~repro.core.codec.SectionInfo` — what the
        CLI's backend report prints after an encoded compress.
        """
        return self._container_info.sections


class ArchiveStore(TraceStore):
    """Session over a segmented ``.fctca`` archive.

    Wraps an open :class:`~repro.archive.reader.ArchiveReader`; the
    footer index is parsed (and validated) at :func:`repro.open` time,
    segment bytes only when a verb actually needs them.
    """

    kind = SourceKind.ARCHIVE

    def __init__(self, path: str | Path, options: Options | None = None) -> None:
        super().__init__(path, options)
        from repro.archive.reader import ArchiveReader

        with _typed_decode_errors(self.path):
            self.reader = ArchiveReader(self.path)

    def close(self) -> None:
        self.reader.close()

    def _engine(self) -> QueryEngine:
        return QueryEngine(self.reader)

    def packets(
        self,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        workers: int = 1,
        stats: QueryStats | None = None,
    ) -> Iterator[PacketRecord]:
        if workers < 1:
            raise OptionsError(f"workers must be >= 1, got {workers}")
        if predicate is None and limit is None and stats is None:
            return self.reader.iter_packets(
                self.options.decompressor, workers=workers
            )
        if workers > 1:
            raise OptionsError(
                "parallel replay covers the full archive only; drop the "
                "flow filters/limit or the extra workers"
            )
        return self._engine().stream_packets(
            predicate,
            limit=limit,
            stats=stats,
            options=self.options,
        )

    def flows(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> Iterator[FlowSummary]:
        yield from self.query(predicate, limit=limit).flows

    def query(
        self, predicate: Predicate | None = None, *, limit: int | None = None
    ) -> QueryResult:
        return self._engine().run(predicate, limit=limit)

    def filter(
        self,
        dest: str | Path,
        predicate: Predicate | None = None,
        *,
        limit: int | None = None,
        options: Options | None = None,
    ) -> tuple[int, QueryStats]:
        """Write the matching flows as a new sub-archive at ``dest``.

        ``options.codec`` re-encodes the surviving segments; a ``None``
        backend keeps each source segment's own section backends.
        """
        options = options or self.options
        return self._engine().filter_to(
            dest, predicate, limit=limit, options=options
        )

    def _compress(
        self, dest: str | Path, *, options: Options
    ) -> CompressionReport | ArchiveBuildReport:
        """Re-encode every segment through ``options.codec`` into ``dest``."""
        dest = Path(dest)
        if dest.suffix.lower() != ".fctca":
            raise self._unsupported(
                "compressing an archive into a single container",
                "archive -> .fctca (or export + recompress)",
            )
        # A None backend keeps each source segment's own backends —
        # compress() with default options is a faithful rewrite.
        written, _stats = self._engine().filter_to(
            dest, MatchAll(), options=options
        )
        return ArchiveBuildReport(
            path=dest,
            segments_written=written,
            segments_total=written,
            packets=self.reader.packet_count(),
        )

    def append(
        self,
        sources: Iterable[str | Path] | Iterable[PacketRecord],
        *,
        options: Options | None = None,
    ) -> ArchiveBuildReport:
        """Extend the archive in place with more captures.

        ``sources`` is a list of trace paths (each opened through the
        façade, so TSH streams and pcap loads) or a bare packet
        iterable.  The reader is reopened afterwards, so the session
        sees the appended segments.
        """
        options = options or self.options
        from repro.archive.writer import ArchiveWriter

        feeds = _packet_feeds(sources, options)
        self.reader.close()
        try:
            with ArchiveWriter.append(self.path, options=options) as writer:
                before = writer.segment_count
                fed = 0
                for feed in feeds:
                    fed += writer.feed(feed)
                entries = writer.close()
        finally:
            from repro.archive.reader import ArchiveReader

            self.reader = ArchiveReader(self.path)
        return ArchiveBuildReport(
            path=self.path,
            segments_written=len(entries) - before,
            segments_total=len(entries),
            packets=fed,
        )

    def stats(
        self,
        *,
        window: float | None = DEFAULT_WINDOW,
        origin: float = 0.0,
        since: float | None = None,
        until: float | None = None,
        top_k: int = DEFAULT_TOP_K,
        scan_fanout: int = DEFAULT_SCAN_FANOUT,
        anonymize_key: str | bytes | None = None,
        method: str = "index",
        query_stats: QueryStats | None = None,
    ) -> MatrixReport:
        """Windowed matrix statistics straight off the archive.

        ``method="index"`` (default) rides the flow-metadata fast path —
        no packet is ever synthesized and the footer index prunes
        segments outside ``[since, until]``; ``method="decode"`` is the
        full-decompression baseline producing identical windows.  Pass
        ``query_stats`` to observe the segment/byte accounting.
        """
        return matrix_report_for_archive(
            self.reader,
            window=window,
            origin=origin,
            since=since,
            until=until,
            top_k=top_k,
            scan_fanout=scan_fanout,
            anonymize_key=anonymize_key,
            method=method,
            config=self.options.decompressor,
            stats=query_stats,
        )

    def matrices(
        self,
        *,
        window: float | None = DEFAULT_WINDOW,
        origin: float = 0.0,
        anonymize_key: str | bytes | None = None,
    ) -> Iterator[TrafficMatrix]:
        return _matrices_over(
            self._engine().iter_flow_records(
                None, config=self.options.decompressor
            ),
            window=window,
            origin=origin,
            anonymize_key=anonymize_key,
        )

    def window_probe(
        self,
        windows: int,
        *,
        since: float | None = None,
        until: float | None = None,
    ):
        """Per-window segment-overlap dry run (no payload decoded).

        Returns the :class:`~repro.query.engine.WindowProbe` rows the
        CLI prints for ``repro archive info --windows N`` — the decode
        cost estimate to consult before running windowed stats.
        """
        return self._engine().window_probe(windows, since=since, until=until)

    def info(self) -> StoreInfo:
        from repro.analysis.archive import (
            archive_overview_lines,
            backend_usage_lines,
            prune_probe_lines,
            segment_table,
        )

        lines = list(archive_overview_lines(self.reader))
        lines.extend(backend_usage_lines(self.reader))
        lines.extend(prune_probe_lines(self.reader))
        if self.reader.entries:
            lines.append("")
            lines.extend(segment_table(self.reader).splitlines())
        return StoreInfo(
            kind=self.kind,
            path=self.path,
            size_bytes=self.path.stat().st_size,
            packets=self.reader.packet_count(),
            flows=self.reader.flow_count(),
            detail_lines=tuple(lines),
        )


_STORE_CLASSES = {
    SourceKind.TSH: TraceFileStore,
    SourceKind.PCAP: TraceFileStore,
    SourceKind.CONTAINER: ContainerStore,
    SourceKind.ARCHIVE: ArchiveStore,
}


def open_store(path: str | Path, *, options: Options | None = None) -> TraceStore:
    """Open ``path`` as the right :class:`TraceStore` session.

    The one way in: sniffs the content (never just the suffix), raises
    the :mod:`repro.api.errors` types on anything unusable, and returns
    a session whose verbs pick engine paths internally.  Exposed as
    :func:`repro.open` and :func:`repro.api.open`.
    """
    kind = sniff_kind(path)
    return _STORE_CLASSES[kind](path, options)


def _matrices_over(
    records,
    *,
    window: float | None,
    origin: float,
    anonymize_key: str | bytes | None,
) -> Iterator[TrafficMatrix]:
    """Stream per-window matrices off a flow-record iterator."""
    anonymizer = (
        AddressAnonymizer(anonymize_key) if anonymize_key is not None else None
    )
    aggregator = StreamingWindowAggregator(
        window, origin=origin, anonymizer=anonymizer
    )
    for record in records:
        yield from aggregator.feed(record)
    yield from aggregator.finish()


# -- multi-source archive construction --------------------------------------


def _packet_feeds(
    sources: Iterable[str | Path] | Iterable[PacketRecord],
    options: Options,
) -> list[Iterator[PacketRecord]]:
    """Normalize append/build sources into packet iterators.

    Paths are opened through the façade (sniffed, typed errors — and
    validated *before* the destination is touched); a bare
    :class:`PacketRecord` iterable passes through lazily as one feed.
    """
    from itertools import chain

    iterator = iter(sources)
    try:
        first = next(iterator)
    except StopIteration:
        return []
    if isinstance(first, PacketRecord):
        return [chain([first], iterator)]
    feeds = []
    for source in chain([first], iterator):
        store = open_store(source, options=options)
        if not isinstance(store, TraceFileStore):
            raise CapabilityError(
                f"{source}: archive feeds take raw trace files, "
                f"not {store.kind.value}"
            )
        # TSH sources ride the columnar fast path when the engine allows
        # it; the archive writer accepts either feed shape.
        feeds.append(store._input_feed(options))
    return feeds


def _build_archive(
    dest: Path, feeds: list[Iterator[PacketRecord]], options: Options
) -> ArchiveBuildReport:
    from repro.archive.writer import ArchiveWriter

    with ArchiveWriter.create(
        dest, options=options, name=options.name or dest.stem
    ) as writer:
        fed = 0
        for feed in feeds:
            fed += writer.feed(feed)
        entries = writer.close()
    return ArchiveBuildReport(
        path=dest,
        segments_written=len(entries),
        segments_total=len(entries),
        packets=fed,
    )


def create_archive(
    dest: str | Path,
    sources: Iterable[str | Path] | Iterable[PacketRecord],
    *,
    options: Options | None = None,
) -> ArchiveBuildReport:
    """Compress one or more captures into a new ``.fctca`` at ``dest``.

    Every source is sniffed and validated before ``dest`` is truncated;
    sources must be raw trace files (or one packet iterable), in time
    order, sharing one clock.
    """
    options = options or Options()
    dest = Path(dest)
    return _build_archive(dest, _packet_feeds(sources, options), options)
