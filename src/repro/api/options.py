"""The one layered configuration object of the façade.

Before the façade, every subsystem grew its own knobs: the compressor
has :class:`~repro.core.compressor.CompressorConfig`, the decompressor
:class:`~repro.core.decompressor.DecompressorConfig`, the codec takes
``backend``/``level`` strings, the streaming front-end chunk sizes and
worker counts, and the archive writer segment bounds.  :class:`Options`
nests them into one validated value that every façade verb (and, via
their ``options=`` keywords, the archive writer and query engine)
accepts:

* ``options.codec`` — section backend + level (:class:`CodecOptions`)
* ``options.streaming`` — batch/stream choice, chunking, workers
  (:class:`StreamingOptions`)
* ``options.archive`` — segment rotation bounds + epoch
  (:class:`ArchiveOptions`)
* ``options.serve`` — ingest-daemon sources, queue bounds, drain policy
  (:class:`ServeOptions`)
* ``options.compressor`` / ``options.decompressor`` — the paper's
  algorithm tunables, unchanged.

All layers are frozen dataclasses: derive variants with
:func:`dataclasses.replace` or build one from flat CLI-style knobs with
:meth:`Options.make`.  Validation happens eagerly at construction and
raises :class:`~repro.api.errors.OptionsError`, so a bad combination
fails before any input byte is read or output path truncated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.api.errors import OptionsError
from repro.core.backends import backend_names
from repro.core.columnar import ENGINE_AUTO, ENGINES
from repro.core.compressor import CompressorConfig
from repro.core.decompressor import DecompressorConfig

# Mirrored defaults (imported, not copied) so Options and the underlying
# modules can never disagree about what "default" means.
from repro.trace.framing import DEFAULT_MAX_FRAME_BYTES
from repro.trace.reader import DEFAULT_CHUNK_PACKETS
from repro.archive.writer import DEFAULT_SEGMENT_PACKETS, DEFAULT_SEGMENT_SPAN

MODE_AUTO = "auto"
MODE_BATCH = "batch"
MODE_STREAM = "stream"
_MODES = (MODE_AUTO, MODE_BATCH, MODE_STREAM)

DEFAULT_STREAM_THRESHOLD_PACKETS = 1 << 18
"""``auto`` mode switches to chunked reads at this input size (packets).

256 Ki packets is ~11 MiB of TSH — below it the whole-trace batch path
is faster and its memory trivial; above it bounded memory wins.  Batch
and stream produce byte-identical containers, so the switch is purely a
resource decision.
"""


@dataclass(frozen=True)
class CodecOptions:
    """Section-backend choice for serialized containers and segments.

    ``backend`` is a registered backend name (``raw``/``zlib``/``bz2``/
    ``lzma``), ``"auto"`` to trial each backend per section, or ``None``
    for the library default (``raw``, the paper's format).  ``level`` is
    the backend compression level; with ``backend=None`` it is advisory,
    exactly as the pre-façade entry points treated it.
    """

    backend: str | None = None
    level: int | None = None

    def __post_init__(self) -> None:
        # Re-raise the codec's validation as the façade's typed error.
        from repro.core.codec import validate_backend_request
        from repro.core.errors import CodecError

        try:
            validate_backend_request(self.backend, self.level)
        except (ValueError, CodecError) as exc:
            raise OptionsError(str(exc)) from exc


@dataclass(frozen=True)
class StreamingOptions:
    """How compression reads its input: batch, chunked, or sharded.

    ``mode="auto"`` (default) batches small inputs and streams large
    ones (:data:`DEFAULT_STREAM_THRESHOLD_PACKETS`); ``"stream"`` forces
    chunked reads (byte-identical output, bounded memory);  ``"batch"``
    forces whole-trace loads.  ``workers > 1`` shards flows across a
    process pool — that path renumbers templates, so it refuses to
    combine with ``mode="stream"``'s byte-identity promise.

    ``engine`` selects the compression hot path: ``"auto"`` (default)
    runs the vectorized columnar engine when numpy is importable and the
    scalar engine otherwise; ``"columnar"`` / ``"scalar"`` force one.
    Both engines emit byte-identical containers — the knob trades
    nothing but throughput.
    """

    mode: str = MODE_AUTO
    chunk_packets: int = DEFAULT_CHUNK_PACKETS
    workers: int = 1
    stream_threshold_packets: int = DEFAULT_STREAM_THRESHOLD_PACKETS
    engine: str = ENGINE_AUTO

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise OptionsError(
                f"streaming mode must be one of {'/'.join(_MODES)}: {self.mode!r}"
            )
        if self.engine not in ENGINES:
            raise OptionsError(
                f"engine must be one of {'/'.join(ENGINES)}: {self.engine!r}"
            )
        if self.chunk_packets < 1:
            raise OptionsError(
                f"chunk_packets must be >= 1, got {self.chunk_packets}"
            )
        if self.workers < 1:
            raise OptionsError(f"workers must be >= 1, got {self.workers}")
        if self.stream_threshold_packets < 0:
            raise OptionsError(
                "stream_threshold_packets must be >= 0, got "
                f"{self.stream_threshold_packets}"
            )
        if self.workers > 1 and self.mode == MODE_STREAM:
            raise OptionsError(
                "stream mode promises byte-identical output, which the "
                "parallel merge cannot; drop workers or the stream mode"
            )


@dataclass(frozen=True)
class ArchiveOptions:
    """Segment rotation bounds and time base for ``.fctca`` writes."""

    segment_packets: int = DEFAULT_SEGMENT_PACKETS
    segment_span: float | None = DEFAULT_SEGMENT_SPAN
    epoch: float | None = None

    def __post_init__(self) -> None:
        if self.segment_packets < 1:
            raise OptionsError(
                f"segment_packets must be >= 1: {self.segment_packets}"
            )
        if self.segment_span is not None and self.segment_span <= 0:
            raise OptionsError(
                f"segment_span must be positive: {self.segment_span}"
            )


DEFAULT_QUEUE_CHUNKS = 64
"""Per-source ingest queue bound, in decoded packet chunks.

Each queue slot holds one decoded payload chunk (at most one socket
frame or one tail read — a few thousand packets); the bound is what
keeps daemon memory independent of how fast a source bursts.
"""

DEFAULT_DRAIN_TIMEOUT = 10.0
"""Seconds a draining daemon waits for queued packets to compress."""

DEFAULT_TAIL_POLL_SECONDS = 0.25
"""How often a ``tail:`` source polls its file for growth."""


@dataclass(frozen=True)
class ServeOptions:
    """The ingest-daemon layer: sources, queue bounds, drain policy.

    ``sources`` are ``scheme:target[+format]`` strings (see
    :func:`repro.serve.sources.parse_source` for the grammar); rotation
    bounds stay where they always lived, in :class:`ArchiveOptions` —
    this layer only adds what a long-running service needs on top:
    ``rotate_seconds`` force-flushes quiet sources on a wall clock,
    ``queue_chunks`` bounds each source's ingest queue (backpressure
    beyond it), ``drain_timeout`` caps the graceful SIGTERM/SIGINT
    drain, ``stop_after_packets`` turns the daemon into a bounded run
    (smoke tests, benchmarks), and ``prometheus_port`` mounts the text
    exposition endpoint (0 picks an ephemeral port).
    """

    sources: tuple[str, ...] = ()
    rotate_seconds: float | None = None
    queue_chunks: int = DEFAULT_QUEUE_CHUNKS
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    stop_after_packets: int | None = None
    prometheus_port: int | None = None
    tail_poll_seconds: float = DEFAULT_TAIL_POLL_SECONDS

    def __post_init__(self) -> None:
        # Lazy: the parser is pure and import-light, but keeping the
        # serve package out of this module's import graph preserves the
        # façade's fast startup.
        from repro.serve.sources import parse_source

        if not isinstance(self.sources, tuple):
            object.__setattr__(self, "sources", tuple(self.sources))
        for spec in self.sources:
            try:
                parse_source(spec)
            except ValueError as exc:
                raise OptionsError(str(exc)) from exc
        if self.rotate_seconds is not None and self.rotate_seconds <= 0:
            raise OptionsError(
                f"rotate_seconds must be positive: {self.rotate_seconds}"
            )
        if self.queue_chunks < 1:
            raise OptionsError(
                f"queue_chunks must be >= 1: {self.queue_chunks}"
            )
        if self.max_frame_bytes < 44:
            raise OptionsError(
                "max_frame_bytes must hold at least one 44-byte record: "
                f"{self.max_frame_bytes}"
            )
        if self.drain_timeout <= 0:
            raise OptionsError(
                f"drain_timeout must be positive: {self.drain_timeout}"
            )
        if self.stop_after_packets is not None and self.stop_after_packets < 1:
            raise OptionsError(
                f"stop_after_packets must be >= 1: {self.stop_after_packets}"
            )
        if self.prometheus_port is not None and not (
            0 <= self.prometheus_port <= 65535
        ):
            raise OptionsError(
                f"prometheus_port out of range: {self.prometheus_port}"
            )
        if self.tail_poll_seconds <= 0:
            raise OptionsError(
                f"tail_poll_seconds must be positive: {self.tail_poll_seconds}"
            )


@dataclass(frozen=True)
class Options:
    """Every knob of the compression system, in one validated value.

    The zero-argument ``Options()`` reproduces the library's historic
    defaults (raw sections, auto batch/stream choice, one process, the
    paper's algorithm constants) — safe for fixtures and byte-level
    compatibility.  :meth:`production` is the deployment preset.
    ``name`` overrides the compressed trace's embedded name (default:
    the input file's stem).
    """

    codec: CodecOptions = field(default_factory=CodecOptions)
    streaming: StreamingOptions = field(default_factory=StreamingOptions)
    archive: ArchiveOptions = field(default_factory=ArchiveOptions)
    serve: ServeOptions = field(default_factory=ServeOptions)
    compressor: CompressorConfig = field(default_factory=CompressorConfig)
    decompressor: DecompressorConfig = field(default_factory=DecompressorConfig)
    name: str | None = None
    metrics: bool = True
    """Record :mod:`repro.obs` metrics during façade verbs.

    ``False`` scopes a disabled registry around each verb, reducing the
    instrumentation to no-op factory calls — the knob the overhead
    benchmark and metrics-averse embedders use.  Reports
    (``compress(..., report=True)``) force their own scoped registry
    regardless, since a report without metrics would be empty.
    """

    @classmethod
    def make(
        cls,
        *,
        backend: str | None = None,
        level: int | None = None,
        mode: str | None = None,
        stream: bool = False,
        chunk_packets: int | None = None,
        workers: int | None = None,
        engine: str | None = None,
        segment_packets: int | None = None,
        segment_span: float | None = None,
        epoch: float | None = None,
        name: str | None = None,
        compressor: CompressorConfig | None = None,
        decompressor: DecompressorConfig | None = None,
    ) -> "Options":
        """Build an :class:`Options` from flat, CLI-shaped knobs.

        ``None`` means "keep the default" everywhere, which lets a thin
        caller forward its optional flags verbatim.  ``stream=True`` is
        shorthand for ``mode="stream"``; an explicit ``chunk_packets``
        or ``workers`` without a mode keeps ``auto`` unless streaming
        was requested — matching the historic CLI flag semantics, where
        any streaming-family flag selects chunked reads and
        ``workers > 1`` selects the sharded path on its own.
        """
        if stream and mode is not None and mode != MODE_STREAM:
            raise OptionsError(
                f"stream=True contradicts mode={mode!r}"
            )
        streaming_kwargs = {}
        if stream or mode is not None:
            streaming_kwargs["mode"] = MODE_STREAM if stream else mode
        elif chunk_packets is not None or workers is not None:
            # A chunking/worker knob without a mode is a streaming-family
            # request: never silently load the whole trace.
            streaming_kwargs["mode"] = (
                MODE_AUTO if (workers or 1) > 1 else MODE_STREAM
            )
        if chunk_packets is not None:
            streaming_kwargs["chunk_packets"] = chunk_packets
        if workers is not None:
            streaming_kwargs["workers"] = workers
        if engine is not None:
            # Orthogonal to the mode inference: choosing an engine says
            # nothing about batch-versus-stream.
            streaming_kwargs["engine"] = engine
        archive_kwargs = {}
        if segment_packets is not None:
            archive_kwargs["segment_packets"] = segment_packets
        if segment_span is not None:
            archive_kwargs["segment_span"] = segment_span
        if epoch is not None:
            archive_kwargs["epoch"] = epoch
        return cls(
            codec=CodecOptions(backend=backend, level=level),
            streaming=StreamingOptions(**streaming_kwargs),
            archive=ArchiveOptions(**archive_kwargs),
            compressor=compressor or CompressorConfig(),
            decompressor=decompressor or DecompressorConfig(),
            name=name,
        )

    @classmethod
    def production(cls) -> "Options":
        """The deployment preset: entropy-coded sections, bounded memory.

        ``zlib`` sections (the backend sweep's best ratio/throughput
        trade), forced streaming reads so memory never scales with the
        capture, and the default archive rotation.  Everything else
        stays at the paper's constants.
        """
        return cls(
            codec=CodecOptions(backend="zlib"),
            streaming=StreamingOptions(mode=MODE_STREAM),
        )

    def with_codec(
        self, backend: str | None, level: int | None = None
    ) -> "Options":
        """A copy with the codec layer swapped — the commonest variant."""
        return replace(self, codec=CodecOptions(backend=backend, level=level))

    def validate_backend_name(self) -> None:
        """Raise :class:`OptionsError` for an unregistered backend name.

        Construction already validates; this re-check exists for callers
        that mutate the registry between building options and using them.
        """
        names = (*backend_names(), "auto", None)
        if self.codec.backend not in names:
            raise OptionsError(f"unknown backend: {self.codec.backend!r}")
