"""One-shot façade operations that are not verbs of a single store.

These cover the workflow steps around the store sessions: synthesizing
input traffic, fitting and sampling the generative model, anonymizing,
comparing, and the compress→decompress ``roundtrip`` the evaluation
harness is built on.  Each is a thin composition of :func:`repro.open`
sessions and the engine primitives — the CLI and the examples call
these instead of wiring subsystems by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.api.errors import CapabilityError
from repro.api.options import Options
from repro.api.store import TraceFileStore, TraceStore, open_store
from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.compressor import compress_trace
from repro.core.decompressor import decompress_trace
from repro.core.generator import TraceModel
from repro.core.pipeline import CompressionReport, report_for
from repro.trace.export import ExportResult, export_packet_stream
from repro.trace.trace import Trace

__all__ = [
    "SynthesisReport",
    "anonymize",
    "compare",
    "container_sections",
    "fidelity",
    "generate",
    "model_for",
    "roundtrip",
    "synthesize",
]


def container_sections(path: str | Path):
    """Per-section framing of a ``.fctc`` file, without decoding it.

    A tuple of :class:`~repro.core.codec.SectionInfo` (section name,
    backend, stored/raw sizes) parsed from the container tags alone —
    the cheap way to report what an encode produced; opening a full
    :class:`~repro.api.store.ContainerStore` would decode every dataset.
    """
    from repro.api.errors import CorruptInputError
    from repro.core.codec import container_info
    from repro.core.errors import CodecError

    path = Path(path)
    try:
        return container_info(path.read_bytes()).sections
    except CodecError as exc:
        raise CorruptInputError(f"{path}: {exc}") from exc


def generate(
    dest: str | Path,
    *,
    duration: float = 100.0,
    flow_rate: float = 40.0,
    seed: int = 1,
    kind: str | None = None,
    scenario: str | None = None,
) -> ExportResult:
    """Write a calibrated synthetic capture to ``dest``.

    ``scenario`` names a registered workload from the scenario registry
    (:mod:`repro.synth.scenarios` — ``web``, ``p2p``, ``web-search``,
    ``data-mining``, ``mixed-protocol``, ``flood``, ``mptcp``, …);
    ``web`` is the default, byte-identical to what this function always
    produced.  ``kind`` is the historical spelling of the same knob and
    keeps working.  The output format follows the suffix (``.pcap`` →
    pcap-lite, anything else → TSH).
    """
    from repro.synth.scenarios import get_scenario

    if kind is not None and scenario is not None and kind != scenario:
        raise CapabilityError(
            f"kind={kind!r} and scenario={scenario!r} disagree; "
            "pass one of them (kind is the legacy alias)"
        )
    name = scenario if scenario is not None else (kind or "web")
    try:
        selected = get_scenario(name)
    except ValueError as exc:
        raise CapabilityError(str(exc)) from exc
    trace = selected.build(duration=duration, flow_rate=flow_rate, seed=seed)
    return export_packet_stream(iter(trace), dest)


def fidelity(
    scenarios=None,
    *,
    duration: float = 10.0,
    flow_rate: float = 40.0,
    seed: int | None = None,
    options: Options | None = None,
):
    """Run the differential fidelity harness; returns a ``FidelityReport``.

    Each named scenario (default: every registered one) is generated,
    compressed under ``options``, reconstructed from the serialized
    bytes, and scored on compression ratio plus the trace-complexity
    metrics — see :mod:`repro.analysis.fidelity`.
    """
    from repro.analysis.fidelity import evaluate_scenarios

    return evaluate_scenarios(
        scenarios,
        duration=duration,
        flow_rate=flow_rate,
        seed=seed,
        options=options,
    )


def roundtrip(
    trace: Trace, options: Options | None = None
) -> tuple[Trace, CompressionReport]:
    """Compress then decompress an in-memory trace; returns (trace', report).

    The canonical home of what :func:`repro.core.roundtrip` used to be:
    the output trace is *statistically* similar to the input (the
    paper's claim, validated in section 6), not byte-identical.
    """
    options = options or Options()
    compressed = compress_trace(trace, options.compressor)
    data = serialize_compressed(
        compressed, backend=options.codec.backend, level=options.codec.level
    )
    decompressed = decompress_trace(
        deserialize_compressed(data), options.decompressor
    )
    return decompressed, report_for(trace, compressed, data)


def model_for(
    source: Trace | TraceStore | str | Path, options: Options | None = None
) -> TraceModel:
    """Fit the generative :class:`TraceModel` from any model-capable source.

    Accepts an in-memory :class:`Trace`, an open store session, or a
    path (opened through the façade) — a compressed container *is* a
    fitted model, a raw trace is compressed first.
    """
    options = options or Options()
    if isinstance(source, Trace):
        return TraceModel.fit(compress_trace(source, options.compressor))
    store = source if isinstance(source, TraceStore) else open_store(
        source, options=options
    )
    return store.model()


@dataclass(frozen=True)
class SynthesisReport:
    """What :func:`synthesize` produced, for reporting."""

    templates: int
    flows: int
    packets: int
    size_bytes: int


def synthesize(
    source: str | Path,
    dest: str | Path,
    *,
    scale: float = 1.0,
    flows: int | None = None,
    seed: int = 1,
    options: Options | None = None,
) -> SynthesisReport:
    """Fit a model from ``source`` and write a scaled synthetic trace.

    ``flows`` pins the absolute flow count; otherwise the source's flow
    count is multiplied by ``scale``.  The paper's "synthetic packet
    trace generator based on the described methodology", one call.
    """
    options = options or Options()
    model = model_for(source, options)
    flow_count = flows if flows is not None else int(
        scale * (sum(model.short_usage) + sum(model.long_usage))
    )
    synthetic = model.synthesize(
        flow_count=flow_count, seed=seed, config=options.decompressor
    )
    result = export_packet_stream(iter(synthetic), dest)
    return SynthesisReport(
        templates=model.template_count(),
        flows=flow_count,
        packets=result.packets,
        size_bytes=result.size_bytes,
    )


def anonymize(
    source: str | Path, dest: str | Path, *, key: str = "repro-anonymizer"
) -> ExportResult:
    """Prefix-preservingly anonymize a raw trace file into ``dest``."""
    from repro.trace.anonymize import anonymize_prefix_preserving

    store = open_store(source)
    if not isinstance(store, TraceFileStore):
        raise CapabilityError(
            f"{source}: anonymize takes raw trace files, not {store.kind.value}"
        )
    anonymized = anonymize_prefix_preserving(store.load_trace(), key=key)
    return export_packet_stream(iter(anonymized), dest)


def compare(first: str | Path, second: str | Path):
    """Semantic comparison of two raw traces (section 6's validation).

    Returns the :class:`~repro.analysis.summary.TraceComparison`; render
    with ``.render()`` and judge with ``.statistically_similar()``.
    """
    from repro.analysis.summary import compare_traces

    stores = []
    for path in (first, second):
        store = open_store(path)
        if not isinstance(store, TraceFileStore):
            raise CapabilityError(
                f"{path}: compare takes raw trace files, not {store.kind.value}"
            )
        stores.append(store)
    return compare_traces(stores[0].load_trace(), stores[1].load_trace())
