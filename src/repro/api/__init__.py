"""repro.api — the public façade over the whole compression system.

One import surface for everything the four subsystems (codec,
streaming, archive, query/replay) used to expose separately::

    import repro

    with repro.open("capture.tsh") as store:        # sniffs the format
        report = store.compress("capture.fctc")      # batch/stream chosen
    with repro.open("capture.fctc") as store:        # container session
        for packet in store.packets():               # streaming replay
            ...

``repro.open`` is the one way in; :class:`Options` the one config;
:mod:`repro.api.errors` the one exception family.  See ``docs/API.md``
for the full reference.

This module is PEP 562-lazy: importing :mod:`repro.api` (or ``repro``)
loads none of the engine — the first attribute access does.  That keeps
``import repro`` and CLI startup fast.
"""

from __future__ import annotations

import importlib

from repro.api import errors  # light: stdlib-only exception types

# name → defining module, resolved on first attribute access.
_LAZY_EXPORTS = {
    # sessions
    "open": ("repro.api.store", "open_store"),
    "open_store": ("repro.api.store", "open_store"),
    "TraceStore": ("repro.api.store", "TraceStore"),
    "TraceFileStore": ("repro.api.store", "TraceFileStore"),
    "ContainerStore": ("repro.api.store", "ContainerStore"),
    "ArchiveStore": ("repro.api.store", "ArchiveStore"),
    "StoreInfo": ("repro.api.store", "StoreInfo"),
    "ArchiveBuildReport": ("repro.api.store", "ArchiveBuildReport"),
    "create_archive": ("repro.api.store", "create_archive"),
    # sniffing
    "SourceKind": ("repro.api.sniff", "SourceKind"),
    "sniff_kind": ("repro.api.sniff", "sniff_kind"),
    # options
    "Options": ("repro.api.options", "Options"),
    "CodecOptions": ("repro.api.options", "CodecOptions"),
    "StreamingOptions": ("repro.api.options", "StreamingOptions"),
    "ArchiveOptions": ("repro.api.options", "ArchiveOptions"),
    "ServeOptions": ("repro.api.options", "ServeOptions"),
    # the ingest daemon
    "serve": ("repro.serve.daemon", "serve"),
    "ServeReport": ("repro.serve.daemon", "ServeReport"),
    # one-shot operations
    "container_sections": ("repro.api.ops", "container_sections"),
    "fidelity": ("repro.api.ops", "fidelity"),
    "generate": ("repro.api.ops", "generate"),
    "roundtrip": ("repro.api.ops", "roundtrip"),
    "model_for": ("repro.api.ops", "model_for"),
    "synthesize": ("repro.api.ops", "synthesize"),
    "SynthesisReport": ("repro.api.ops", "SynthesisReport"),
    "anonymize": ("repro.api.ops", "anonymize"),
    "compare": ("repro.api.ops", "compare"),
    # algorithm configs (the layers Options nests)
    "CompressorConfig": ("repro.core.compressor", "CompressorConfig"),
    "DecompressorConfig": ("repro.core.decompressor", "DecompressorConfig"),
    # query vocabulary, re-exported so callers never import subsystems
    "Predicate": ("repro.query.predicates", "Predicate"),
    "MatchAll": ("repro.query.predicates", "MatchAll"),
    "And": ("repro.query.predicates", "And"),
    "Or": ("repro.query.predicates", "Or"),
    "Not": ("repro.query.predicates", "Not"),
    "TimeRange": ("repro.query.predicates", "TimeRange"),
    "DestinationAddress": ("repro.query.predicates", "DestinationAddress"),
    "DestinationPrefix": ("repro.query.predicates", "DestinationPrefix"),
    "FlowKind": ("repro.query.predicates", "FlowKind"),
    "PacketCountRange": ("repro.query.predicates", "PacketCountRange"),
    "RttRange": ("repro.query.predicates", "RttRange"),
    "FlowSummary": ("repro.query.engine", "FlowSummary"),
    "QueryResult": ("repro.query.engine", "QueryResult"),
    "QueryStats": ("repro.query.engine", "QueryStats"),
    "WindowProbe": ("repro.query.engine", "WindowProbe"),
    # flow metadata + traffic-matrix analytics
    "FlowRecord": ("repro.core.flowmeta", "FlowRecord"),
    "flow_records": ("repro.core.flowmeta", "flow_records"),
    "AddressAnonymizer": ("repro.analysis.matrices", "AddressAnonymizer"),
    "MatrixReport": ("repro.analysis.matrices", "MatrixReport"),
    "WindowStats": ("repro.analysis.matrices", "WindowStats"),
    "TrafficMatrix": ("repro.analysis.matrices", "TrafficMatrix"),
    "StreamingWindowAggregator": (
        "repro.analysis.matrices",
        "StreamingWindowAggregator",
    ),
    "matrix_report_for_archive": (
        "repro.analysis.matrices",
        "matrix_report_for_archive",
    ),
    "matrix_report_for_compressed": (
        "repro.analysis.matrices",
        "matrix_report_for_compressed",
    ),
    # result/report types callers receive back
    "CompressionReport": ("repro.core.pipeline", "CompressionReport"),
    "ExportResult": ("repro.trace.export", "ExportResult"),
    "TraceModel": ("repro.core.generator", "TraceModel"),
    "FidelityReport": ("repro.analysis.fidelity", "FidelityReport"),
    "ScenarioFidelity": ("repro.analysis.fidelity", "ScenarioFidelity"),
    # the traffic-scenario registry
    "Scenario": ("repro.synth.scenarios", "Scenario"),
    "get_scenario": ("repro.synth.scenarios", "get_scenario"),
    "iter_scenarios": ("repro.synth.scenarios", "iter_scenarios"),
    "scenario_names": ("repro.synth.scenarios", "scenario_names"),
    # backend registry names (the CLI's --backend choices)
    "backend_names": ("repro.core.backends", "backend_names"),
    "AUTO": ("repro.core.backends", "AUTO"),
}

__all__ = ["errors", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        from repro import _submodule_or_raise

        return _submodule_or_raise(__name__, name)
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted({*globals(), *_LAZY_EXPORTS})
