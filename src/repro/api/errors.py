"""Typed exceptions of the :mod:`repro.api` façade.

Every failure a :func:`repro.open` session can raise derives from
:class:`ReproError`, so ``except repro.api.errors.ReproError`` is the
one catch a caller (including the CLI) needs.  Each subclass also
inherits the stdlib exception users would historically have seen —
:class:`MissingInputError` *is a* :class:`FileNotFoundError`, the
malformed-input errors *are* :class:`ValueError` — so pre-façade code
that caught the bare stdlib types keeps working through the
deprecation window.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error the façade raises."""


class MissingInputError(ReproError, FileNotFoundError):
    """An input path does not exist (or is not a regular file)."""


class UnknownFormatError(ReproError, ValueError):
    """A file's content matches none of the formats the façade opens.

    Also raised when content and suffix disagree — a ``.fctc`` path
    without the container magic is reported as a mismatch rather than
    guessed at, because misreading a trace as a container (or vice
    versa) produces garbage much later.
    """


class CorruptInputError(ReproError, ValueError):
    """A recognized container or archive is truncated or malformed."""


class EmptyTraceError(ReproError, ValueError):
    """The input holds no packets (for example a zero-byte trace file)."""


class CapabilityError(ReproError, TypeError):
    """The requested verb is not supported by this store's source kind.

    The message names the verb, the kind, and the kinds that do support
    it — ``repro.open`` is capability-driven, not one class per format.
    """


class OptionsError(ReproError, ValueError):
    """An :class:`repro.api.Options` value or combination is invalid."""
