"""Content-based input detection for :func:`repro.open`.

The façade never trusts a suffix alone: the first bytes decide.  The
two native containers carry magics (``FCTC`` / ``FCTA``), pcap files
one of the four classic pcap magics, and TSH — a headerless format —
is accepted only when the size is an exact multiple of its 44-byte
record and the suffix does not claim otherwise.  A path whose suffix
promises one format but whose content is another raises
:class:`~repro.api.errors.UnknownFormatError` instead of a wrong guess.
"""

from __future__ import annotations

import enum
import os
import struct
from pathlib import Path

from repro.api.errors import (
    EmptyTraceError,
    MissingInputError,
    UnknownFormatError,
)

CONTAINER_MAGIC = b"FCTC"
ARCHIVE_MAGIC = b"FCTA"
_PCAP_MAGICS = frozenset(
    struct.pack(order, magic)
    for order in ("<I", ">I")
    for magic in (0xA1B2C3D4, 0xA1B23C4D)  # micro- and nanosecond pcap
)
_TSH_RECORD_BYTES = 44

#: suffix → the kind that suffix promises (used only for mismatch reports)
_SUFFIX_KINDS = {
    ".fctc": "container",
    ".fctca": "archive",
    ".pcap": "pcap",
    ".tsh": "tsh",
}


class SourceKind(enum.Enum):
    """What a :class:`~repro.api.store.TraceStore` was opened over."""

    TSH = "tsh"
    PCAP = "pcap"
    CONTAINER = "container"
    ARCHIVE = "archive"


def sniff_kind(path: str | Path) -> SourceKind:
    """Classify ``path`` by content; raise a typed error when impossible.

    Raises :class:`MissingInputError` for an absent path,
    :class:`EmptyTraceError` for a zero-byte file, and
    :class:`UnknownFormatError` when the content matches nothing the
    façade opens or contradicts the suffix.
    """
    path = Path(path)
    try:
        size = os.stat(path).st_size
    except FileNotFoundError:
        raise MissingInputError(2, "no such file", str(path)) from None
    if path.is_dir():
        raise UnknownFormatError(f"{path}: is a directory, not a trace")
    if size == 0:
        raise EmptyTraceError(f"{path}: empty file holds no packets")
    with open(path, "rb") as stream:
        head = stream.read(4)
    if head == CONTAINER_MAGIC:
        kind = SourceKind.CONTAINER
    elif head == ARCHIVE_MAGIC:
        kind = SourceKind.ARCHIVE
    elif head in _PCAP_MAGICS:
        kind = SourceKind.PCAP
    elif size % _TSH_RECORD_BYTES == 0 and _suffix_kind(path) in (None, "tsh"):
        kind = SourceKind.TSH
    else:
        raise UnknownFormatError(_mismatch_message(path, size))
    promised = _suffix_kind(path)
    if promised is not None and promised != kind.value:
        raise UnknownFormatError(
            f"{path}: suffix promises {promised} but content is {kind.value}"
        )
    return kind


def _suffix_kind(path: Path) -> str | None:
    return _SUFFIX_KINDS.get(path.suffix.lower())


def _mismatch_message(path: Path, size: int) -> str:
    promised = _suffix_kind(path)
    if promised in ("container", "archive"):
        return (
            f"{path}: suffix promises a {promised} but the "
            f"{'FCTC' if promised == 'container' else 'FCTA'} magic is missing"
        )
    if size % _TSH_RECORD_BYTES:
        return (
            f"{path}: no container/archive/pcap magic and size {size} is "
            f"not a multiple of the {_TSH_RECORD_BYTES}-byte TSH record "
            "(truncated trace?)"
        )
    return f"{path}: unrecognized trace format"
