"""repro.serve — the live-capture ingest daemon (``repro-trace serve``).

Every other entry point is file-to-file; this package is the
long-running service mode: an asyncio event loop that accepts packet
streams from several concurrent **sources** — unix / TCP sockets
speaking the length-framed TSH/pcap protocol of
:mod:`repro.trace.framing`, and growing capture files tailed in place —
and drains them all into one shared ``.fctca`` archive.

Layering (nothing here re-implements compression or container logic):

* each source owns a :class:`~repro.archive.writer.SegmentFeeder`, the
  same rotation policy the offline :class:`~repro.archive.writer.ArchiveWriter`
  runs, driving one :class:`~repro.core.streaming.StreamingCompressor`
  via its incremental ``flush_segment`` API;
* all feeders share the writer's :class:`~repro.archive.writer.EpochRef`,
  so segment clocks stay comparable across sources;
* sealed segments land through the writer's single, lock-guarded
  ``write_segment`` path, and the archive seals durably (fsync of file
  and directory) on drain — a SIGTERM'd daemon leaves a valid,
  crash-safe archive that the existing reader/query stack opens
  unchanged;
* per-source ``serve.source.*`` metrics record into :mod:`repro.obs`,
  optionally exposed over HTTP with the Prometheus text renderer.

Configuration is :class:`repro.api.options.ServeOptions` (the ``serve``
layer of :class:`repro.api.Options`); the protocol, rotation and
backpressure semantics, and metric catalog live in ``docs/SERVE.md``.
"""

from __future__ import annotations

from repro.serve.daemon import ServeReport, SourceReport, serve
from repro.serve.sources import SourceSpec, parse_source

__all__ = [
    "ServeReport",
    "SourceReport",
    "SourceSpec",
    "parse_source",
    "serve",
]
