"""The ``repro serve`` event loop: many sources, one sealed archive.

One asyncio loop runs three kinds of task per daemon:

* **producers** — one per source: socket servers decode length-framed
  TSH/pcap payloads per connection, tail sources poll a growing file;
  both push decoded packet chunks into the source's bounded queue
  (``put_nowait`` first; a full queue counts a backpressure event and
  awaits — that bound, times the chunk size, is the daemon's whole
  ingest memory);
* **consumers** — one per source: pop chunks and feed the source's
  :class:`~repro.archive.writer.SegmentFeeder`, which rotates sealed
  segments into the shared :class:`~repro.archive.writer.ArchiveWriter`
  exactly as the offline build path would;
* **services** — the optional wall-clock rotation tick and the optional
  Prometheus text endpoint.

Shutdown is one path for every trigger (SIGTERM, SIGINT, every socket
source reaching end-of-stream, or the ``stop_after_packets`` budget):
producers stop accepting, in-flight connections and tail reads get
until ``drain_timeout`` to finish, consumers drain their queues, each
feeder flushes its open segment, and the writer seals the archive with
the fsync-backed footer.  A drain that overruns the timeout is *cut*,
not hung: whatever compressed is sealed, the loss is counted
(``serve.dropped_chunks``) and reported.

Because the loop is single-threaded, feeder and writer calls never
interleave mid-operation; the writer's internal lock is a second line
of defense, not the correctness argument.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
from dataclasses import dataclass, field

from repro.api.errors import OptionsError
from repro.api.options import Options
from repro.archive.writer import ArchiveWriter, SegmentFeeder
from repro.core.datasets import CompressedTrace
from repro.net.packet import PacketRecord
from repro.obs import current as obs_current, render_prometheus
from repro.serve.sources import (
    SCHEME_TAIL,
    SCHEME_UNIX,
    SourceSpec,
    parse_source,
)
from repro.trace.framing import (
    FrameDecodeError,
    LengthFramer,
    stream_decoder,
)

_log = logging.getLogger(__name__)

_SOCKET_READ_BYTES = 1 << 16
_TAIL_READ_BYTES = 1 << 18


@dataclass
class SourceReport:
    """What one source ingested over the daemon's lifetime."""

    label: str
    source: str
    packets: int = 0
    chunks: int = 0
    segments: int = 0
    backpressure_waits: int = 0
    decode_errors: int = 0

    def summary_line(self) -> str:
        return (
            f"  {self.label:<8s} {self.source:<32s} "
            f"packets={self.packets:<8d} segments={self.segments:<4d} "
            f"backpressure={self.backpressure_waits} "
            f"decode_errors={self.decode_errors}"
        )


@dataclass
class ServeReport:
    """The daemon's final accounting, printed by the CLI."""

    archive: str
    packets: int = 0
    segments: int = 0
    clean: bool = True
    stop_reason: str = "end of stream"
    dropped_chunks: int = 0
    prometheus_port: int | None = None
    sources: list[SourceReport] = field(default_factory=list)

    def summary_lines(self) -> list[str]:
        drain = "clean" if self.clean else f"cut ({self.dropped_chunks} chunk(s) dropped)"
        lines = [
            f"sealed {self.segments} segments / {self.packets} packets "
            f"to {self.archive}",
            f"stop: {self.stop_reason}; drain: {drain}",
        ]
        lines.extend(source.summary_line() for source in self.sources)
        return lines


class _Source:
    """Runtime state of one ingest source: queue, feeder, metrics."""

    def __init__(
        self,
        spec: SourceSpec,
        label: str,
        feeder: SegmentFeeder,
        queue_chunks: int,
    ) -> None:
        self.spec = spec
        self.label = label
        self.feeder = feeder
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_chunks)
        self.report = SourceReport(label=label, source=str(spec))
        registry = obs_current()
        prefix = f"serve.source.{label}"
        self.packets_counter = registry.counter(
            f"{prefix}.packets", "packets ingested from this source"
        )
        self.chunks_counter = registry.counter(
            f"{prefix}.chunks", "decoded chunks enqueued from this source"
        )
        self.segments_counter = registry.counter(
            f"{prefix}.segments", "segments this source sealed into the archive"
        )
        self.backpressure_counter = registry.counter(
            f"{prefix}.backpressure",
            "enqueue attempts that found the queue full and had to wait",
        )
        self.decode_errors_counter = registry.counter(
            f"{prefix}.decode_errors", "framing/format violations on this source"
        )
        self.queue_depth_gauge = registry.gauge(
            f"{prefix}.queue_depth.peak", "high-water mark of queued chunks"
        )
        self.connections_counter = registry.counter(
            f"{prefix}.connections", "client connections accepted"
        )

    def record_decode_error(self, exc: Exception) -> None:
        self.report.decode_errors += 1
        self.decode_errors_counter.inc()
        _log.warning("source %s: %s", self.label, exc)


class _Daemon:
    def __init__(self, archive: str, options: Options) -> None:
        if not options.serve.sources:
            raise OptionsError("serve needs at least one source")
        self._archive_path = os.fspath(archive)
        self._options = options
        self._serve = options.serve
        self._registry = None
        self._writer: ArchiveWriter | None = None
        self._sources: list[_Source] = []
        self._stop = None  # asyncio.Event, created inside the loop
        self._stop_reason = "end of stream"
        self._total_packets = 0
        self._report: ServeReport | None = None

    # -- lifecycle --------------------------------------------------------

    def run(self) -> ServeReport:
        return asyncio.run(self._run())

    async def _run(self) -> ServeReport:
        self._registry = obs_current()
        self._stop = asyncio.Event()
        options = self._options
        self._writer = ArchiveWriter.create(self._archive_path, options=options)
        self._report = ServeReport(archive=self._archive_path)
        for index, spec_string in enumerate(self._serve.sources):
            spec = parse_source(spec_string)
            label = f"{spec.scheme}{index}"
            feeder = SegmentFeeder(
                self._make_sink(label),
                epoch=self._writer.epoch_ref,
                segment_packets=options.archive.segment_packets,
                segment_span=options.archive.segment_span,
                config=options.compressor,
                name=label,
                engine=options.streaming.engine,
            )
            self._sources.append(
                _Source(spec, label, feeder, self._serve.queue_chunks)
            )
        self._install_signal_handlers()
        metrics_server = await self._start_prometheus()
        rotator = (
            asyncio.create_task(self._rotate_periodically())
            if self._serve.rotate_seconds is not None
            else None
        )
        producers = [
            asyncio.create_task(
                self._supervise(source), name=f"produce:{source.label}"
            )
            for source in self._sources
        ]
        consumers = [
            asyncio.create_task(
                self._consume(source), name=f"consume:{source.label}"
            )
            for source in self._sources
        ]
        report = self._report
        try:
            # Phase 1 — run: until every producer returned (each source
            # hit end-of-stream or died) or a stop was requested
            # (signal / packet budget), whichever comes first.
            stop_wait = asyncio.create_task(self._stop.wait())
            live = list(producers)
            while live and not self._stop.is_set():
                await asyncio.wait(
                    [*live, stop_wait], return_when=asyncio.FIRST_COMPLETED
                )
                live = [task for task in live if not task.done()]
            self._stop.set()
            stop_wait.cancel()
            # Phase 2 — drain: one shared deadline bounds both the
            # producers' wind-down (in-flight connections, final tail
            # read) and the consumers emptying their queues.
            deadline = (
                asyncio.get_running_loop().time() + self._serve.drain_timeout
            )
            cut_producers = await self._await_until(producers, deadline)
            if cut_producers:
                self._stop_reason += "; producer wind-down timed out"
            report.dropped_chunks += await self._drain(consumers, deadline)
        finally:
            self._stop.set()
            for task in (*producers, *consumers):
                task.cancel()
            if rotator is not None:
                rotator.cancel()
            if metrics_server is not None:
                metrics_server.close()
            await asyncio.gather(
                *producers,
                *consumers,
                *((rotator,) if rotator else ()),
                return_exceptions=True,
            )
            self._close_feeders()
            self._writer.close()
        report.packets = self._total_packets
        report.segments = self._writer.segment_count
        report.stop_reason = self._stop_reason
        report.clean = report.dropped_chunks == 0
        report.sources = [source.report for source in self._sources]
        self._registry.gauge(
            "serve.drain.clean", "1 when the last drain lost nothing"
        ).set(1.0 if report.clean else 0.0)
        return report

    async def _await_until(self, tasks, deadline: float) -> list:
        """Wait for ``tasks`` until ``deadline``; cancel and return stragglers."""
        loop = asyncio.get_running_loop()
        pending = [task for task in tasks if not task.done()]
        if not pending:
            return []
        timeout = max(0.0, deadline - loop.time())
        _done, still_pending = await asyncio.wait(pending, timeout=timeout)
        for task in still_pending:
            task.cancel()
        if still_pending:
            await asyncio.gather(*still_pending, return_exceptions=True)
        return list(still_pending)

    async def _drain(self, consumers, deadline: float) -> int:
        """Wait for consumers to empty their queues; cut at the deadline.

        Producers have already stopped, so each queue ends with its
        sentinel; a consumer that cannot finish by the deadline is
        cancelled and whatever chunks it still held are counted as
        dropped.
        """
        cut = await self._await_until(consumers, deadline)
        dropped = 0
        if cut:
            self._stop_reason += "; drain timeout"
            for source in self._sources:
                while not source.queue.empty():
                    if source.queue.get_nowait() is not None:
                        dropped += 1
        if dropped:
            self._registry.counter(
                "serve.dropped_chunks",
                "queued chunks discarded because the drain timed out",
            ).inc(dropped)
            _log.warning("drain timed out; dropped %d queued chunk(s)", dropped)
        return dropped

    def _close_feeders(self) -> None:
        """Flush every open segment; archive sealing follows."""
        for source in self._sources:
            sealed_before = source.feeder.segments_sealed
            try:
                source.feeder.close()
            except Exception:  # noqa: BLE001 — one bad source must not
                _log.exception(
                    "source %s: final flush failed", source.label
                )  # lose the others' flushes
            if source.feeder.segments_sealed > sealed_before:
                _log.info(
                    "source %s: flushed final segment", source.label
                )

    def _make_sink(self, label: str):
        def sink(compressed: CompressedTrace) -> None:
            self._writer.write_segment(compressed)
            registry = self._registry
            registry.counter(
                "archive.segments_rotated", "segments closed and landed on disk"
            ).inc()
            registry.counter(
                "serve.segments", "segments sealed by the ingest daemon"
            ).inc()
            source = next(s for s in self._sources if s.label == label)
            source.report.segments += 1
            source.segments_counter.inc()
            if self._serve.prometheus_port is not None:
                # Live window snapshot: fold the sealed segment's flows
                # into one matrix and mirror its statistics onto the
                # /metrics gauges.  The fast path walks time-seq only —
                # no packet synthesis on the ingest thread.
                from repro.analysis.matrices import (
                    publish_window_gauges,
                    window_stats_for_compressed,
                )

                stats = window_stats_for_compressed(compressed)
                if stats is not None:
                    publish_window_gauges(stats, registry)

        return sink

    def _request_stop(self, reason: str) -> None:
        if self._stop is not None and not self._stop.is_set():
            self._stop_reason = reason
            _log.info("stopping: %s", reason)
            self._stop.set()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self._request_stop, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError):  # non-unix / nested
                pass

    # -- producers --------------------------------------------------------

    async def _supervise(self, source: _Source) -> None:
        """Run one source's producer; always leave the queue a sentinel."""
        try:
            if source.spec.scheme == SCHEME_TAIL:
                await self._run_tail(source)
            else:
                await self._run_socket(source)
        except Exception:  # noqa: BLE001 — a dead source must not kill the daemon
            _log.exception("source %s: producer failed", source.label)
        finally:
            try:
                source.queue.put_nowait(None)
            except asyncio.QueueFull:
                # The consumer is behind; losing the sentinel only
                # matters if it never catches up, and that case is cut
                # by the drain deadline anyway.
                pass

    async def _enqueue(self, source: _Source, packets: list[PacketRecord]) -> None:
        queue = source.queue
        try:
            queue.put_nowait(packets)
        except asyncio.QueueFull:
            source.report.backpressure_waits += 1
            source.backpressure_counter.inc()
            await queue.put(packets)
        source.report.chunks += 1
        source.chunks_counter.inc()
        source.queue_depth_gauge.set_max(float(queue.qsize()))

    async def _run_socket(self, source: _Source) -> None:
        """Accept length-framed client streams until stop or all-EOS.

        Each connection decodes independently (its own framer + format
        decoder); packets from concurrent connections interleave into
        the source queue in arrival order.  The *source* ends when a
        stop is requested — a socket source with no budget and no
        signal serves forever.
        """
        connections: set[asyncio.Task] = set()

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            source.connections_counter.inc()
            framer = LengthFramer(self._serve.max_frame_bytes)
            decoder = stream_decoder(source.spec.format)
            try:
                while not framer.eof:
                    data = await reader.read(_SOCKET_READ_BYTES)
                    if not data:
                        break
                    packets: list[PacketRecord] = []
                    for payload in framer.feed(data):
                        packets.extend(decoder.feed(payload))
                    if packets:
                        await self._enqueue(source, packets)
                framer.finish()
                decoder.finish()
            except FrameDecodeError as exc:
                source.record_decode_error(exc)
            finally:
                writer.close()

        def track(reader, writer):
            task = asyncio.create_task(handle(reader, writer))
            connections.add(task)
            task.add_done_callback(connections.discard)

        if source.spec.scheme == SCHEME_UNIX:
            try:
                # A stale socket file from a previous run would fail the
                # bind; nothing can be listening on it if we can't connect.
                os.unlink(source.spec.target)
            except OSError:
                pass
            server = await asyncio.start_unix_server(track, path=source.spec.target)
        else:
            host, port = source.spec.tcp_address()
            server = await asyncio.start_server(track, host=host, port=port)
            bound = server.sockets[0].getsockname()
            _log.info("source %s: listening on %s:%d", source.label, *bound[:2])
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            if connections:
                # In-flight clients get the drain window to finish;
                # the caller's deadline cuts us if they do not.
                await asyncio.gather(*connections, return_exceptions=True)
            if source.spec.scheme == SCHEME_UNIX:
                try:
                    os.unlink(source.spec.target)
                except OSError:
                    pass

    async def _run_tail(self, source: _Source) -> None:
        """Follow a growing capture file until stop, then read the rest."""
        decoder = stream_decoder(source.spec.format)
        path = source.spec.target
        position = 0
        while True:
            stopping = self._stop.is_set()
            position = await self._tail_catch_up(source, decoder, path, position)
            if stopping:
                break
            try:
                await asyncio.wait_for(
                    self._stop.wait(), timeout=self._serve.tail_poll_seconds
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass
        try:
            decoder.finish()
        except FrameDecodeError as exc:
            # The file ended mid-record (a writer cut off mid-write):
            # ingest what was whole, count the tear.
            source.record_decode_error(exc)

    async def _tail_catch_up(self, source, decoder, path: str, position: int) -> int:
        """Read every byte the file grew past ``position``; bounded chunks."""
        while True:
            try:
                size = os.stat(path).st_size
            except FileNotFoundError:
                return position  # not created yet — keep polling
            if size <= position:
                return position
            with open(path, "rb") as stream:
                stream.seek(position)
                data = stream.read(min(size - position, _TAIL_READ_BYTES))
            if not data:
                return position
            position += len(data)
            packets = decoder.feed(data)
            if packets:
                await self._enqueue(source, packets)

    # -- consumers and services -------------------------------------------

    async def _consume(self, source: _Source) -> None:
        serve_budget = self._serve.stop_after_packets
        while True:
            chunk = await source.queue.get()
            if chunk is None:
                break
            count = len(chunk)
            try:
                source.feeder.feed(chunk)
            except Exception:  # noqa: BLE001 — poison data, not a daemon bug
                _log.exception(
                    "source %s: compressing a chunk failed; source abandoned",
                    source.label,
                )
                break
            source.report.packets += count
            source.packets_counter.inc(count)
            self._total_packets += count
            self._registry.counter(
                "serve.packets", "packets ingested across all sources"
            ).inc(count)
            if serve_budget is not None and self._total_packets >= serve_budget:
                self._request_stop(
                    f"packet budget ({serve_budget}) reached"
                )

    async def _rotate_periodically(self) -> None:
        interval = self._serve.rotate_seconds
        while not self._stop.is_set():
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=interval)
            except (asyncio.TimeoutError, TimeoutError):
                for source in self._sources:
                    if source.feeder.packets_pending:
                        source.feeder.flush()

    async def _start_prometheus(self):
        port = self._serve.prometheus_port
        if port is None:
            return None
        registry = self._registry

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                body = render_prometheus(registry).encode()
                writer.write(
                    b"HTTP/1.0 200 OK\r\n"
                    b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        server = await asyncio.start_server(handle, host="127.0.0.1", port=port)
        bound_port = server.sockets[0].getsockname()[1]
        self._report.prometheus_port = bound_port
        _log.info("metrics endpoint: http://127.0.0.1:%d/metrics", bound_port)
        return server


def serve(archive: str, options: Options | None = None) -> ServeReport:
    """Run the ingest daemon until its sources end or a stop arrives.

    ``options.serve.sources`` names at least one source
    (``scheme:target[+format]``); rotation bounds come from
    ``options.archive``, the compression engine from
    ``options.streaming.engine``, and the section codec from
    ``options.codec`` — the same knobs, same defaults, and same bytes
    as the offline ``archive build`` path.  Blocks until shutdown and
    returns the final :class:`ServeReport`; the archive at ``archive``
    is sealed and durable when this returns.
    """
    return _Daemon(archive, options or Options()).run()
