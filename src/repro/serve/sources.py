"""Ingest source specifications for ``repro serve``.

A source is written as one compact string the CLI and
:class:`~repro.api.options.ServeOptions` share::

    unix:/run/repro.sock            a unix socket (length-framed TSH)
    tcp:127.0.0.1:7400              a TCP listener (length-framed TSH)
    tail:/data/live.tsh             a growing capture file, tailed
    unix:/run/pcap.sock+pcap        '+pcap' switches the payload format

The grammar is ``scheme:target[+format]``: ``scheme`` is one of
``unix``/``tcp``/``tail``, ``target`` a filesystem path (``unix``,
``tail``) or ``host:port`` (``tcp``), and the optional ``+format``
suffix one of :data:`~repro.trace.framing.STREAM_FORMATS` (default
``tsh``).  Parsing is pure and import-light so the options layer can
validate specs eagerly without pulling in the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.framing import FORMAT_TSH, STREAM_FORMATS

SCHEME_UNIX = "unix"
SCHEME_TCP = "tcp"
SCHEME_TAIL = "tail"
SCHEMES = (SCHEME_UNIX, SCHEME_TCP, SCHEME_TAIL)

SOCKET_SCHEMES = (SCHEME_UNIX, SCHEME_TCP)


@dataclass(frozen=True)
class SourceSpec:
    """One parsed ingest source."""

    scheme: str
    target: str
    format: str = FORMAT_TSH

    @property
    def is_socket(self) -> bool:
        return self.scheme in SOCKET_SCHEMES

    def tcp_address(self) -> tuple[str, int]:
        """The (host, port) of a ``tcp`` spec."""
        host, _, port = self.target.rpartition(":")
        return host, int(port)

    def __str__(self) -> str:
        suffix = "" if self.format == FORMAT_TSH else f"+{self.format}"
        return f"{self.scheme}:{self.target}{suffix}"


def parse_source(spec: str) -> SourceSpec:
    """Parse one ``scheme:target[+format]`` source string.

    Raises ``ValueError`` with a message naming the offending spec —
    the options layer re-raises it as
    :class:`~repro.api.errors.OptionsError`.
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"source spec must be a non-empty string: {spec!r}")
    scheme, separator, rest = spec.partition(":")
    if not separator or scheme not in SCHEMES:
        raise ValueError(
            f"source spec {spec!r} must start with one of "
            f"{'/'.join(SCHEMES)} followed by ':'"
        )
    target, _, suffix = rest.rpartition("+")
    if target and suffix in STREAM_FORMATS:
        format = suffix
    else:
        target, format = rest, FORMAT_TSH
    if not target:
        raise ValueError(f"source spec {spec!r} has an empty target")
    if scheme == SCHEME_TCP:
        host, separator, port = target.rpartition(":")
        if not separator or not host:
            raise ValueError(
                f"tcp source {spec!r} must name host:port"
            )
        try:
            port_number = int(port)
        except ValueError:
            raise ValueError(f"tcp source {spec!r} has a non-numeric port") from None
        if not 0 <= port_number <= 65535:
            raise ValueError(f"tcp source {spec!r} port out of range")
    return SourceSpec(scheme=scheme, target=target, format=format)
