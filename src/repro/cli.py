"""``repro-trace`` — the command-line face of the library.

Subcommands (full reference in ``docs/CLI.md``)::

    repro-trace generate out.tsh --duration 100 --rate 40 --seed 1
    repro-trace compress in.tsh out.fctc [--stream] [--workers N]
    repro-trace decompress in.fctc out.tsh
    repro-trace stats in.tsh
    repro-trace inspect in.fctc [--addresses]
    repro-trace convert in.tsh out.pcap
    repro-trace synthesize in.tsh out.tsh --scale 2
    repro-trace anonymize in.tsh out.tsh --key secret
    repro-trace compare a.tsh b.tsh
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import (
    compress_stream_to_bytes,
    compress_to_bytes,
    compress_tsh_file_parallel,
    decompress_from_bytes,
    deserialize_compressed,
    report_for_stream,
    serialize_compressed,
)
from repro.core.codec import dataset_sizes
from repro.core.pipeline import report_for
from repro.trace.reader import DEFAULT_CHUNK_PACKETS, iter_tsh_packets
from repro.net.ip import format_ipv4
from repro.synth import generate_web_trace
from repro.trace.stats import compute_statistics
from repro.trace.trace import Trace


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_web_trace(
        duration=args.duration, flow_rate=args.rate, seed=args.seed
    )
    size = trace.save_tsh(args.output)
    print(f"wrote {len(trace)} packets ({size} B) to {args.output}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(
            f"error: --chunk-size must be >= 1, got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if args.stream and args.workers is not None and args.workers > 1:
        print(
            "error: --stream promises byte-identical output, which the "
            "parallel merge cannot; drop one of --stream/--workers",
            file=sys.stderr,
        )
        return 2
    name = Path(args.input).stem
    chunk_size = args.chunk_size or DEFAULT_CHUNK_PACKETS
    workers = args.workers or 1
    if workers > 1:
        compressed = compress_tsh_file_parallel(
            args.input, workers, name=name, chunk_size=chunk_size
        )
        data = serialize_compressed(compressed)
        report = report_for_stream(compressed, data)
    elif args.stream or args.workers is not None or args.chunk_size is not None:
        # Any streaming-family flag (--stream, explicit --workers, or
        # --chunk-size) selects chunked reads; the output is
        # byte-identical to batch, so honoring them is always safe.
        data, compressed = compress_stream_to_bytes(
            iter_tsh_packets(args.input, chunk_size), name=name
        )
        report = report_for_stream(compressed, data)
    else:
        trace = Trace.load_tsh(args.input)
        data, compressed = compress_to_bytes(trace)
        report = report_for(trace, compressed, data)
    Path(args.output).write_bytes(data)
    for line in report.summary_lines():
        print(line)
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    trace = decompress_from_bytes(data)
    size = trace.save_tsh(args.output)
    print(f"wrote {len(trace)} packets ({size} B) to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = Trace.load_tsh(args.input)
    stats = compute_statistics(trace)
    for line in stats.summary_lines():
        print(line)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    compressed = deserialize_compressed(Path(args.input).read_bytes())
    sizes = dataset_sizes(compressed)
    print(f"name                 : {compressed.name}")
    print(f"flows (time-seq)     : {compressed.flow_count()}")
    print(f"original packets     : {compressed.original_packet_count}")
    short_count, long_count = compressed.template_counts()
    print(f"short templates      : {short_count}")
    print(f"long templates       : {long_count}")
    print(f"unique destinations  : {len(compressed.addresses)}")
    for dataset, size in sizes.items():
        print(f"  {dataset:<22}: {size} B")
    if args.addresses:
        for index, address in enumerate(compressed.addresses):
            print(f"  [{index}] {format_ipv4(address)}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.core.generator import TraceModel
    from repro.core.compressor import compress_trace as _compress

    source = Trace.load_tsh(args.input)
    model = TraceModel.fit(_compress(source))
    flow_count = args.flows or int(
        args.scale * (sum(model.short_usage) + sum(model.long_usage))
    )
    synthetic = model.synthesize(flow_count=flow_count, seed=args.seed)
    size = synthetic.save_tsh(args.output)
    print(
        f"fitted {model.template_count()} templates; "
        f"wrote {len(synthetic)} packets / {flow_count} flows "
        f"({size} B) to {args.output}"
    )
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.trace.anonymize import anonymize_prefix_preserving

    trace = Trace.load_tsh(args.input)
    anonymized = anonymize_prefix_preserving(trace, key=args.key)
    size = anonymized.save_tsh(args.output)
    print(f"wrote {len(anonymized)} anonymized packets ({size} B) to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.summary import compare_traces

    a = Trace.load_tsh(args.first)
    b = Trace.load_tsh(args.second)
    comparison = compare_traces(a, b)
    print(comparison.render())
    verdict = comparison.statistically_similar()
    print()
    print(f"statistically similar: {verdict}")
    return 0 if verdict else 1


def _cmd_convert(args: argparse.Namespace) -> int:
    source = Path(args.input)
    if source.suffix == ".pcap":
        trace = Trace.load_pcap(source)
    else:
        trace = Trace.load_tsh(source)
    target = Path(args.output)
    if target.suffix == ".pcap":
        count = trace.save_pcap(target)
        print(f"wrote {count} packets to {target}")
    else:
        size = trace.save_tsh(target)
        print(f"wrote {len(trace)} packets ({size} B) to {target}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Flow-clustering trace compressor tools."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesize a Web trace")
    generate.add_argument("output", help="output .tsh path")
    generate.add_argument("--duration", type=float, default=100.0)
    generate.add_argument("--rate", type=float, default=40.0, help="flows/second")
    generate.add_argument("--seed", type=int, default=1)
    generate.set_defaults(handler=_cmd_generate)

    compress = subparsers.add_parser("compress", help="compress a TSH trace")
    compress.add_argument("input", help="input .tsh path")
    compress.add_argument("output", help="output .fctc path")
    compress.add_argument(
        "--stream",
        action="store_true",
        help="read the input in chunks instead of loading it whole "
        "(bounded memory, byte-identical output)",
    )
    compress.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard flows across N processes and merge (implies streaming "
        "reads; --workers 1 streams without a process pool)",
    )
    compress.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="packets decoded per read (implies --stream; "
        f"default {DEFAULT_CHUNK_PACKETS})",
    )
    compress.set_defaults(handler=_cmd_compress)

    decompress = subparsers.add_parser("decompress", help="rebuild a trace")
    decompress.add_argument("input", help="input .fctc path")
    decompress.add_argument("output", help="output .tsh path")
    decompress.set_defaults(handler=_cmd_decompress)

    stats = subparsers.add_parser("stats", help="flow statistics of a trace")
    stats.add_argument("input", help="input .tsh path")
    stats.set_defaults(handler=_cmd_stats)

    inspect = subparsers.add_parser("inspect", help="examine a compressed file")
    inspect.add_argument("input", help="input .fctc path")
    inspect.add_argument(
        "--addresses", action="store_true", help="list the address dataset"
    )
    inspect.set_defaults(handler=_cmd_inspect)

    convert = subparsers.add_parser("convert", help="convert between tsh/pcap")
    convert.add_argument("input", help="input .tsh or .pcap path")
    convert.add_argument("output", help="output .tsh or .pcap path")
    convert.set_defaults(handler=_cmd_convert)

    synthesize = subparsers.add_parser(
        "synthesize", help="fit a model and synthesize a scaled trace"
    )
    synthesize.add_argument("input", help="source .tsh path")
    synthesize.add_argument("output", help="output .tsh path")
    synthesize.add_argument(
        "--scale", type=float, default=1.0, help="flow-count multiplier"
    )
    synthesize.add_argument(
        "--flows", type=int, default=None, help="absolute flow count (overrides --scale)"
    )
    synthesize.add_argument("--seed", type=int, default=1)
    synthesize.set_defaults(handler=_cmd_synthesize)

    anonymize = subparsers.add_parser(
        "anonymize", help="prefix-preserving address anonymization"
    )
    anonymize.add_argument("input", help="input .tsh path")
    anonymize.add_argument("output", help="output .tsh path")
    anonymize.add_argument("--key", default="repro-anonymizer")
    anonymize.set_defaults(handler=_cmd_anonymize)

    compare = subparsers.add_parser(
        "compare", help="semantic comparison of two traces"
    )
    compare.add_argument("first", help="first .tsh path")
    compare.add_argument("second", help="second .tsh path")
    compare.set_defaults(handler=_cmd_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
