"""``repro-trace`` — the command-line face of the library.

Subcommands (full reference in ``docs/CLI.md``)::

    repro-trace generate out.tsh --duration 100 --rate 40 --seed 1
    repro-trace compress in.tsh out.fctc [--stream] [--workers N] [--backend auto]
    repro-trace decompress in.fctc out.tsh
    repro-trace replay day.fctca out.tsh [--workers N] [--since 10 --dst a.b.c.d ...]
    repro-trace stats in.tsh
    repro-trace inspect in.fctc [--addresses]
    repro-trace convert in.tsh out.pcap
    repro-trace synthesize in.tsh out.tsh --scale 2
    repro-trace anonymize in.tsh out.tsh --key secret
    repro-trace compare a.tsh b.tsh
    repro-trace archive build day.fctca in1.tsh in2.tsh --segment-span 60 [--backend zlib]
    repro-trace archive append day.fctca in3.tsh
    repro-trace archive info day.fctca
    repro-trace query day.fctca --since 10 --until 60 --dst 192.168.0.80

Errors a user can cause (missing files, malformed containers, capacity
overflows) exit 2 with a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import (
    CodecError,
    CompressionError,
    backend_names,
    compress_stream_to_bytes,
    compress_to_bytes,
    compress_tsh_file_parallel,
    container_info,
    deserialize_compressed,
    report_for_stream,
    serialize_compressed,
)
from repro.archive.writer import DEFAULT_SEGMENT_PACKETS, DEFAULT_SEGMENT_SPAN
from repro.core.backends import AUTO
from repro.core.codec import dataset_sizes, validate_backend_request
from repro.core.pipeline import report_for
from repro.trace.reader import DEFAULT_CHUNK_PACKETS, iter_tsh_packets
from repro.net.ip import format_ipv4
from repro.synth import generate_web_trace
from repro.trace.stats import compute_statistics
from repro.trace.trace import Trace


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_web_trace(
        duration=args.duration, flow_rate=args.rate, seed=args.seed
    )
    size = trace.save_tsh(args.output)
    print(f"wrote {len(trace)} packets ({size} B) to {args.output}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(
            f"error: --chunk-size must be >= 1, got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if args.stream and args.workers is not None and args.workers > 1:
        print(
            "error: --stream promises byte-identical output, which the "
            "parallel merge cannot; drop one of --stream/--workers",
            file=sys.stderr,
        )
        return 2
    name = Path(args.input).stem
    chunk_size = args.chunk_size or DEFAULT_CHUNK_PACKETS
    workers = args.workers or 1
    backend = args.backend
    # Reject a bad backend/level combination before compressing the
    # input — serialization is the last step and the trace can be large.
    validate_backend_request(backend, args.level)
    if workers > 1:
        compressed = compress_tsh_file_parallel(
            args.input, workers, name=name, chunk_size=chunk_size
        )
        data = serialize_compressed(compressed, backend=backend, level=args.level)
        report = report_for_stream(compressed, data)
    elif args.stream or args.workers is not None or args.chunk_size is not None:
        # Any streaming-family flag (--stream, explicit --workers, or
        # --chunk-size) selects chunked reads; the output is
        # byte-identical to batch, so honoring them is always safe.
        data, compressed = compress_stream_to_bytes(
            iter_tsh_packets(args.input, chunk_size), name=name,
            backend=backend, level=args.level,
        )
        report = report_for_stream(compressed, data)
    else:
        trace = Trace.load_tsh(args.input)
        data, compressed = compress_to_bytes(
            trace, backend=backend, level=args.level
        )
        report = report_for(trace, compressed, data)
    Path(args.output).write_bytes(data)
    for line in report.summary_lines():
        print(line)
    if backend is not None and backend != "raw":
        # Auto may pick a different coder per section — show what landed.
        chosen = container_info(data)
        picks = " ".join(
            f"{s.name}={s.backend}" for s in chosen.sections
        )
        print(f"backends        : {picks}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.core import StreamingDecompressor
    from repro.trace.export import export_packet_stream

    compressed = deserialize_compressed(Path(args.input).read_bytes())
    # Stream the packets straight to disk: byte-identical to the batch
    # decompressor, but peak memory is the concurrent-flow fan-out plus
    # the (compressed) datasets — never the synthetic trace itself.
    engine = StreamingDecompressor(compressed)
    result = export_packet_stream(engine.packets(), args.output)
    print(
        f"wrote {result.packets} packets ({result.size_bytes} B) to {args.output}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.archive import ArchiveReader
    from repro.query import MatchAll, QueryEngine, QueryStats
    from repro.trace.export import export_packet_stream

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    predicate = _build_predicate(args)
    filtered = not isinstance(predicate, MatchAll) or args.limit is not None
    workers = args.workers or 1
    if filtered and workers > 1:
        print(
            "error: --workers parallelizes full-archive replay only; "
            "drop the flow filters/--limit or --workers",
            file=sys.stderr,
        )
        return 2
    with ArchiveReader(args.archive) as reader:
        stats = None
        if filtered:
            stats = QueryStats()
            packets = QueryEngine(reader).stream_packets(
                predicate, limit=args.limit, stats=stats
            )
        else:
            packets = reader.iter_packets(workers=workers)
        result = export_packet_stream(packets, args.output)
        print(
            f"wrote {result.packets} packets ({result.size_bytes} B) "
            f"to {args.output}"
        )
        if stats is not None:
            for line in stats.summary_lines():
                print(line)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = Trace.load_tsh(args.input)
    stats = compute_statistics(trace)
    for line in stats.summary_lines():
        print(line)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    data = Path(args.input).read_bytes()
    compressed = deserialize_compressed(data)
    info = container_info(data)
    sizes = dataset_sizes(compressed, format_version=info.format_version)
    print(f"name                 : {compressed.name}")
    print(f"format               : v{info.format_version}")
    print(f"flows (time-seq)     : {compressed.flow_count()}")
    print(f"original packets     : {compressed.original_packet_count}")
    short_count, long_count = compressed.template_counts()
    print(f"short templates      : {short_count}")
    print(f"long templates       : {long_count}")
    print(f"unique destinations  : {len(compressed.addresses)}")
    total = sizes["total"] or 1
    print("raw dataset sizes (pre-backend):")
    for dataset, size in sizes.items():
        if dataset == "total":
            print(f"  {dataset:<22}: {size} B")
        else:
            print(f"  {dataset:<22}: {size} B ({100.0 * size / total:.1f}%)")
    stored_total = info.total_bytes or 1
    print("stored sections:")
    for section in info.sections:
        share = 100.0 * section.stored_bytes / stored_total
        print(
            f"  {section.name:<22}: {section.stored_bytes} B "
            f"({section.backend}, {share:.1f}% of file)"
        )
    print(f"  {'file total':<22}: {info.total_bytes} B")
    if args.addresses:
        for index, address in enumerate(compressed.addresses):
            print(f"  [{index}] {format_ipv4(address)}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.core.generator import TraceModel
    from repro.core.compressor import compress_trace as _compress

    source = Trace.load_tsh(args.input)
    model = TraceModel.fit(_compress(source))
    flow_count = args.flows or int(
        args.scale * (sum(model.short_usage) + sum(model.long_usage))
    )
    synthetic = model.synthesize(flow_count=flow_count, seed=args.seed)
    size = synthetic.save_tsh(args.output)
    print(
        f"fitted {model.template_count()} templates; "
        f"wrote {len(synthetic)} packets / {flow_count} flows "
        f"({size} B) to {args.output}"
    )
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.trace.anonymize import anonymize_prefix_preserving

    trace = Trace.load_tsh(args.input)
    anonymized = anonymize_prefix_preserving(trace, key=args.key)
    size = anonymized.save_tsh(args.output)
    print(f"wrote {len(anonymized)} anonymized packets ({size} B) to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.summary import compare_traces

    a = Trace.load_tsh(args.first)
    b = Trace.load_tsh(args.second)
    comparison = compare_traces(a, b)
    print(comparison.render())
    verdict = comparison.statistically_similar()
    print()
    print(f"statistically similar: {verdict}")
    return 0 if verdict else 1


def _cmd_archive_build(args: argparse.Namespace) -> int:
    from repro.archive import ArchiveWriter

    writer = ArchiveWriter.create(
        args.output,
        segment_packets=args.segment_packets,
        segment_span=args.segment_span,
        backend=args.backend,
        level=args.level,
    )
    with writer:
        fed = 0
        for source in args.inputs:
            fed += writer.feed(iter_tsh_packets(source))
        entries = writer.close()
    print(
        f"wrote {len(entries)} segments / {fed} packets to {args.output}"
    )
    return 0


def _cmd_archive_append(args: argparse.Namespace) -> int:
    from repro.archive import ArchiveWriter

    writer = ArchiveWriter.append(
        args.archive,
        segment_packets=args.segment_packets,
        segment_span=args.segment_span,
        backend=args.backend,
        level=args.level,
    )
    with writer:
        before = writer.segment_count
        fed = 0
        for source in args.inputs:
            fed += writer.feed(iter_tsh_packets(source))
        entries = writer.close()
    print(
        f"appended {len(entries) - before} segments / {fed} packets "
        f"to {args.archive} ({len(entries)} total)"
    )
    return 0


def _cmd_archive_info(args: argparse.Namespace) -> int:
    from repro.analysis.archive import archive_overview_lines, segment_table
    from repro.archive import ArchiveReader

    with ArchiveReader(args.archive) as reader:
        for line in archive_overview_lines(reader):
            print(line)
        if reader.entries:
            print()
            print(segment_table(reader))
    return 0


def _build_predicate(args: argparse.Namespace):
    from repro.query import (
        DestinationAddress,
        DestinationPrefix,
        FlowKind,
        MatchAll,
        PacketCountRange,
        RttRange,
        TimeRange,
    )

    predicate = None

    def conjoin(term) -> None:
        nonlocal predicate
        predicate = term if predicate is None else predicate & term

    if args.since is not None or args.until is not None:
        conjoin(
            TimeRange(
                args.since or 0.0,
                args.until if args.until is not None else float("inf"),
            )
        )
    if args.dst is not None:
        conjoin(DestinationAddress(args.dst))
    if args.dst_prefix is not None:
        conjoin(DestinationPrefix(args.dst_prefix))
    if args.kind is not None:
        conjoin(FlowKind(args.kind))
    if args.min_packets is not None or args.max_packets is not None:
        conjoin(PacketCountRange(args.min_packets or 1, args.max_packets))
    if args.min_rtt is not None or args.max_rtt is not None:
        conjoin(RttRange(args.min_rtt or 0.0, args.max_rtt))
    return predicate if predicate is not None else MatchAll()


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.archive import ArchiveReader
    from repro.query import QueryEngine

    if args.output is None and (args.backend is not None or args.level is not None):
        print(
            "error: --backend/--level re-encode the --output sub-archive; "
            "pass --output or drop them",
            file=sys.stderr,
        )
        return 2
    predicate = _build_predicate(args)
    with ArchiveReader(args.archive) as reader:
        engine = QueryEngine(reader)
        if args.output is not None:
            written, stats = engine.filter_to(
                args.output, predicate, limit=args.limit,
                backend=args.backend, level=args.level,
            )
            print(
                f"wrote {written} segments / {stats.flows_matched} flows "
                f"to {args.output}"
            )
        else:
            result = engine.run(predicate, limit=args.limit)
            for flow in result.flows:
                print(
                    f"seg={flow.segment:<4d} t={flow.timestamp:<12.4f} "
                    f"kind={flow.kind.name.lower():<5s} packets={flow.packet_count:<6d} "
                    f"dst={format_ipv4(flow.destination):<15s} "
                    f"rtt={flow.rtt:.4f}"
                )
            stats = result.stats
        for line in stats.summary_lines():
            print(line)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    source = Path(args.input)
    if source.suffix == ".pcap":
        trace = Trace.load_pcap(source)
    else:
        trace = Trace.load_tsh(source)
    target = Path(args.output)
    if target.suffix == ".pcap":
        count = trace.save_pcap(target)
        print(f"wrote {count} packets to {target}")
    else:
        size = trace.save_tsh(target)
        print(f"wrote {len(trace)} packets ({size} B) to {target}")
    return 0


def _add_backend_flags(
    sub: argparse.ArgumentParser, *, default_note: str, what: str
) -> None:
    """Attach the shared section-backend flags (`--backend`, `--level`).

    The argparse default is always ``None`` — the library's "raw / keep
    source backends" behavior, under which `--level` is advisory.  Only
    an *explicitly named* backend treats an unusable `--level` as an
    error.  ``default_note`` is the human description of the None case.
    """
    sub.add_argument(
        "--backend",
        choices=[*backend_names(), AUTO],
        default=None,
        help=f"section codec for {what}: one of the registered backends, "
        "or 'auto' to trial each backend on a sample of every section "
        f"and keep the best ratio (default: {default_note})",
    )
    sub.add_argument(
        "--level",
        type=int,
        default=None,
        help="compression level for backends that take one "
        "(zlib/lzma 0-9, bz2 1-9; each backend's own default otherwise)",
    )


def _add_predicate_flags(sub: argparse.ArgumentParser) -> None:
    """Attach the shared flow-filter flags (query and replay commands)."""
    sub.add_argument(
        "--since", type=float, default=None,
        help="earliest flow start, seconds since the archive epoch",
    )
    sub.add_argument(
        "--until", type=float, default=None,
        help="latest flow start, seconds since the archive epoch",
    )
    sub.add_argument("--dst", default=None, help="destination address a.b.c.d")
    sub.add_argument(
        "--dst-prefix", default=None, help="destination prefix a.b.c.d/len"
    )
    sub.add_argument(
        "--kind", choices=["short", "long"], default=None, help="flow kind"
    )
    sub.add_argument("--min-packets", type=int, default=None)
    sub.add_argument("--max-packets", type=int, default=None)
    sub.add_argument("--min-rtt", type=float, default=None, help="seconds")
    sub.add_argument("--max-rtt", type=float, default=None, help="seconds")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Flow-clustering trace compressor tools."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesize a Web trace")
    generate.add_argument("output", help="output .tsh path")
    generate.add_argument("--duration", type=float, default=100.0)
    generate.add_argument("--rate", type=float, default=40.0, help="flows/second")
    generate.add_argument("--seed", type=int, default=1)
    generate.set_defaults(handler=_cmd_generate)

    compress = subparsers.add_parser("compress", help="compress a TSH trace")
    compress.add_argument("input", help="input .tsh path")
    compress.add_argument("output", help="output .fctc path")
    compress.add_argument(
        "--stream",
        action="store_true",
        help="read the input in chunks instead of loading it whole "
        "(bounded memory, byte-identical output)",
    )
    compress.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard flows across N processes and merge (implies streaming "
        "reads; --workers 1 streams without a process pool)",
    )
    compress.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="packets decoded per read (implies --stream; "
        f"default {DEFAULT_CHUNK_PACKETS})",
    )
    _add_backend_flags(compress, default_note="raw", what="the output container")
    compress.set_defaults(handler=_cmd_compress)

    decompress = subparsers.add_parser("decompress", help="rebuild a trace")
    decompress.add_argument("input", help="input .fctc path")
    decompress.add_argument(
        "output", help="output .tsh path (.pcap writes pcap-lite instead)"
    )
    decompress.set_defaults(handler=_cmd_decompress)

    replay = subparsers.add_parser(
        "replay",
        help="stream an archive back into a synthetic trace file",
    )
    replay.add_argument("archive", help=".fctca path")
    replay.add_argument(
        "output", help="output .tsh path (.pcap writes pcap-lite instead)"
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=None,
        help="synthesize segments across N processes (full replay only; "
        "output is byte-identical to the sequential stream)",
    )
    _add_predicate_flags(replay)
    replay.add_argument(
        "--limit", type=int, default=None, help="replay at most N matching flows"
    )
    replay.set_defaults(handler=_cmd_replay)

    stats = subparsers.add_parser("stats", help="flow statistics of a trace")
    stats.add_argument("input", help="input .tsh path")
    stats.set_defaults(handler=_cmd_stats)

    inspect = subparsers.add_parser("inspect", help="examine a compressed file")
    inspect.add_argument("input", help="input .fctc path")
    inspect.add_argument(
        "--addresses", action="store_true", help="list the address dataset"
    )
    inspect.set_defaults(handler=_cmd_inspect)

    convert = subparsers.add_parser("convert", help="convert between tsh/pcap")
    convert.add_argument("input", help="input .tsh or .pcap path")
    convert.add_argument("output", help="output .tsh or .pcap path")
    convert.set_defaults(handler=_cmd_convert)

    synthesize = subparsers.add_parser(
        "synthesize", help="fit a model and synthesize a scaled trace"
    )
    synthesize.add_argument("input", help="source .tsh path")
    synthesize.add_argument("output", help="output .tsh path")
    synthesize.add_argument(
        "--scale", type=float, default=1.0, help="flow-count multiplier"
    )
    synthesize.add_argument(
        "--flows", type=int, default=None, help="absolute flow count (overrides --scale)"
    )
    synthesize.add_argument("--seed", type=int, default=1)
    synthesize.set_defaults(handler=_cmd_synthesize)

    anonymize = subparsers.add_parser(
        "anonymize", help="prefix-preserving address anonymization"
    )
    anonymize.add_argument("input", help="input .tsh path")
    anonymize.add_argument("output", help="output .tsh path")
    anonymize.add_argument("--key", default="repro-anonymizer")
    anonymize.set_defaults(handler=_cmd_anonymize)

    compare = subparsers.add_parser(
        "compare", help="semantic comparison of two traces"
    )
    compare.add_argument("first", help="first .tsh path")
    compare.add_argument("second", help="second .tsh path")
    compare.set_defaults(handler=_cmd_compare)

    archive = subparsers.add_parser(
        "archive", help="build and inspect segmented .fctca archives"
    )
    archive_sub = archive.add_subparsers(dest="archive_command", required=True)

    def _segment_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--segment-packets",
            type=int,
            default=DEFAULT_SEGMENT_PACKETS,
            help=f"rotate after this many packets (default {DEFAULT_SEGMENT_PACKETS})",
        )
        sub.add_argument(
            "--segment-span",
            type=float,
            default=DEFAULT_SEGMENT_SPAN,
            help="rotate after this many seconds of trace time "
            f"(default {DEFAULT_SEGMENT_SPAN:g})",
        )

    archive_build = archive_sub.add_parser(
        "build", help="compress one or more .tsh captures into a new archive"
    )
    archive_build.add_argument("output", help="output .fctca path")
    archive_build.add_argument("inputs", nargs="+", help="input .tsh paths, in time order")
    _segment_flags(archive_build)
    _add_backend_flags(archive_build, default_note="raw", what="every segment")
    archive_build.set_defaults(handler=_cmd_archive_build)

    archive_append = archive_sub.add_parser(
        "append", help="append captures to an existing archive in place"
    )
    archive_append.add_argument("archive", help="existing .fctca path")
    archive_append.add_argument("inputs", nargs="+", help="input .tsh paths")
    _segment_flags(archive_append)
    _add_backend_flags(archive_append, default_note="raw", what="the new segments")
    archive_append.set_defaults(handler=_cmd_archive_append)

    archive_info = archive_sub.add_parser(
        "info", help="print the archive overview and per-segment index"
    )
    archive_info.add_argument("archive", help=".fctca path")
    archive_info.set_defaults(handler=_cmd_archive_info)

    query = subparsers.add_parser(
        "query",
        help="query flows in an archive without decoding unrelated segments",
    )
    query.add_argument("archive", help=".fctca path")
    _add_predicate_flags(query)
    query.add_argument(
        "--limit", type=int, default=None, help="stop after N matches"
    )
    query.add_argument(
        "--output",
        default=None,
        help="write matches as a filtered .fctca instead of printing them",
    )
    _add_backend_flags(
        query, what="--output segments",
        default_note="keep each source segment's backends",
    )
    query.set_defaults(handler=_cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        name = exc.filename if exc.filename is not None else exc
        print(f"error: {name}: no such file", file=sys.stderr)
        return 2
    except (CodecError, CompressionError, OSError, ValueError) as exc:
        # User-caused failures (malformed containers, capacity overflows,
        # truncated traces, bad flag values) end with a message, not a
        # traceback; programming errors still propagate.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
