"""``repro-trace`` — the command-line face of the library.

Every subcommand is a thin caller of the :mod:`repro.api` façade — the
CLI holds argument parsing and printing, nothing else, so CLI and
library behavior cannot diverge.  Subcommands (full reference in
``docs/CLI.md``)::

    repro-trace generate out.tsh --duration 100 --rate 40 --seed 1
    repro-trace generate out.tsh --scenario flood     (--list-scenarios for names)
    repro-trace fidelity [--scenario NAME ...] [--duration 10] [--out report.json]
    repro-trace compress in.tsh out.fctc [--stream] [--workers N] [--backend auto]
    repro-trace decompress in.fctc out.tsh
    repro-trace replay day.fctca out.tsh [--workers N] [--since 10 --dst a.b.c.d ...]
    repro-trace stats in.tsh
    repro-trace inspect in.fctc [--addresses]
    repro-trace convert in.tsh out.pcap
    repro-trace synthesize in.tsh out.tsh --scale 2
    repro-trace anonymize in.tsh out.tsh --key secret
    repro-trace compare a.tsh b.tsh
    repro-trace archive build day.fctca in1.tsh in2.tsh --segment-span 60 [--backend zlib]
    repro-trace archive append day.fctca in3.tsh
    repro-trace archive info day.fctca
    repro-trace query day.fctca --since 10 --until 60 --dst 192.168.0.80
    repro-trace serve day.fctca --source unix:/run/repro.sock --source tail:/data/live.tsh

Exit codes are uniform across every subcommand:

* ``0`` — success;
* ``1`` — internal error (a bug; set ``REPRO_DEBUG=1`` for the
  traceback);
* ``2`` — usage or data errors the user can fix (bad flags, missing
  files, malformed containers, capacity overflows), reported as a
  one-line ``error: ...`` message instead of a traceback.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from dataclasses import replace
from pathlib import Path

import repro
from repro import api
from repro.api.errors import ReproError
from repro.core.backends import AUTO, backend_names
from repro.core.errors import CodecError, CompressionError
from repro.net.ip import format_ipv4
from repro.obs import record_run
from repro.trace.reader import DEFAULT_CHUNK_PACKETS

_log = logging.getLogger(__name__)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        for scenario in api.iter_scenarios():
            print(f"{scenario.name:<15s} {scenario.summary}")
        return 0
    if args.output is None:
        _log.error("error: output path required (or pass --list-scenarios)")
        return 2
    result = api.generate(
        args.output,
        duration=args.duration,
        flow_rate=args.rate,
        seed=args.seed,
        scenario=args.scenario,
    )
    print(
        f"wrote {result.packets} packets ({result.size_bytes} B) to {args.output}"
    )
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    options = api.Options.make(backend=args.backend, level=args.level)
    report = api.fidelity(
        args.scenario,
        duration=args.duration,
        flow_rate=args.rate,
        seed=args.seed,
        options=options,
    )
    for line in report.summary_lines():
        print(line)
    if args.out is not None:
        report.write(args.out)
        print(f"wrote fidelity report to {args.out}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        _log.error("error: --workers must be >= 1, got %s", args.workers)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        _log.error("error: --chunk-size must be >= 1, got %s", args.chunk_size)
        return 2
    if args.stream and args.workers is not None and args.workers > 1:
        _log.error(
            "error: --stream promises byte-identical output, which the "
            "parallel merge cannot; drop one of --stream/--workers"
        )
        return 2
    options = api.Options.make(
        backend=args.backend,
        level=args.level,
        stream=args.stream,
        workers=args.workers,
        chunk_packets=args.chunk_size,
        engine=args.engine,
    )
    with api.open(args.input, options=options) as store:
        report = store.compress(args.output, options=options)
    if isinstance(report, api.ArchiveBuildReport):
        print(
            f"wrote {report.segments_written} segments / {report.packets} "
            f"packets to {args.output}"
        )
        return 0
    for line in report.summary_lines():
        print(line)
    if args.backend is not None and args.backend != "raw":
        # Auto may pick a different coder per section — show what
        # landed (framing parse only, no container re-decode).
        picks = " ".join(
            f"{s.name}={s.backend}"
            for s in api.container_sections(args.output)
        )
        print(f"backends        : {picks}")
    return 0


def _require_kind(store, path, allowed: tuple[str, ...], verb: str) -> None:
    """Reject inputs a subcommand's contract excludes, with exit 2.

    The library's ``export`` happily streams a raw trace (that is the
    ``convert`` subcommand), but ``decompress``/``replay`` pointed at an
    uncompressed capture is a user mistake that must not silently
    succeed as a byte copy.
    """
    if store.kind.value not in allowed:
        raise ReproError(
            f"{path}: {verb} takes {' or '.join(allowed)} input, "
            f"not {store.kind.value} (use 'convert' to copy raw traces)"
        )


def _cmd_decompress(args: argparse.Namespace) -> int:
    # Stream the packets straight to disk: byte-identical to the batch
    # decompressor, but peak memory is the concurrent-flow fan-out plus
    # the (compressed) datasets — never the synthetic trace itself.
    with api.open(args.input) as store:
        _require_kind(store, args.input, ("container", "archive"), "decompress")
        result = store.export(args.output)
    print(
        f"wrote {result.packets} packets ({result.size_bytes} B) to {args.output}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        _log.error("error: --workers must be >= 1, got %s", args.workers)
        return 2
    predicate = _build_predicate(args)
    filtered = not isinstance(predicate, api.MatchAll) or args.limit is not None
    workers = args.workers or 1
    if filtered and workers > 1:
        _log.error(
            "error: --workers parallelizes full-archive replay only; "
            "drop the flow filters/--limit or --workers"
        )
        return 2
    with api.open(args.archive) as store:
        _require_kind(store, args.archive, ("archive",), "replay")
        stats = api.QueryStats() if filtered else None
        result = store.export(
            args.output,
            predicate if filtered else None,
            limit=args.limit,
            workers=workers,
            stats=stats,
        )
        print(
            f"wrote {result.packets} packets ({result.size_bytes} B) "
            f"to {args.output}"
        )
        if stats is not None:
            for line in stats.summary_lines():
                print(line)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    kwargs = {}
    for name, value in (
        ("window", args.window),
        ("since", args.since),
        ("until", args.until),
        ("top_k", args.top),
        ("scan_fanout", args.scan_fanout),
        ("anonymize_key", args.anonymize_key),
        ("method", args.method),
    ):
        if value is not None:
            kwargs[name] = value
    with api.open(args.input) as store:
        stats = store.stats(**kwargs)
    if not isinstance(stats, api.MatrixReport):
        # A raw trace without matrix arguments keeps the legacy
        # packet-level statistics; the matrix flags need a window.
        if args.json or args.out is not None:
            _log.error(
                "error: --json/--out write the matrix report; pass "
                "--window (or a compressed input) to build one"
            )
            return 2
        for line in stats.summary_lines():
            print(line)
        return 0
    if args.out is not None:
        stats.write(args.out)
    if args.json:
        print(stats.to_json())
    else:
        for line in stats.summary_lines():
            print(line)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    with api.open(args.input) as store:
        for line in store.info().summary_lines():
            print(line)
        if args.addresses:
            for index, address in enumerate(store.addresses()):
                print(f"  [{index}] {format_ipv4(address)}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    report = api.synthesize(
        args.input,
        args.output,
        scale=args.scale,
        flows=args.flows,
        seed=args.seed,
    )
    print(
        f"fitted {report.templates} templates; "
        f"wrote {report.packets} packets / {report.flows} flows "
        f"({report.size_bytes} B) to {args.output}"
    )
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    result = api.anonymize(args.input, args.output, key=args.key)
    print(
        f"wrote {result.packets} anonymized packets "
        f"({result.size_bytes} B) to {args.output}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparison = api.compare(args.first, args.second)
    print(comparison.render())
    print()
    print(f"statistically similar: {comparison.statistically_similar()}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    with api.open(args.input) as store:
        result = store.export(args.output)
    if result.format == "pcap":
        print(f"wrote {result.packets} packets to {args.output}")
    else:
        print(
            f"wrote {result.packets} packets ({result.size_bytes} B) "
            f"to {args.output}"
        )
    return 0


def _archive_options(args: argparse.Namespace) -> "api.Options":
    return api.Options.make(
        backend=args.backend,
        level=args.level,
        segment_packets=args.segment_packets,
        segment_span=args.segment_span,
    )


def _cmd_archive_build(args: argparse.Namespace) -> int:
    report = api.create_archive(
        args.output, args.inputs, options=_archive_options(args)
    )
    print(
        f"wrote {report.segments_written} segments / {report.packets} "
        f"packets to {args.output}"
    )
    return 0


def _cmd_archive_append(args: argparse.Namespace) -> int:
    with api.open(args.archive) as store:
        report = store.append(args.inputs, options=_archive_options(args))
    print(
        f"appended {report.segments_written} segments / {report.packets} "
        f"packets to {args.archive} ({report.segments_total} total)"
    )
    return 0


def _cmd_archive_info(args: argparse.Namespace) -> int:
    with api.open(args.archive) as store:
        for line in store.info().summary_lines():
            print(line)
        if args.windows is not None:
            print()
            for line in _window_probe_lines(store.window_probe(args.windows)):
                print(line)
    return 0


def _window_probe_lines(probes) -> list[str]:
    """Render the ``archive info --windows N`` cost-estimate table."""
    header = (
        f"{'window':>7s} {'start':>10s} {'end':>10s} {'segments':>8s} "
        f"{'bytes':>12s} {'flows<=':>8s}"
    )
    lines = [
        "window probe (index only — nothing decoded):",
        header,
        "-" * len(header),
    ]
    for probe in probes:
        lines.append(
            f"{probe.index:>7d} {probe.start:>10.3f} {probe.end:>10.3f} "
            f"{probe.segments_overlapping:>8d} {probe.bytes_to_decode:>12d} "
            f"{probe.flows_upper_bound:>8d}"
        )
    return lines


def _cmd_serve(args: argparse.Namespace) -> int:
    serve_kwargs = {"sources": tuple(args.source)}
    if args.rotate_seconds is not None:
        serve_kwargs["rotate_seconds"] = args.rotate_seconds
    if args.queue_chunks is not None:
        serve_kwargs["queue_chunks"] = args.queue_chunks
    if args.drain_timeout is not None:
        serve_kwargs["drain_timeout"] = args.drain_timeout
    if args.stop_after is not None:
        serve_kwargs["stop_after_packets"] = args.stop_after
    if args.prometheus_port is not None:
        serve_kwargs["prometheus_port"] = args.prometheus_port
    if args.tail_poll is not None:
        serve_kwargs["tail_poll_seconds"] = args.tail_poll
    options = replace(
        api.Options.make(
            backend=args.backend,
            level=args.level,
            engine=args.engine,
            segment_packets=args.segment_packets,
            segment_span=args.segment_span,
            epoch=args.epoch,
        ),
        serve=api.ServeOptions(**serve_kwargs),
    )
    report = api.serve(args.output, options)
    for line in report.summary_lines():
        print(line)
    return 0


def _build_predicate(args: argparse.Namespace):
    predicate = None

    def conjoin(term) -> None:
        nonlocal predicate
        predicate = term if predicate is None else predicate & term

    if args.since is not None or args.until is not None:
        conjoin(
            api.TimeRange(
                args.since or 0.0,
                args.until if args.until is not None else float("inf"),
            )
        )
    if args.dst is not None:
        conjoin(api.DestinationAddress(args.dst))
    if args.dst_prefix is not None:
        conjoin(api.DestinationPrefix(args.dst_prefix))
    if args.kind is not None:
        conjoin(api.FlowKind(args.kind))
    if args.min_packets is not None or args.max_packets is not None:
        conjoin(api.PacketCountRange(args.min_packets or 1, args.max_packets))
    if args.min_rtt is not None or args.max_rtt is not None:
        conjoin(api.RttRange(args.min_rtt or 0.0, args.max_rtt))
    return predicate if predicate is not None else api.MatchAll()


def _cmd_query(args: argparse.Namespace) -> int:
    if args.output is None and (args.backend is not None or args.level is not None):
        _log.error(
            "error: --backend/--level re-encode the --output sub-archive; "
            "pass --output or drop them"
        )
        return 2
    predicate = _build_predicate(args)
    if args.stats:
        if args.output is not None or args.limit is not None:
            _log.error(
                "error: --stats aggregates every matching flow; drop "
                "--output/--limit"
            )
            return 2
        with api.open(args.archive) as store:
            _require_kind(store, args.archive, ("archive",), "query --stats")
            return _print_query_stats(store, predicate)
    with api.open(args.archive) as store:
        if args.output is not None:
            options = api.Options.make(backend=args.backend, level=args.level)
            written, stats = store.filter(
                args.output, predicate, limit=args.limit, options=options
            )
            print(
                f"wrote {written} segments / {stats.flows_matched} flows "
                f"to {args.output}"
            )
        else:
            result = store.query(predicate, limit=args.limit)
            for flow in result.flows:
                print(
                    f"seg={flow.segment:<4d} t={flow.timestamp:<12.4f} "
                    f"kind={flow.kind.name.lower():<5s} packets={flow.packet_count:<6d} "
                    f"dst={format_ipv4(flow.destination):<15s} "
                    f"rtt={flow.rtt:.4f}"
                )
            stats = result.stats
        for line in stats.summary_lines():
            print(line)
    return 0


def _print_query_stats(store, predicate) -> int:
    """``repro-trace query --stats``: matched flows as one matrix window.

    Rides the flow-metadata fast path — no packet is synthesized — and
    folds every matching flow into a single unbounded window, then
    prints its matrix statistics plus the usual query work accounting.
    """
    from repro.analysis.matrices import StreamingWindowAggregator
    from repro.query.engine import QueryEngine

    query_stats = api.QueryStats()
    aggregator = StreamingWindowAggregator(None)
    engine = QueryEngine(store.reader)
    for record in engine.iter_flow_records(predicate, stats=query_stats):
        for _ in aggregator.feed(record):
            pass  # span=None: no window completes before finish()
    matrices = list(aggregator.finish())
    if not matrices:
        print("no matching flows")
    else:
        stats = matrices[0].stats()
        print(f"matched flows   : {stats.flows}")
        print(f"packets / bytes : {stats.packets} / {stats.bytes}")
        print(
            f"sources / dests : {stats.sources} / {stats.destinations} "
            f"({stats.links} links)"
        )
        print(f"max fan-out/in  : {stats.max_fanout} / {stats.max_fanin}")
        for link in stats.top_links_packets[:3]:
            print(
                f"top link        : {format_ipv4(link.src)} -> "
                f"{format_ipv4(link.dst)} ({link.packets} packets, "
                f"{link.bytes} B)"
            )
    for line in query_stats.summary_lines():
        print(line)
    return 0


def _add_backend_flags(
    sub: argparse.ArgumentParser, *, default_note: str, what: str
) -> None:
    """Attach the shared section-backend flags (`--backend`, `--level`).

    The argparse default is always ``None`` — the library's "raw / keep
    source backends" behavior, under which `--level` is advisory.  Only
    an *explicitly named* backend treats an unusable `--level` as an
    error.  ``default_note`` is the human description of the None case.
    """
    sub.add_argument(
        "--backend",
        choices=[*backend_names(), AUTO],
        default=None,
        help=f"section codec for {what}: one of the registered backends, "
        "or 'auto' to trial each backend on a sample of every section "
        f"and keep the best ratio (default: {default_note})",
    )
    sub.add_argument(
        "--level",
        type=int,
        default=None,
        help="compression level for backends that take one "
        "(zlib/lzma 0-9, bz2 1-9; each backend's own default otherwise)",
    )


def _add_predicate_flags(sub: argparse.ArgumentParser) -> None:
    """Attach the shared flow-filter flags (query and replay commands)."""
    sub.add_argument(
        "--since", type=float, default=None,
        help="earliest flow start, seconds since the archive epoch",
    )
    sub.add_argument(
        "--until", type=float, default=None,
        help="latest flow start, seconds since the archive epoch",
    )
    sub.add_argument("--dst", default=None, help="destination address a.b.c.d")
    sub.add_argument(
        "--dst-prefix", default=None, help="destination prefix a.b.c.d/len"
    )
    sub.add_argument(
        "--kind", choices=["short", "long"], default=None, help="flow kind"
    )
    sub.add_argument("--min-packets", type=int, default=None)
    sub.add_argument("--max-packets", type=int, default=None)
    sub.add_argument("--min-rtt", type=float, default=None, help="seconds")
    sub.add_argument("--max-rtt", type=float, default=None, help="seconds")


def _common_flags() -> argparse.ArgumentParser:
    """The global flags every subcommand shares, as a parent parser.

    Attached via ``parents=`` on each subparser (never duplicated on the
    root — a subparser's default would silently override the root's
    parsed value), so ``repro-trace compress -v ...`` and
    ``repro-trace archive build --metrics ...`` both work.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("diagnostics")
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )
    group.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="log errors only (overrides -v)",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics table to stderr when done",
    )
    group.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the run's metrics as a JSON run report to FILE",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Flow-clustering trace compressor tools."
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    common = _common_flags()
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesize a registered traffic scenario", parents=[common]
    )
    generate.add_argument(
        "output", nargs="?", default=None, help="output .tsh path"
    )
    generate.add_argument("--duration", type=float, default=100.0)
    generate.add_argument("--rate", type=float, default=40.0, help="flows/second")
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="named traffic scenario from the registry "
        "(default: web, the historical workload; see --list-scenarios)",
    )
    generate.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenario names and exit",
    )
    generate.set_defaults(handler=_cmd_generate)

    fidelity = subparsers.add_parser(
        "fidelity",
        help="score scenario compress→reconstruct roundtrips",
        parents=[common],
    )
    fidelity.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to score (repeatable; default: all registered)",
    )
    fidelity.add_argument(
        "--duration", type=float, default=10.0, help="seconds of traffic per scenario"
    )
    fidelity.add_argument("--rate", type=float, default=40.0, help="flows/second")
    fidelity.add_argument(
        "--seed", type=int, default=None,
        help="generator seed (default: each scenario's own)",
    )
    fidelity.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the FidelityReport JSON to FILE",
    )
    _add_backend_flags(fidelity, default_note="raw", what="the scored containers")
    fidelity.set_defaults(handler=_cmd_fidelity)

    compress = subparsers.add_parser(
        "compress", help="compress a TSH trace", parents=[common]
    )
    compress.add_argument("input", help="input .tsh path")
    compress.add_argument(
        "output", help="output .fctc path (.fctca builds a segmented archive)"
    )
    compress.add_argument(
        "--stream",
        action="store_true",
        help="read the input in chunks instead of loading it whole "
        "(bounded memory, byte-identical output)",
    )
    compress.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard flows across N processes and merge (implies streaming "
        "reads; --workers 1 streams without a process pool)",
    )
    compress.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="packets decoded per read (implies --stream; "
        f"default {DEFAULT_CHUNK_PACKETS})",
    )
    compress.add_argument(
        "--engine",
        choices=("auto", "scalar", "columnar"),
        default=None,
        help="compression hot path: columnar vectorizes parse/cluster/"
        "encode (auto picks it when numpy is available); output bytes "
        "are identical either way",
    )
    _add_backend_flags(compress, default_note="raw", what="the output container")
    compress.set_defaults(handler=_cmd_compress)

    decompress = subparsers.add_parser(
        "decompress", help="rebuild a trace", parents=[common]
    )
    decompress.add_argument("input", help="input .fctc path")
    decompress.add_argument(
        "output", help="output .tsh path (.pcap writes pcap-lite instead)"
    )
    decompress.set_defaults(handler=_cmd_decompress)

    replay = subparsers.add_parser(
        "replay",
        help="stream an archive back into a synthetic trace file",
        parents=[common],
    )
    replay.add_argument("archive", help=".fctca path")
    replay.add_argument(
        "output", help="output .tsh path (.pcap writes pcap-lite instead)"
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=None,
        help="synthesize segments across N processes (full replay only; "
        "output is byte-identical to the sequential stream)",
    )
    _add_predicate_flags(replay)
    replay.add_argument(
        "--limit", type=int, default=None, help="replay at most N matching flows"
    )
    replay.set_defaults(handler=_cmd_replay)

    stats = subparsers.add_parser(
        "stats",
        help="packet statistics of a trace, or windowed traffic-matrix "
        "analytics over compressed inputs",
        parents=[common],
    )
    stats.add_argument("input", help="input .tsh/.pcap/.fctc/.fctca path")
    stats.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="traffic-matrix window span; compressed inputs default to "
        "60, raw traces keep the legacy packet statistics unless set",
    )
    stats.add_argument(
        "--since", type=float, default=None,
        help="earliest flow start, seconds since the epoch",
    )
    stats.add_argument(
        "--until", type=float, default=None,
        help="latest flow start, seconds since the epoch",
    )
    stats.add_argument(
        "--top", type=int, default=None, metavar="K",
        help="depth of the top-link / scan-candidate lists (default 10)",
    )
    stats.add_argument(
        "--scan-fanout", type=int, default=None, metavar="N",
        help="per-window fan-out at which a source counts as a scan "
        "candidate (default 16)",
    )
    stats.add_argument(
        "--anonymize-key", default=None, metavar="KEY",
        help="keyed-hash (blake2b) address anonymization; the same key "
        "maps the same host to the same pseudonym across runs",
    )
    stats.add_argument(
        "--method",
        choices=("index", "decode"),
        default=None,
        help="derive flows from the metadata fast path (index, default) "
        "or from full packet synthesis (decode); identical statistics",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="print the repro.analysis/matrix-report/v1 JSON document",
    )
    stats.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the matrix report JSON to FILE",
    )
    stats.set_defaults(handler=_cmd_stats)

    inspect = subparsers.add_parser(
        "inspect", help="examine a compressed file", parents=[common]
    )
    inspect.add_argument("input", help="input .fctc path")
    inspect.add_argument(
        "--addresses", action="store_true", help="list the address dataset"
    )
    inspect.set_defaults(handler=_cmd_inspect)

    convert = subparsers.add_parser(
        "convert", help="convert between tsh/pcap", parents=[common]
    )
    convert.add_argument("input", help="input .tsh or .pcap path")
    convert.add_argument("output", help="output .tsh or .pcap path")
    convert.set_defaults(handler=_cmd_convert)

    synthesize = subparsers.add_parser(
        "synthesize",
        help="fit a model and synthesize a scaled trace",
        parents=[common],
    )
    synthesize.add_argument("input", help="source .tsh path")
    synthesize.add_argument("output", help="output .tsh path")
    synthesize.add_argument(
        "--scale", type=float, default=1.0, help="flow-count multiplier"
    )
    synthesize.add_argument(
        "--flows", type=int, default=None, help="absolute flow count (overrides --scale)"
    )
    synthesize.add_argument("--seed", type=int, default=1)
    synthesize.set_defaults(handler=_cmd_synthesize)

    anonymize = subparsers.add_parser(
        "anonymize",
        help="prefix-preserving address anonymization",
        parents=[common],
    )
    anonymize.add_argument("input", help="input .tsh path")
    anonymize.add_argument("output", help="output .tsh path")
    anonymize.add_argument("--key", default="repro-anonymizer")
    anonymize.set_defaults(handler=_cmd_anonymize)

    compare = subparsers.add_parser(
        "compare", help="semantic comparison of two traces", parents=[common]
    )
    compare.add_argument("first", help="first .tsh path")
    compare.add_argument("second", help="second .tsh path")
    compare.set_defaults(handler=_cmd_compare)

    archive = subparsers.add_parser(
        "archive", help="build and inspect segmented .fctca archives"
    )
    archive_sub = archive.add_subparsers(dest="archive_command", required=True)

    def _segment_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--segment-packets",
            type=int,
            default=None,
            help="rotate after this many packets (default 65536)",
        )
        sub.add_argument(
            "--segment-span",
            type=float,
            default=None,
            help="rotate after this many seconds of trace time (default 60)",
        )

    archive_build = archive_sub.add_parser(
        "build",
        help="compress one or more .tsh captures into a new archive",
        parents=[common],
    )
    archive_build.add_argument("output", help="output .fctca path")
    archive_build.add_argument("inputs", nargs="+", help="input .tsh paths, in time order")
    _segment_flags(archive_build)
    _add_backend_flags(archive_build, default_note="raw", what="every segment")
    archive_build.set_defaults(handler=_cmd_archive_build)

    archive_append = archive_sub.add_parser(
        "append",
        help="append captures to an existing archive in place",
        parents=[common],
    )
    archive_append.add_argument("archive", help="existing .fctca path")
    archive_append.add_argument("inputs", nargs="+", help="input .tsh paths")
    _segment_flags(archive_append)
    _add_backend_flags(archive_append, default_note="raw", what="the new segments")
    archive_append.set_defaults(handler=_cmd_archive_append)

    archive_info = archive_sub.add_parser(
        "info",
        help="print the archive overview and per-segment index",
        parents=[common],
    )
    archive_info.add_argument("archive", help=".fctca path")
    archive_info.add_argument(
        "--windows",
        type=int,
        default=None,
        metavar="N",
        help="append an N-window segment-overlap probe — the decode "
        "cost estimate behind windowed stats (index only, no decode)",
    )
    archive_info.set_defaults(handler=_cmd_archive_info)

    serve = subparsers.add_parser(
        "serve",
        help="run the live-capture ingest daemon into a .fctca archive",
        parents=[common],
    )
    serve.add_argument("output", help="output .fctca archive path")
    serve.add_argument(
        "--source",
        action="append",
        required=True,
        metavar="SPEC",
        help="ingest source scheme:target[+format], repeatable: "
        "unix:/path.sock and tcp:host:port accept length-framed streams, "
        "tail:/path follows a growing capture file; '+pcap' switches the "
        "payload format (default tsh)",
    )
    serve.add_argument(
        "--segment-packets",
        type=int,
        default=None,
        help="rotate a source's segment after this many packets (default 65536)",
    )
    serve.add_argument(
        "--segment-span",
        type=float,
        default=None,
        help="rotate after this many seconds of trace time (default 60)",
    )
    serve.add_argument(
        "--epoch",
        type=float,
        default=None,
        help="pin the archive time base (seconds); without it the first "
        "packet from whichever source wins anchors the epoch",
    )
    serve.add_argument(
        "--rotate-seconds",
        type=float,
        default=None,
        help="also flush quiet sources every N wall-clock seconds",
    )
    serve.add_argument(
        "--queue-chunks",
        type=int,
        default=None,
        help="per-source ingest queue bound in decoded chunks; a full "
        "queue backpressures the source (default 64)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="seconds a SIGTERM/SIGINT drain may take before queued "
        "data is cut (default 10)",
    )
    serve.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="PACKETS",
        help="stop (with a clean drain) once this many packets were "
        "ingested — bounded runs for tests and benchmarks",
    )
    serve.add_argument(
        "--prometheus-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus text metrics on 127.0.0.1:PORT (0 picks "
        "an ephemeral port, logged at startup)",
    )
    serve.add_argument(
        "--tail-poll",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll interval for tail: sources (default 0.25)",
    )
    serve.add_argument(
        "--engine",
        choices=("auto", "scalar", "columnar"),
        default=None,
        help="compression hot path per source (auto picks columnar when "
        "numpy is available); output bytes are identical either way",
    )
    _add_backend_flags(serve, default_note="raw", what="every segment")
    serve.set_defaults(handler=_cmd_serve)

    query = subparsers.add_parser(
        "query",
        help="query flows in an archive without decoding unrelated segments",
        parents=[common],
    )
    query.add_argument("archive", help=".fctca path")
    _add_predicate_flags(query)
    query.add_argument(
        "--limit", type=int, default=None, help="stop after N matches"
    )
    query.add_argument(
        "--output",
        default=None,
        help="write matches as a filtered .fctca instead of printing them",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="aggregate the matching flows into one traffic-matrix "
        "window and print its statistics instead of the flow list",
    )
    _add_backend_flags(
        query, what="--output segments",
        default_note="keep each source segment's backends",
    )
    query.set_defaults(handler=_cmd_query)

    return parser


def _configure_logging(verbose: int, quiet: bool) -> None:
    """Point the ``repro`` logger at the *current* stderr for this run.

    The handler is rebuilt on every :func:`main` call rather than once at
    import, because test harnesses (and some embedders) swap
    ``sys.stderr`` between invocations; a cached stream would write into
    the void.  Handlers from previous runs are tagged and removed so
    repeated ``main()`` calls never double-print.  Messages pass through
    verbatim (``%(message)s``) — the one-line ``error: ...`` contract of
    the exit-code table depends on it.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler._repro_cli = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logger.setLevel(level)


def _run_handler(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand, recording a run report when asked.

    ``--metrics`` / ``--metrics-out`` wrap the handler in
    :func:`repro.obs.record_run` — a fresh scoped registry, so the
    report covers exactly this invocation.  Without either flag the
    handler runs bare and pays nothing.
    """
    metrics_out = getattr(args, "metrics_out", None)
    show_metrics = getattr(args, "metrics", False)
    if not metrics_out and not show_metrics:
        return args.handler(args)
    command = args.command
    sub = getattr(args, "archive_command", None)
    if sub:
        command = f"{command}.{sub}"
    with record_run(command) as run:
        code = args.handler(args)
    if metrics_out:
        run.report.write(metrics_out)
    if show_metrics:
        for line in run.report.summary_lines():
            print(line, file=sys.stderr)
    return code


def main(argv: list[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help/--version (0) and usage errors (2);
        # normalize so main() always *returns* a uniform code.
        code = exc.code
        return code if isinstance(code, int) else (0 if code is None else 2)
    _configure_logging(getattr(args, "verbose", 0), getattr(args, "quiet", False))
    try:
        return _run_handler(args)
    except FileNotFoundError as exc:
        name = exc.filename if exc.filename is not None else exc
        _log.error("error: %s: no such file", name)
        return 2
    except (ReproError, CodecError, CompressionError, OSError, ValueError) as exc:
        # User-caused failures (malformed containers, capacity overflows,
        # truncated traces, bad flag values) end with a message, not a
        # traceback; programming errors land in the handler below.
        _log.error("error: %s", exc)
        return 2
    except Exception as exc:  # noqa: BLE001 — the uniform "internal" exit
        if os.environ.get("REPRO_DEBUG"):
            raise
        _log.error(
            "internal error: %r (set REPRO_DEBUG=1 for the traceback)", exc
        )
        return 1


if __name__ == "__main__":
    sys.exit(main())
