"""Memory-performance instrumentation (section 6).

The paper instruments the Radix-Tree benchmarks with ATOM, placing
"checkpoints ... at the beginning and at the end of the packet
processing" and recording "the number of memory accesses performed by
each packet", then measures cache miss rates.  This subpackage provides
the equivalent simulation substrate:

* :mod:`repro.memsim.memory` — a simulated heap that gives every data
  structure node a stable address;
* :mod:`repro.memsim.access` — the checkpointed access recorder;
* :mod:`repro.memsim.cache` — a set-associative LRU cache replaying
  recorded address traces;
* :mod:`repro.memsim.metrics` — per-packet access/miss statistics and
  the Figure 2/3 aggregations.
"""

from repro.memsim.memory import SimulatedHeap
from repro.memsim.access import AccessRecorder, PacketAccessTrace
from repro.memsim.cache import CacheConfig, CacheStatistics, SetAssociativeCache
from repro.memsim.hierarchy import CacheHierarchy, HierarchyConfig, HierarchyStatistics
from repro.memsim.metrics import (
    MISS_RATE_BUCKETS,
    PacketMemoryMetrics,
    TraceMemoryProfile,
    bucket_miss_rates,
    profile_from_recorder,
)

__all__ = [
    "SimulatedHeap",
    "AccessRecorder",
    "PacketAccessTrace",
    "CacheConfig",
    "CacheStatistics",
    "SetAssociativeCache",
    "CacheHierarchy",
    "HierarchyConfig",
    "HierarchyStatistics",
    "MISS_RATE_BUCKETS",
    "PacketMemoryMetrics",
    "TraceMemoryProfile",
    "bucket_miss_rates",
    "profile_from_recorder",
]
