"""Set-associative LRU cache simulator.

Replays recorded address streams and reports hit/miss counts; the
Figure 3 experiment replays each packet's addresses in order (cache state
persists across packets, as it does on real hardware) and buckets the
per-packet miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the simulated cache.

    The defaults (16 KiB, 32-byte lines, 2-way) are in the range of the
    network-processor / early-2000s L1 data caches the paper's testbed
    implies.
    """

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    associativity: int = 2

    def __post_init__(self) -> None:
        for label, value in (
            ("size_bytes", self.size_bytes),
            ("line_bytes", self.line_bytes),
            ("associativity", self.associativity),
        ):
            if value < 1:
                raise ValueError(f"{label} must be positive: {value}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "cache size must be a multiple of line_bytes * associativity"
            )

    @property
    def set_count(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStatistics:
    """Running hit/miss counters."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache over simulated addresses."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self.stats = CacheStatistics()
        # Each set is an ordered list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.config.set_count)]
        line = self.config.line_bytes
        self._line_shift = line.bit_length() - 1
        self._set_mask = self.config.set_count - 1
        self._power_of_two_sets = self.config.set_count & self._set_mask == 0

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit, False on miss."""
        line_address = address >> self._line_shift
        if self._power_of_two_sets:
            set_index = line_address & self._set_mask
        else:
            set_index = line_address % self.config.set_count
        tag = line_address
        ways = self._sets[set_index]
        self.stats.accesses += 1
        try:
            ways.remove(tag)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.config.associativity:
                ways.pop(0)  # evict LRU
            ways.append(tag)
            return False
        ways.append(tag)  # refresh LRU position
        return True

    def replay(self, addresses: Sequence[int]) -> CacheStatistics:
        """Replay a burst of accesses; returns the stats for this burst."""
        burst = CacheStatistics()
        for address in addresses:
            hit = self.access(address)
            burst.accesses += 1
            if not hit:
                burst.misses += 1
        return burst

    def flush(self) -> None:
        """Empty the cache (keeps cumulative statistics)."""
        self._sets = [[] for _ in range(self.config.set_count)]

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(ways) for ways in self._sets)
