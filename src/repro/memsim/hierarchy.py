"""Two-level cache hierarchy simulation.

The paper reports a single cache's miss rate; real network processors of
the era backed a small L1 with a larger L2.  The hierarchy replays an
address stream through both levels (L2 sees only L1 misses) and reports
per-level statistics — used to check that the Figure 3 conclusion also
holds for the traffic that escapes L1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.memsim.cache import CacheConfig, CacheStatistics, SetAssociativeCache


@dataclass(frozen=True)
class HierarchyConfig:
    """L1 + L2 geometries (inclusive hierarchy, both LRU)."""

    l1: CacheConfig = CacheConfig(size_bytes=8 * 1024, line_bytes=32, associativity=2)
    l2: CacheConfig = CacheConfig(size_bytes=128 * 1024, line_bytes=64, associativity=8)

    def __post_init__(self) -> None:
        if self.l2.size_bytes < self.l1.size_bytes:
            raise ValueError(
                "L2 must be at least as large as L1: "
                f"{self.l2.size_bytes} < {self.l1.size_bytes}"
            )


@dataclass
class HierarchyStatistics:
    """Per-level counters of one replay."""

    l1: CacheStatistics
    l2: CacheStatistics

    @property
    def global_miss_rate(self) -> float:
        """Misses that reached memory over all accesses."""
        if self.l1.accesses == 0:
            return 0.0
        return self.l2.misses / self.l1.accesses

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses over L2 accesses (the classic 'local' rate)."""
        return self.l2.miss_rate


class CacheHierarchy:
    """An L1 backed by an L2; L2 is only consulted on L1 misses."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self._l1 = SetAssociativeCache(self.config.l1)
        self._l2 = SetAssociativeCache(self.config.l2)

    def access(self, address: int) -> str:
        """Touch ``address``; returns 'l1', 'l2' or 'memory'."""
        if self._l1.access(address):
            return "l1"
        if self._l2.access(address):
            return "l2"
        return "memory"

    def replay(self, addresses: Sequence[int]) -> HierarchyStatistics:
        """Replay a burst; returns this burst's per-level statistics."""
        burst_l1 = CacheStatistics()
        burst_l2 = CacheStatistics()
        for address in addresses:
            burst_l1.accesses += 1
            if self._l1.access(address):
                continue
            burst_l1.misses += 1
            burst_l2.accesses += 1
            if not self._l2.access(address):
                burst_l2.misses += 1
        return HierarchyStatistics(burst_l1, burst_l2)

    @property
    def stats(self) -> HierarchyStatistics:
        """Cumulative per-level statistics."""
        return HierarchyStatistics(self._l1.stats, self._l2.stats)

    def flush(self) -> None:
        """Empty both levels (keeps cumulative statistics)."""
        self._l1.flush()
        self._l2.flush()
