"""A simulated heap: stable addresses for data-structure nodes.

The radix tree, NAT table and friends allocate their nodes here so that
every node has a concrete address; the access recorder then logs loads
and stores against those addresses, and the cache simulator replays them.

The allocator is a bump allocator with an explicit free list.  The free
list matters: the paper attributes part of the original-vs-random
divergence to "in one trace memory needs to be released, whereas in the
other trace memory is still available" — NAT entry churn exercises
exactly this path.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_ALIGNMENT = 8
HEAP_BASE = 0x1000_0000


@dataclass(frozen=True, slots=True)
class Allocation:
    """One live allocation: base address, size, and a debugging label."""

    address: int
    size: int
    label: str


class SimulatedHeap:
    """Bump allocator with size-bucketed free lists."""

    def __init__(
        self, base: int = HEAP_BASE, alignment: int = DEFAULT_ALIGNMENT
    ) -> None:
        if alignment < 1 or alignment & (alignment - 1):
            raise ValueError(f"alignment must be a power of two: {alignment}")
        self._base = base
        self._alignment = alignment
        self._cursor = base
        self._live: dict[int, Allocation] = {}
        self._free_lists: dict[int, list[int]] = {}
        self.alloc_count = 0
        self.free_count = 0
        self.reuse_count = 0

    def _round_up(self, size: int) -> int:
        mask = self._alignment - 1
        return (size + mask) & ~mask

    def alloc(self, size: int, label: str = "") -> int:
        """Allocate ``size`` bytes; returns the block's base address.

        Freed blocks of the same rounded size are reused first (LIFO),
        mimicking a malloc size-class free list.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        rounded = self._round_up(size)
        self.alloc_count += 1
        bucket = self._free_lists.get(rounded)
        if bucket:
            address = bucket.pop()
            self.reuse_count += 1
        else:
            address = self._cursor
            self._cursor += rounded
        self._live[address] = Allocation(address, rounded, label)
        return address

    def free(self, address: int) -> None:
        """Release a block back to its size-class free list."""
        allocation = self._live.pop(address, None)
        if allocation is None:
            raise ValueError(f"double free or unknown address: {address:#x}")
        self.free_count += 1
        self._free_lists.setdefault(allocation.size, []).append(address)

    def live_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(a.size for a in self._live.values())

    def footprint_bytes(self) -> int:
        """High-water mark of the heap (bytes ever bump-allocated)."""
        return self._cursor - self._base

    def live_allocations(self) -> int:
        """Number of live blocks."""
        return len(self._live)

    def owner_of(self, address: int) -> Allocation | None:
        """The allocation containing ``address``, if any (debug helper)."""
        for allocation in self._live.values():
            if allocation.address <= address < allocation.address + allocation.size:
                return allocation
        return None
