"""Per-packet memory metrics and the Figure 2/3 aggregations.

Figure 2 plots cumulative traffic (%) against the number of memory
accesses per packet; Figure 3 buckets per-packet cache miss rates into
0–5%, 5–10%, 10–20% and >20% bins.  This module turns a recorded access
stream (plus a cache replay) into exactly those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.memsim.access import AccessRecorder
from repro.memsim.cache import CacheConfig, SetAssociativeCache

MISS_RATE_BUCKETS: tuple[tuple[float, float], ...] = (
    (0.00, 0.05),
    (0.05, 0.10),
    (0.10, 0.20),
    (0.20, 1.01),
)
"""Figure 3's bucket edges (last bucket is '>20%')."""

MISS_RATE_BUCKET_LABELS = ("0%-5%", "5%-10%", "10%-20%", ">20%")


@dataclass(frozen=True)
class PacketMemoryMetrics:
    """One packet's instrumentation result."""

    index: int
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class TraceMemoryProfile:
    """The full per-packet profile of one trace run through a benchmark."""

    name: str
    packets: list[PacketMemoryMetrics]

    def __len__(self) -> int:
        return len(self.packets)

    def access_counts(self) -> list[int]:
        """Per-packet access counts (Figure 2 raw data)."""
        return [p.accesses for p in self.packets]

    def miss_rates(self) -> list[float]:
        """Per-packet miss rates (Figure 3 raw data)."""
        return [p.miss_rate for p in self.packets]

    def mean_accesses(self) -> float:
        """Average accesses per packet."""
        if not self.packets:
            return 0.0
        return sum(p.accesses for p in self.packets) / len(self.packets)

    def overall_miss_rate(self) -> float:
        """Whole-trace miss rate (all accesses pooled)."""
        accesses = sum(p.accesses for p in self.packets)
        misses = sum(p.misses for p in self.packets)
        return misses / accesses if accesses else 0.0

    def cumulative_traffic_by_accesses(
        self, thresholds: Sequence[int]
    ) -> list[float]:
        """Fraction of packets with access count <= each threshold.

        This is Figure 2's Y axis ("Traffic (%)") sampled at the given
        X values ("#Mem Accs").
        """
        counts = sorted(self.access_counts())
        total = len(counts)
        if total == 0:
            return [0.0 for _ in thresholds]
        out: list[float] = []
        cursor = 0
        for threshold in thresholds:
            while cursor < total and counts[cursor] <= threshold:
                cursor += 1
            out.append(100.0 * cursor / total)
        return out

    def miss_rate_buckets(self) -> list[float]:
        """Fraction of packets (%) in each Figure 3 bucket."""
        return bucket_miss_rates(self.miss_rates())


def bucket_miss_rates(rates: Sequence[float]) -> list[float]:
    """Share of packets (%) per Figure 3 miss-rate bucket."""
    if not rates:
        return [0.0] * len(MISS_RATE_BUCKETS)
    counts = [0] * len(MISS_RATE_BUCKETS)
    for rate in rates:
        for index, (low, high) in enumerate(MISS_RATE_BUCKETS):
            if low <= rate < high:
                counts[index] += 1
                break
    return [100.0 * c / len(rates) for c in counts]


def profile_from_recorder(
    name: str,
    recorder: AccessRecorder,
    cache_config: CacheConfig | None = None,
) -> TraceMemoryProfile:
    """Replay a recorded stream through a fresh cache; build the profile.

    The cache persists across packets (hardware behaviour); each packet's
    miss count comes from its own slice of the replay.
    """
    cache = SetAssociativeCache(cache_config)
    packets: list[PacketMemoryMetrics] = []
    for trace in recorder.iter_packets():
        burst = cache.replay(trace.addresses)
        packets.append(
            PacketMemoryMetrics(trace.index, burst.accesses, burst.misses)
        )
    return TraceMemoryProfile(name, packets)
