"""ATOM-like checkpointed memory-access recording.

"The Radix Tree code was instrumented using the ATOM tool.  In order to
delimit the processing of packets, checkpoints were placed at the
beginning and at the end of the packet processing.  The instrumented code
records the number of memory accesses performed by each packet."

The recorder stores the flat address stream plus per-packet index ranges,
so it can answer both "how many accesses did packet ``i`` perform"
(Figure 2) and "replay packet ``i``'s addresses through a cache"
(Figure 3).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class PacketAccessTrace:
    """The slice of the address stream belonging to one packet."""

    index: int
    addresses: Sequence[int]

    @property
    def access_count(self) -> int:
        return len(self.addresses)


class AccessRecorder:
    """Flat access log with packet checkpoints.

    Usage::

        recorder.begin_packet()
        recorder.record(address)        # any number of times
        recorder.end_packet()
    """

    def __init__(self) -> None:
        self._addresses = array("Q")
        self._bounds: list[tuple[int, int]] = []
        self._packet_start: int | None = None

    # -- recording ----------------------------------------------------------

    def begin_packet(self) -> None:
        """Checkpoint: packet processing starts."""
        if self._packet_start is not None:
            raise RuntimeError("begin_packet without matching end_packet")
        self._packet_start = len(self._addresses)

    def record(self, address: int) -> None:
        """Log one memory access (load or store) at ``address``."""
        self._addresses.append(address)

    def record_many(self, addresses: Sequence[int]) -> None:
        """Log several accesses at once."""
        self._addresses.extend(addresses)

    def end_packet(self) -> None:
        """Checkpoint: packet processing ends."""
        if self._packet_start is None:
            raise RuntimeError("end_packet without begin_packet")
        self._bounds.append((self._packet_start, len(self._addresses)))
        self._packet_start = None

    # -- queries ----------------------------------------------------------

    @property
    def packet_count(self) -> int:
        """Packets completed so far."""
        return len(self._bounds)

    @property
    def total_accesses(self) -> int:
        """All accesses logged (including any open packet)."""
        return len(self._addresses)

    def accesses_per_packet(self) -> list[int]:
        """The per-packet access counts, in packet order (Figure 2 data)."""
        return [end - start for start, end in self._bounds]

    def packet_trace(self, index: int) -> PacketAccessTrace:
        """The address slice of packet ``index``."""
        start, end = self._bounds[index]
        return PacketAccessTrace(index, self._addresses[start:end])

    def iter_packets(self) -> Iterator[PacketAccessTrace]:
        """All per-packet traces, in order."""
        for index, (start, end) in enumerate(self._bounds):
            yield PacketAccessTrace(index, self._addresses[start:end])

    def flat_addresses(self) -> Sequence[int]:
        """The whole address stream (cache warm-up / full replay)."""
        return self._addresses
