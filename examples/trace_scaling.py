#!/usr/bin/env python3
"""Future work, realized: scale a trace up from its compressed model.

The compressed datasets are a generative traffic model.  This example
fits a TraceModel through the façade (`repro.api.model_for`) from a
20-second capture and synthesizes a 4x-larger trace with the same
statistics — the "synthetic packet trace generator based on the
described methodology" the paper's conclusions propose.

Run:  python examples/trace_scaling.py
(REPRO_EXAMPLES_QUICK=1 shrinks the workload for CI smoke runs.)
"""

import os

from repro import api
from repro.analysis.locality import profile_locality
from repro.analysis.report import format_table
from repro.synth import generate_web_trace
from repro.trace import compute_statistics

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"
DURATION = 6.0 if QUICK else 20.0
SCALES = (1, 2) if QUICK else (1, 2, 4)


def describe(label, trace):
    stats = compute_statistics(trace)
    locality = profile_locality([p.dst_ip for p in trace.packets[:20000]])
    return [
        label,
        stats.packet_count,
        stats.flow_count,
        f"{stats.length_distribution.mean_length():.1f}",
        f"{stats.short_flow_fraction:.1%}",
        f"{locality.hit_fraction_within[64]:.1%}",
    ]


def main() -> None:
    source = generate_web_trace(duration=DURATION, flow_rate=40.0, seed=12)
    model = api.model_for(source)
    source_flows = sum(model.short_usage) + sum(model.long_usage)
    print(
        f"fitted model: {model.template_count()} templates, "
        f"{model.arrival_rate:.1f} flows/s, "
        f"{len(model.addresses)} destinations"
    )

    rows = [describe(f"source ({DURATION:.0f} s)", source)]
    for scale in SCALES:
        synthetic = model.synthesize(flow_count=scale * source_flows, seed=scale)
        rows.append(describe(f"synthetic {scale}x", synthetic))

    print()
    print(
        format_table(
            ["trace", "packets", "flows", "mean_len", "short", "locality@64"],
            rows,
        )
    )
    print()
    print("every synthetic trace keeps the source's flow-length mix and")
    print("destination locality — only the volume changes.")


if __name__ == "__main__":
    main()
