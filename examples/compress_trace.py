#!/usr/bin/env python3
"""Compare all five storage methods on one trace (Figure 1 in miniature).

Writes a TSH file, compresses it with GZIP / Van Jacobson / Peuhkuri
baselines and the proposed flow-clustering method (through the
`repro.open` façade), and prints the size table.

Run:  python examples/compress_trace.py [duration_seconds]
(REPRO_EXAMPLES_QUICK=1 shrinks the workload for CI smoke runs.)
"""

import os
import sys
import tempfile
from pathlib import Path

import repro
from repro import api
from repro.analysis.report import format_table
from repro.baselines import GzipCodec, PeuhkuriCodec, VanJacobsonCodec

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"


def main(duration: float = 20.0) -> None:
    with tempfile.TemporaryDirectory() as workdir:
        tsh_path = Path(workdir) / "trace.tsh"
        fctc_path = Path(workdir) / "trace.fctc"

        generated = api.generate(
            tsh_path, duration=duration, flow_rate=40.0, seed=7
        )
        original_size = generated.size_bytes
        print(f"wrote {tsh_path.name}: {generated.packets} packets, "
              f"{original_size / 1e6:.2f} MB")

        # Open from disk, as a downstream user would; the baselines
        # need the materialized trace, the proposed method does not.
        with repro.open(tsh_path) as store:
            loaded = store.load_trace()
            report = store.compress(fctc_path)

        gzip_size = len(GzipCodec().compress(loaded))
        vj_size = len(VanJacobsonCodec().compress(loaded))
        peuhkuri_size = len(PeuhkuriCodec().compress(loaded))
        proposed_size = report.compressed_bytes

        rows = [
            ["original TSH", original_size, "100.0%", "lossless"],
            ["gzip (deflate)", gzip_size,
             f"{100 * gzip_size / original_size:.1f}%", "lossless"],
            ["van jacobson", vj_size,
             f"{100 * vj_size / original_size:.1f}%", "headers exact"],
            ["peuhkuri", peuhkuri_size,
             f"{100 * peuhkuri_size / original_size:.1f}%", "lossy"],
            ["proposed (flow clustering)", proposed_size,
             f"{100 * proposed_size / original_size:.1f}%",
             "lossy, semantic-preserving"],
        ]
        print()
        print(format_table(["method", "bytes", "ratio", "fidelity"], rows))
        print()
        with repro.open(fctc_path) as store:
            compressed = store.compressed
        print(f"templates: {len(compressed.short_templates)} short, "
              f"{len(compressed.long_templates)} long; "
              f"{len(compressed.addresses)} unique destinations")


if __name__ == "__main__":
    default = 5.0 if QUICK else 20.0
    main(float(sys.argv[1]) if len(sys.argv) > 1 else default)
