#!/usr/bin/env python3
"""Compare all five storage methods on one trace (Figure 1 in miniature).

Writes a TSH file, compresses it with GZIP / Van Jacobson / Peuhkuri /
the proposed flow-clustering method, and prints the size table.

Run:  python examples/compress_trace.py [duration_seconds]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.report import format_table
from repro.baselines import GzipCodec, PeuhkuriCodec, VanJacobsonCodec
from repro.core import compress_to_bytes
from repro.synth import generate_web_trace
from repro.trace import Trace


def main(duration: float = 20.0) -> None:
    trace = generate_web_trace(duration=duration, flow_rate=40.0, seed=7)

    with tempfile.TemporaryDirectory() as workdir:
        tsh_path = Path(workdir) / "trace.tsh"
        original_size = trace.save_tsh(tsh_path)
        print(f"wrote {tsh_path.name}: {len(trace)} packets, "
              f"{original_size / 1e6:.2f} MB")

        # Reload from disk, as a downstream user would.
        loaded = Trace.load_tsh(tsh_path)

        gzip_size = len(GzipCodec().compress(loaded))
        vj_size = len(VanJacobsonCodec().compress(loaded))
        peuhkuri_size = len(PeuhkuriCodec().compress(loaded))
        proposed_bytes, compressed = compress_to_bytes(loaded)

        rows = [
            ["original TSH", original_size, "100.0%", "lossless"],
            ["gzip (deflate)", gzip_size,
             f"{100 * gzip_size / original_size:.1f}%", "lossless"],
            ["van jacobson", vj_size,
             f"{100 * vj_size / original_size:.1f}%", "headers exact"],
            ["peuhkuri", peuhkuri_size,
             f"{100 * peuhkuri_size / original_size:.1f}%", "lossy"],
            ["proposed (flow clustering)", len(proposed_bytes),
             f"{100 * len(proposed_bytes) / original_size:.1f}%",
             "lossy, semantic-preserving"],
        ]
        print()
        print(format_table(["method", "bytes", "ratio", "fidelity"], rows))
        print()
        print(f"templates: {len(compressed.short_templates)} short, "
              f"{len(compressed.long_templates)} long; "
              f"{len(compressed.addresses)} unique destinations")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 20.0)
