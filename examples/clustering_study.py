#!/usr/bin/env python3
"""The section 2.1 flow-diversity study: how few clusters do Web flows need?

Characterizes every flow of a generated trace (the f(p)/V_f mapping),
clusters the vectors with the paper's similarity rule, and reports how
much template reuse the traffic offers — the observation the whole
compressor is built on.

Run:  python examples/clustering_study.py
(REPRO_EXAMPLES_QUICK=1 shrinks the workload for CI smoke runs.)
"""

import os

from repro.analysis.report import format_table
from repro.flows import (
    assemble_flows,
    characterize_flow,
    cluster_vectors,
)
from repro.synth import generate_web_trace

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"
DURATION = 6.0 if QUICK else 30.0


def main() -> None:
    trace = generate_web_trace(duration=DURATION, flow_rate=40.0, seed=99)
    flows = assemble_flows(trace.packets)
    short_flows = [flow for flow in flows if len(flow) <= 50]
    print(f"{len(flows)} flows ({len(short_flows)} short)")

    vectors = [characterize_flow(flow) for flow in short_flows]

    # Show a couple of vectors: handshake(4,16,32), request(37), data...
    sample = vectors[0]
    print(f"example V_f vector (n={len(sample)}): {sample}")
    print()

    rows = []
    for percent in (0.0, 1.0, 2.0, 5.0, 10.0):
        result = cluster_vectors(vectors, percent=percent)
        sizes = result.cluster_sizes()
        rows.append(
            [
                f"{percent:.0f}%",
                result.cluster_count(),
                f"{result.compression_opportunity():.1%}",
                sizes[0] if sizes else 0,
            ]
        )
    print("clustering at different similarity thresholds (paper uses 2%):")
    print(
        format_table(
            ["threshold", "clusters", "template reuse", "largest cluster"],
            rows,
        )
    )
    print()
    result = cluster_vectors(vectors)
    print(
        f"at the paper's 2%: {result.vector_count} flows collapse into "
        f"{result.cluster_count()} clusters — "
        '"in consequence of the huge similarity among Web flows, we can '
        'group a high amount of them into few clusters."'
    )


if __name__ == "__main__":
    main()
