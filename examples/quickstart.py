#!/usr/bin/env python3
"""Quickstart: generate Web traffic, compress it, decompress it, report.

Run:  python examples/quickstart.py
"""

from repro.core import roundtrip
from repro.synth import generate_web_trace
from repro.trace import compute_statistics


def main() -> None:
    # 1. A RedIRIS-like Web trace: 30 seconds, ~40 flows/second.
    trace = generate_web_trace(duration=30.0, flow_rate=40.0, seed=2005)
    print(f"generated {len(trace)} packets "
          f"({trace.stored_size_bytes() / 1e6:.2f} MB as TSH)")

    # 2. The paper's section 3 statistics.
    stats = compute_statistics(trace)
    print()
    for line in stats.summary_lines():
        print(line)

    # 3. Compress + decompress in one call.
    decompressed, report = roundtrip(trace)
    print()
    for line in report.summary_lines():
        print(line)

    # 4. The decompressed trace is a statistical twin, not a byte copy.
    restored = compute_statistics(decompressed)
    print()
    print(f"decompressed packets  : {len(decompressed)}")
    print(f"decompressed flows    : {restored.flow_count}")
    print(
        "mean flow length      : "
        f"{restored.length_distribution.mean_length():.2f} "
        f"(original {stats.length_distribution.mean_length():.2f})"
    )


if __name__ == "__main__":
    main()
