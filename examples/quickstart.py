#!/usr/bin/env python3
"""Quickstart: the `repro.open` façade end to end.

Generates Web traffic, compresses it through a TraceStore session,
replays the container, and prints the reports — every step one façade
call.

Run:  python examples/quickstart.py
(REPRO_EXAMPLES_QUICK=1 shrinks the workload for CI smoke runs.)
"""

import os
import tempfile
from pathlib import Path

import repro
from repro import api

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"
DURATION = 5.0 if QUICK else 30.0


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        tsh = Path(workdir) / "quickstart.tsh"
        fctc = Path(workdir) / "quickstart.fctc"
        restored = Path(workdir) / "restored.tsh"

        # 1. A RedIRIS-like Web trace, written straight to disk.
        generated = api.generate(
            tsh, duration=DURATION, flow_rate=40.0, seed=2005
        )
        print(f"generated {generated.packets} packets "
              f"({generated.size_bytes / 1e6:.2f} MB as TSH)")

        # 2. One session covers stats, compression, and flow queries.
        with repro.open(tsh) as store:
            stats = store.stats()
            print()
            for line in stats.summary_lines():
                print(line)
            report = store.compress(fctc)
        print()
        for line in report.summary_lines():
            print(line)

        # 3. The container session replays a statistical twin.
        with repro.open(fctc) as store:
            flows = sum(1 for _ in store.flows())
            result = store.export(restored)
        with repro.open(restored) as store:
            restored_stats = store.stats()
        print()
        print(f"decompressed packets  : {result.packets}")
        print(f"decompressed flows    : {flows}")
        print(
            "mean flow length      : "
            f"{restored_stats.length_distribution.mean_length():.2f} "
            f"(original {stats.length_distribution.mean_length():.2f})"
        )


if __name__ == "__main__":
    main()
