#!/usr/bin/env python3
"""Study the synthetic workload against the paper's published aggregates.

Generates traces at several seeds, measures the section 3 statistics and
the analytic model ratios on each, and prints the spread — showing the
calibration is robust, not a single lucky seed.

Run:  python examples/synthetic_traffic_study.py
(REPRO_EXAMPLES_QUICK=1 shrinks the workload for CI smoke runs.)
"""

import os

from repro.analysis.report import format_table
from repro.baselines import proposed_model, vj_model
from repro.synth import generate_web_trace
from repro.trace import compute_statistics

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"
DURATION = 8.0 if QUICK else 40.0
SEEDS = 3 if QUICK else 5


def main() -> None:
    rows = []
    for seed in range(1, SEEDS + 1):
        trace = generate_web_trace(duration=DURATION, flow_rate=40.0, seed=seed)
        stats = compute_statistics(trace)
        distribution = stats.length_distribution
        rows.append(
            [
                seed,
                stats.flow_count,
                f"{stats.short_flow_fraction:.1%}",
                f"{stats.short_packet_fraction:.1%}",
                f"{stats.short_byte_fraction:.1%}",
                f"{distribution.mean_length():.1f}",
                f"{vj_model().trace_ratio(distribution):.1%}",
                f"{proposed_model().trace_ratio(distribution):.1%}",
            ]
        )
    print("paper targets: short flows 98%, packets 75%, bytes 80%")
    print()
    print(
        format_table(
            [
                "seed",
                "flows",
                "short",
                "pkts_short",
                "bytes_short",
                "mean_len",
                "vj_model",
                "proposed_model",
            ],
            rows,
        )
    )
    print()
    print("the analytic ratios shift with mean flow length (eq. 6/8 are")
    print("P_n-sensitive); the paper's 30%/3% correspond to mean ≈ 5.7.")


if __name__ == "__main__":
    main()
