#!/usr/bin/env python3
"""Section 6 in miniature: is the decompressed trace good enough for
memory-performance studies?

Runs the Radix-Tree Route benchmark over the original, decompressed
(via the façade's `repro.api.roundtrip`), random-address and
fractal-address traces, then prints the Figure 2 access distribution
and the Figure 3 cache-miss buckets.

Run:  python examples/memory_validation.py
(REPRO_EXAMPLES_QUICK=1 shrinks the workload for CI smoke runs.)
"""

import os

from repro import api
from repro.analysis.compare import kolmogorov_smirnov
from repro.analysis.report import format_table
from repro.memsim import CacheConfig
from repro.memsim.metrics import MISS_RATE_BUCKET_LABELS
from repro.routing import RouteApp
from repro.synth import (
    generate_fracexp_trace,
    generate_web_trace,
    randomize_destinations,
)

QUICK = os.environ.get("REPRO_EXAMPLES_QUICK") == "1"
DURATION = 5.0 if QUICK else 15.0


def main() -> None:
    original = generate_web_trace(duration=DURATION, flow_rate=40.0, seed=33)
    decompressed, report = api.roundtrip(original)
    print(f"compressed to {report.ratio_percent:.2f}% of the TSH size")

    traces = [
        ("original", original),
        ("decompressed", decompressed),
        ("random dsts", randomize_destinations(original, seed=1)),
        ("fracexp", generate_fracexp_trace(len(original), seed=2)),
    ]

    access_samples = {}
    bucket_rows = []
    for name, trace in traces:
        result = RouteApp().run(trace)
        accesses = result.accesses_per_packet()
        access_samples[name] = accesses
        profile = result.profile(CacheConfig())
        bucket_rows.append(
            [name]
            + [f"{share:.1f}%" for share in profile.miss_rate_buckets()]
            + [f"{profile.overall_miss_rate():.1%}"]
        )
        print(f"{name:>13}: mean {sum(accesses) / len(accesses):6.1f} "
              f"accesses/packet")

    print()
    print("Figure 3 — traffic share per cache-miss-rate bucket")
    print(
        format_table(
            ["trace"] + list(MISS_RATE_BUCKET_LABELS) + ["overall"],
            bucket_rows,
        )
    )

    print()
    print("KS distance of per-packet access distribution vs original:")
    base = access_samples["original"]
    for name, samples in access_samples.items():
        if name == "original":
            continue
        print(f"  {name:>13}: {kolmogorov_smirnov(base, samples):.3f}")
    print()
    print("The decompressed trace should be far closer to the original")
    print("than either control — that is the paper's validation claim.")


if __name__ == "__main__":
    main()
