"""Benchmarks: sustained ingest rate of the serve daemon.

Three measurements, each asserted against the conservative floors in
``BENCH_ingest.json`` (an order of magnitude under the rates measured
at authoring time, so only a real regression — ingest falling back to
per-packet Python, an accidental sync stall in the event loop — trips
them):

* **unix socket** — end to end: a client thread streams length-framed
  TSH over a unix socket into a live daemon sealing a real archive.
* **tail** — the same capture ingested by following a growing file.
* **feeder only** — SegmentFeeder.feed without the daemon around it,
  the compression-bound ceiling the socket path should stay within
  sight of.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.api import serve
from repro.api.options import ArchiveOptions, Options, ServeOptions
from repro.archive.writer import EpochRef, SegmentFeeder
from repro.synth import generate_web_trace
from repro.trace.framing import END_OF_STREAM, frame
from repro.trace.tsh import read_tsh_bytes

import socket

BASELINE = json.loads(
    (Path(__file__).resolve().parent / "BENCH_ingest.json").read_text()
)
SEGMENT_PACKETS = 4096


@pytest.fixture(scope="module")
def ingest_data():
    workload = BASELINE["workload"]
    trace = generate_web_trace(
        duration=workload["duration"],
        flow_rate=workload["flow_rate"],
        seed=workload["seed"],
    )
    return trace.to_tsh_bytes()


def _options(**serve_kwargs) -> Options:
    return Options(
        archive=ArchiveOptions(
            segment_packets=SEGMENT_PACKETS, segment_span=None
        ),
        serve=ServeOptions(**serve_kwargs),
    )


def _rate(label: str, packets: int, elapsed: float) -> float:
    rate = packets / elapsed
    print(f"\n{label}: {packets} packets in {elapsed:.3f}s = {rate:,.0f} pkt/s")
    return rate


class TestIngestThroughput:
    def test_unix_socket_sustained_rate(self, tmp_path, ingest_data):
        packets = len(ingest_data) // 44
        sock = str(tmp_path / "bench.sock")

        def send():
            deadline = time.monotonic() + 10
            while not Path(sock).exists():
                if time.monotonic() > deadline:
                    raise TimeoutError(sock)
                time.sleep(0.005)
            client = socket.socket(socket.AF_UNIX)
            try:
                client.connect(sock)
                step = 1024 * 44
                for start in range(0, len(ingest_data), step):
                    client.sendall(frame(ingest_data[start : start + step]))
                client.sendall(END_OF_STREAM)
            finally:
                client.close()

        sender = threading.Thread(target=send, daemon=True)
        start = time.perf_counter()
        sender.start()
        report = serve(
            str(tmp_path / "bench.fctca"),
            _options(sources=(f"unix:{sock}",), stop_after_packets=packets),
        )
        elapsed = time.perf_counter() - start
        sender.join(timeout=5)
        assert report.packets == packets
        assert _rate("serve/unix", packets, elapsed) >= BASELINE[
            "min_packets_per_sec"
        ]["unix_socket"]

    def test_tail_sustained_rate(self, tmp_path, ingest_data):
        packets = len(ingest_data) // 44
        capture = tmp_path / "bench.tsh"
        capture.write_bytes(ingest_data)
        start = time.perf_counter()
        report = serve(
            str(tmp_path / "tail.fctca"),
            _options(
                sources=(f"tail:{capture}",),
                stop_after_packets=packets,
                tail_poll_seconds=0.01,
            ),
        )
        elapsed = time.perf_counter() - start
        assert report.packets == packets
        assert _rate("serve/tail", packets, elapsed) >= BASELINE[
            "min_packets_per_sec"
        ]["tail"]

    def test_feeder_only_rate(self, ingest_data):
        packets = read_tsh_bytes(ingest_data)
        sealed = []
        feeder = SegmentFeeder(
            sealed.append,
            epoch=EpochRef(),
            segment_packets=SEGMENT_PACKETS,
            segment_span=None,
        )
        start = time.perf_counter()
        for offset in range(0, len(packets), 1024):
            feeder.feed(packets[offset : offset + 1024])
        feeder.close()
        elapsed = time.perf_counter() - start
        assert sum(trace.packet_count() for trace in sealed) == len(packets)
        assert _rate("feeder", len(packets), elapsed) >= BASELINE[
            "min_packets_per_sec"
        ]["feeder_only"]
