"""E5 / Figure 3 — per-packet cache-miss-rate buckets."""

import pytest

from repro.experiments import figure3
from repro.memsim import CacheConfig
from repro.routing import RouteApp


@pytest.mark.benchmark(group="figure3")
def test_cache_replay_throughput(benchmark, bench_trace):
    run_result = RouteApp().run(bench_trace)

    def replay():
        return run_result.profile(CacheConfig())

    profile = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert len(profile) == len(bench_trace)
    assert sum(profile.miss_rate_buckets()) == pytest.approx(100.0)


@pytest.mark.benchmark(group="figure3")
def test_regenerate_figure3(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: figure3.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
