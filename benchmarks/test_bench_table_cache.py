"""The backend-table workload cache must never serve stale parameters.

`benchmarks/backend_table.py` caches its generated TSH workloads between
runs.  The cache is keyed on the generator parameters themselves, so a
changed duration/rate/seed — or a brand-new knob — always misses, and a
regeneration deletes same-name files written under older keys.  These
tests pin that contract; without it a parameter tweak would silently
re-measure last month's trace.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from backend_table import (  # noqa: E402
    WORKLOADS,
    load_workload,
    workload_digest,
    workload_path,
)


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
    return tmp_path


PARAMS = {"duration": 0.5, "flow_rate": 20.0, "seed": 9}


def test_digest_covers_every_parameter():
    base = workload_digest("web", PARAMS)
    assert workload_digest("web", {**PARAMS, "seed": 10}) != base
    assert workload_digest("web", {**PARAMS, "duration": 0.6}) != base
    assert workload_digest("web", {**PARAMS, "new_knob": 1}) != base
    assert workload_digest("p2p", PARAMS) != base
    # ...but not dict ordering: the digest is over sorted JSON.
    reordered = dict(reversed(list(PARAMS.items())))
    assert workload_digest("web", reordered) == base


def test_cache_roundtrip_is_deterministic(cache):
    first = load_workload("web", "web", PARAMS)
    assert workload_path("web", "web", PARAMS).exists()
    second = load_workload("web", "web", PARAMS)
    assert second.packets == first.packets


def test_changed_parameters_invalidate_stale_file(cache):
    load_workload("web", "web", PARAMS)
    stale = workload_path("web", "web", PARAMS)
    assert stale.exists()

    changed = {**PARAMS, "seed": 10}
    load_workload("web", "web", changed)
    assert workload_path("web", "web", changed).exists()
    assert not stale.exists(), "stale same-name workload must be removed"


def test_stale_file_under_same_name_is_not_served(cache):
    """Even a hand-planted wrong-key file cannot be picked up."""
    planted = cache / "web-deadbeefdeadbeef.tsh"
    planted.write_bytes(b"\x00" * 44)
    trace = load_workload("web", "web", PARAMS)
    assert len(trace) > 1
    assert not planted.exists()


def test_declared_workloads_have_distinct_keys():
    paths = {workload_path(*w) for w in WORKLOADS}
    assert len(paths) == len(WORKLOADS)
