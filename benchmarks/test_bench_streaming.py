"""Benchmarks: batch vs. streaming vs. parallel compression.

Two claims are checked, mirroring the streaming engine's contract:

* **Bounded memory** — the streaming path's peak allocation is bounded by
  the active-flow working set plus the compressed datasets, so it grows
  sub-linearly in trace length while the batch path (which materializes
  every packet) grows linearly.
* **Parallel throughput** — flow-hash sharding across processes beats the
  batch wall clock when more than one core is available; the strict
  assertion is gated on the visible CPU count so single-core CI stays
  green.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from repro.core.compressor import compress_trace
from repro.core.streaming import compress_tsh_file, compress_tsh_file_parallel
from repro.synth import generate_web_trace
from repro.trace.trace import Trace

SMALL_DURATION = 8.0
LARGE_DURATION = 32.0
BENCH_RATE = 40.0
BENCH_SEED = 1
STREAM_CHUNK = 1024


@pytest.fixture(scope="module")
def small_tsh(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-stream") / "small.tsh"
    generate_web_trace(
        duration=SMALL_DURATION, flow_rate=BENCH_RATE, seed=BENCH_SEED
    ).save_tsh(path)
    return path


@pytest.fixture(scope="module")
def large_tsh(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-stream") / "large.tsh"
    generate_web_trace(
        duration=LARGE_DURATION, flow_rate=BENCH_RATE, seed=BENCH_SEED
    ).save_tsh(path)
    return path


def _batch_peak(path) -> int:
    tracemalloc.start()
    trace = Trace.load_tsh(path)
    compress_trace(trace)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _stream_peak(path) -> int:
    tracemalloc.start()
    compress_tsh_file(path, chunk_size=STREAM_CHUNK)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


class TestPeakMemory:
    def test_streaming_memory_is_bounded(self, small_tsh, large_tsh):
        small_packets = small_tsh.stat().st_size // 44
        large_packets = large_tsh.stat().st_size // 44
        size_growth = large_packets / small_packets

        batch_small = _batch_peak(small_tsh)
        batch_large = _batch_peak(large_tsh)
        stream_small = _stream_peak(small_tsh)
        stream_large = _stream_peak(large_tsh)
        stream_growth = stream_large / stream_small

        print(
            f"\npackets {small_packets} -> {large_packets} (x{size_growth:.1f}) | "
            f"batch peak {batch_small / 1e6:.2f} -> {batch_large / 1e6:.2f} MB | "
            f"stream peak {stream_small / 1e6:.2f} -> {stream_large / 1e6:.2f} MB "
            f"(x{stream_growth:.2f})"
        )

        # Streaming stays well under the materializing path...
        assert stream_large < batch_large / 2
        # ...and its peak grows sub-linearly in trace length (measured
        # ~1.4x for a ~3.7x longer trace; 70% of linear leaves headroom).
        assert stream_growth < 0.7 * size_growth


@pytest.mark.benchmark(group="streaming")
class TestThroughput:
    def test_batch(self, benchmark, large_tsh):
        compressed = benchmark.pedantic(
            lambda: compress_trace(Trace.load_tsh(large_tsh)),
            rounds=3,
            iterations=1,
        )
        assert compressed.flow_count() > 0

    def test_stream(self, benchmark, large_tsh):
        compressor = benchmark.pedantic(
            lambda: compress_tsh_file(large_tsh, chunk_size=STREAM_CHUNK),
            rounds=3,
            iterations=1,
        )
        assert compressor.output.flow_count() > 0

    def test_parallel_two_workers(self, benchmark, large_tsh):
        compressed = benchmark.pedantic(
            lambda: compress_tsh_file_parallel(large_tsh, 2),
            rounds=3,
            iterations=1,
        )
        assert compressed.flow_count() > 0


class TestParallelSpeedup:
    @staticmethod
    def _best_of_two(run):
        timings = []
        result = None
        for _ in range(2):
            start = time.perf_counter()
            result = run()
            timings.append(time.perf_counter() - start)
        return result, min(timings)

    def test_parallel_beats_batch_on_multicore(self, large_tsh):
        batch, batch_seconds = self._best_of_two(
            lambda: compress_trace(Trace.load_tsh(large_tsh))
        )
        parallel, parallel_seconds = self._best_of_two(
            lambda: compress_tsh_file_parallel(large_tsh, 2)
        )

        cpus = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count() or 1
        )
        print(
            f"\nbatch {batch_seconds:.2f}s | parallel(2) {parallel_seconds:.2f}s | "
            f"speedup x{batch_seconds / parallel_seconds:.2f} | cpus {cpus}"
        )
        assert parallel.flow_count() == batch.flow_count()
        if cpus >= 4:
            # Genuinely parallel hardware: the pool must win.
            assert parallel_seconds < batch_seconds
        else:
            # 1-3 cores (laptops, shared CI runners): pool spawn and the
            # double file read make the race a coin flip at this workload
            # size, so only guard against pathological overhead.
            assert parallel_seconds < batch_seconds * 5


class TestColumnarSpeedup:
    """The vectorized engine's throughput pin: >= 3x over scalar.

    Measured ~8.6x on this workload (see benchmarks/BENCH_streaming.json
    for the smoke baseline); 3x leaves room for slow CI runners while
    still failing loudly if the hot path ever falls back to per-packet
    Python.  Identity is asserted on the same run — a fast-but-wrong
    engine must not pass.
    """

    @staticmethod
    def _best_of(run, rounds=3):
        timings = []
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = run()
            timings.append(time.perf_counter() - start)
        return result, min(timings)

    def test_columnar_at_least_3x_scalar(self, large_tsh):
        pytest.importorskip("numpy")
        from repro.core.codec import serialize_compressed

        scalar, scalar_seconds = self._best_of(
            lambda: compress_tsh_file(
                large_tsh, chunk_size=STREAM_CHUNK, engine="scalar"
            )
        )
        columnar, columnar_seconds = self._best_of(
            lambda: compress_tsh_file(
                large_tsh, chunk_size=STREAM_CHUNK, engine="columnar"
            )
        )

        packets = large_tsh.stat().st_size // 44
        speedup = scalar_seconds / columnar_seconds
        print(
            f"\n{packets} packets | scalar {scalar_seconds:.3f}s "
            f"({packets / scalar_seconds:,.0f} pps) | columnar "
            f"{columnar_seconds:.3f}s ({packets / columnar_seconds:,.0f} pps) "
            f"| speedup x{speedup:.2f}"
        )
        assert serialize_compressed(columnar.output) == serialize_compressed(
            scalar.output
        )
        assert speedup >= 3.0
