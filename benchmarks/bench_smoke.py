#!/usr/bin/env python
"""CI smoke benchmark: columnar must stay faster than scalar,
and metrics must stay near-free.

Runs the streaming compressor over a small generated workload with both
engines, checks byte identity, and fails (exit 1) if the columnar
speedup drops below the floor recorded in ``BENCH_streaming.json``.
A second guard times the same workload with the :mod:`repro.obs`
registry enabled versus disabled and fails when the enabled run is more
than ``metrics_max_overhead`` slower — the instrumentation's "near-zero
overhead" claim, enforced.  Pure stdlib + the library itself, so the CI
job needs no test deps::

    PYTHONPATH=src python benchmarks/bench_smoke.py

Skips the speedup floor (exit 0, with a message) when numpy is
unavailable — the fallback backend is intentionally not faster than
scalar, only compatible.  The metrics-overhead guard runs either way.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.codec import serialize_compressed
from repro.core.streaming import compress_tsh_file
from repro.net.columns import numpy_or_none
from repro.obs import MetricsRegistry, scoped
from repro.synth import generate_web_trace

BASELINE = Path(__file__).resolve().parent / "BENCH_streaming.json"
ROUNDS = 3
OVERHEAD_ROUNDS = 5


def _best_of(run, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return result, best


def _check_metrics_overhead(path, chunk_size, max_overhead) -> list[str]:
    """Enabled-vs-disabled streaming throughput, best-of-N each way.

    The disabled run scopes a disabled registry (what ``REPRO_NO_METRICS=1``
    does process-wide); the enabled run scopes a fresh live one.  Scalar
    engine on purpose: it is the slower, pure-Python hot path, where any
    per-chunk instrumentation cost is *largest* relative to useful work.
    """

    def disabled():
        with scoped(None):
            return compress_tsh_file(path, chunk_size=chunk_size, engine="scalar")

    def enabled():
        with scoped(MetricsRegistry()):
            return compress_tsh_file(path, chunk_size=chunk_size, engine="scalar")

    _, off_seconds = _best_of(disabled, OVERHEAD_ROUNDS)
    _, on_seconds = _best_of(enabled, OVERHEAD_ROUNDS)
    overhead = on_seconds / off_seconds - 1.0
    print(
        f"bench-smoke: metrics overhead {overhead * 100.0:+.2f}% "
        f"(disabled {off_seconds * 1000.0:.1f} ms, enabled "
        f"{on_seconds * 1000.0:.1f} ms, cap {max_overhead * 100.0:.0f}%)"
    )
    if overhead > max_overhead:
        return [
            f"bench-smoke: metrics-enabled run is {overhead * 100.0:.2f}% "
            f"slower than disabled; cap is {max_overhead * 100.0:.0f}% "
            f"in {BASELINE.name}"
        ]
    return []


def main() -> int:
    baseline = json.loads(BASELINE.read_text())
    workload = baseline["workload"]
    chunk_size = baseline["chunk_size"]
    floor = baseline["columnar_min_speedup"]
    max_overhead = baseline["metrics_max_overhead"]

    trace = generate_web_trace(
        duration=workload["duration"],
        flow_rate=workload["flow_rate"],
        seed=workload["seed"],
    )
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.tsh"
        trace.save_tsh(path)
        errors += _check_metrics_overhead(path, chunk_size, max_overhead)
        if numpy_or_none() is None:
            print(
                "bench-smoke: numpy unavailable, columnar == scalar; "
                "skipping the speedup floor"
            )
            for error in errors:
                print(error, file=sys.stderr)
            return 1 if errors else 0
        scalar, scalar_seconds = _best_of(
            lambda: compress_tsh_file(path, chunk_size=chunk_size, engine="scalar")
        )
        columnar, columnar_seconds = _best_of(
            lambda: compress_tsh_file(
                path, chunk_size=chunk_size, engine="columnar"
            )
        )

    packets = len(trace)
    speedup = scalar_seconds / columnar_seconds
    print(
        f"bench-smoke: {packets} packets | scalar "
        f"{packets / scalar_seconds:,.0f} pps | columnar "
        f"{packets / columnar_seconds:,.0f} pps | speedup x{speedup:.2f} "
        f"(floor x{floor})"
    )

    if serialize_compressed(columnar.output) != serialize_compressed(scalar.output):
        errors.append("bench-smoke: engines disagree on output bytes")
    if speedup < floor:
        errors.append(
            f"bench-smoke: columnar speedup x{speedup:.2f} fell below the "
            f"x{floor} floor in {BASELINE.name}"
        )
    for error in errors:
        print(error, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
