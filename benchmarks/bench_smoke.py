#!/usr/bin/env python
"""CI smoke benchmark: columnar must stay faster than scalar.

Runs the streaming compressor over a small generated workload with both
engines, checks byte identity, and fails (exit 1) if the columnar
speedup drops below the floor recorded in ``BENCH_streaming.json``.
Pure stdlib + the library itself, so the CI job needs no test deps::

    PYTHONPATH=src python benchmarks/bench_smoke.py

Skips (exit 0, with a message) when numpy is unavailable — the fallback
backend is intentionally not faster than scalar, only compatible.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.codec import serialize_compressed
from repro.core.streaming import compress_tsh_file
from repro.net.columns import numpy_or_none
from repro.synth import generate_web_trace

BASELINE = Path(__file__).resolve().parent / "BENCH_streaming.json"
ROUNDS = 3


def _best_of(run):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return result, best


def main() -> int:
    if numpy_or_none() is None:
        print("bench-smoke: numpy unavailable, columnar == scalar; skipping")
        return 0

    baseline = json.loads(BASELINE.read_text())
    workload = baseline["workload"]
    chunk_size = baseline["chunk_size"]
    floor = baseline["columnar_min_speedup"]

    trace = generate_web_trace(
        duration=workload["duration"],
        flow_rate=workload["flow_rate"],
        seed=workload["seed"],
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.tsh"
        trace.save_tsh(path)
        scalar, scalar_seconds = _best_of(
            lambda: compress_tsh_file(path, chunk_size=chunk_size, engine="scalar")
        )
        columnar, columnar_seconds = _best_of(
            lambda: compress_tsh_file(
                path, chunk_size=chunk_size, engine="columnar"
            )
        )

    packets = len(trace)
    speedup = scalar_seconds / columnar_seconds
    print(
        f"bench-smoke: {packets} packets | scalar "
        f"{packets / scalar_seconds:,.0f} pps | columnar "
        f"{packets / columnar_seconds:,.0f} pps | speedup x{speedup:.2f} "
        f"(floor x{floor})"
    )

    if serialize_compressed(columnar.output) != serialize_compressed(scalar.output):
        print("bench-smoke: engines disagree on output bytes", file=sys.stderr)
        return 1
    if speedup < floor:
        print(
            f"bench-smoke: columnar speedup x{speedup:.2f} fell below the "
            f"x{floor} floor in {BASELINE.name}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
