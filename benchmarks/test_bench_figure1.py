"""E1 / Figure 1 — file-size comparison across the five storage methods.

``pytest benchmarks/test_bench_figure1.py --benchmark-only -s`` times each
compressor on the same trace and regenerates the Figure 1 table rows.
"""

import pytest

from repro.baselines import GzipCodec, PeuhkuriCodec, VanJacobsonCodec
from repro.core import compress_to_bytes
from repro.experiments import figure1


@pytest.mark.benchmark(group="figure1-compressors")
class TestCompressorThroughput:
    def test_gzip(self, benchmark, bench_trace):
        codec = GzipCodec()
        size = benchmark(lambda: len(codec.compress(bench_trace)))
        assert 0.30 < size / bench_trace.stored_size_bytes() < 0.65

    def test_van_jacobson(self, benchmark, bench_trace):
        codec = VanJacobsonCodec()
        size = benchmark.pedantic(
            lambda: len(codec.compress(bench_trace)), rounds=3, iterations=1
        )
        assert 0.20 < size / bench_trace.stored_size_bytes() < 0.50

    def test_peuhkuri(self, benchmark, bench_trace):
        codec = PeuhkuriCodec()
        size = benchmark.pedantic(
            lambda: len(codec.compress(bench_trace)), rounds=3, iterations=1
        )
        assert 0.10 < size / bench_trace.stored_size_bytes() < 0.22

    def test_proposed(self, benchmark, bench_trace):
        size = benchmark.pedantic(
            lambda: len(compress_to_bytes(bench_trace)[0]),
            rounds=3,
            iterations=1,
        )
        assert size / bench_trace.stored_size_bytes() < 0.06


@pytest.mark.benchmark(group="figure1-table")
def test_regenerate_figure1(benchmark, bench_config, capsys):
    """Regenerate the full Figure 1 series (the paper's plot data)."""
    result = benchmark.pedantic(
        lambda: figure1.run(bench_config, sample_count=5),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
