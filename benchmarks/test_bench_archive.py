"""Benchmarks: indexed archive queries vs. full-archive decompression.

The archive's reason to exist is that a selective query should not pay
for the whole file.  Two claims are checked:

* **Fewer bytes** — a time-range + destination query decodes only the
  segments whose index entries can match; the bytes decoded must be a
  small fraction of the archive's segment bytes.
* **Faster** — the same query must beat decoding every segment and
  filtering after the fact, by enough margin that timer noise cannot
  flip the result.
"""

from __future__ import annotations

import time

import pytest

from repro.archive import ArchiveReader, build_archive
from repro.query import (
    DestinationPrefix,
    MatchAll,
    QueryEngine,
    TimeRange,
    flow_summaries,
)
from repro.synth import generate_web_trace

BENCH_DURATION = 64.0
BENCH_RATE = 40.0
BENCH_SEED = 1
SEGMENT_SPAN = 4.0  # -> ~16 segments over the 64 s trace


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-archive") / "bench.fctca"
    trace = generate_web_trace(
        duration=BENCH_DURATION, flow_rate=BENCH_RATE, seed=BENCH_SEED
    )
    entries = build_archive(
        path, trace.packets, segment_span=SEGMENT_SPAN, segment_packets=10**9
    )
    assert len(entries) >= 8, "benchmark needs a multi-segment archive"
    return path


def _predicate():
    # A two-segment time window, narrowed further by destination prefix.
    return TimeRange(20.0, 27.0) & DestinationPrefix("128.0.0.0/2")


def _indexed_query(path):
    with ArchiveReader(path) as reader:
        result = QueryEngine(reader).run(_predicate())
    return result


def _full_decode_query(path):
    """The archive-oblivious baseline: decode everything, filter after."""
    predicate = _predicate()
    with ArchiveReader(path) as reader:
        flows = [
            flow
            for index, segment in reader.iter_segments()
            for flow in flow_summaries(index, segment)
            if predicate.match_flow(flow)
        ]
        return flows, reader.bytes_decoded


class TestIndexedQuerySavesWork:
    def test_decodes_fewer_bytes_than_full_decompression(self, archive_path):
        result = _indexed_query(archive_path)
        full_flows, full_bytes = _full_decode_query(archive_path)
        assert result.flows == full_flows  # same answer...
        assert result.stats.flows_matched > 0
        # ...for a fraction of the decode work.
        assert result.stats.segments_decoded < result.stats.segments_total / 2
        assert result.stats.bytes_decoded < full_bytes / 2
        print(
            f"\nindexed: {result.stats.bytes_decoded}/{full_bytes} B decoded "
            f"({result.stats.segments_decoded}/{result.stats.segments_total} "
            f"segments)"
        )

    def test_indexed_query_is_faster(self, archive_path):
        def best_of(worker, rounds: int = 5) -> float:
            samples = []
            for _ in range(rounds):
                start = time.perf_counter()
                worker(archive_path)
                samples.append(time.perf_counter() - start)
            return min(samples)

        indexed = best_of(_indexed_query)
        full = best_of(_full_decode_query)
        print(f"\nindexed {indexed * 1e3:.2f} ms vs full {full * 1e3:.2f} ms")
        # Decoding ~2/16 segments should win by far more than 1.5x; the
        # loose bound keeps noisy CI machines green.
        assert indexed < full / 1.5


@pytest.mark.benchmark(group="archive")
class TestArchiveThroughput:
    def test_indexed_query(self, benchmark, archive_path):
        result = benchmark(_indexed_query, archive_path)
        assert result.stats.flows_matched > 0

    def test_full_scan(self, benchmark, archive_path):
        def full_scan():
            with ArchiveReader(archive_path) as reader:
                return QueryEngine(reader).run(MatchAll())

        result = benchmark(full_scan)
        assert result.stats.segments_decoded == result.stats.segments_total
