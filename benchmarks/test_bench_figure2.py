"""E4 / Figure 2 — memory accesses per packet through the radix tree."""

import pytest

from repro.experiments import figure2
from repro.routing import RouteApp


@pytest.mark.benchmark(group="figure2")
class TestRouteRuns:
    def test_route_original(self, benchmark, bench_trace):
        result = benchmark.pedantic(
            lambda: RouteApp().run(bench_trace), rounds=2, iterations=1
        )
        assert result.packets_processed == len(bench_trace)

    def test_route_decompressed(self, benchmark, bench_decompressed):
        result = benchmark.pedantic(
            lambda: RouteApp().run(bench_decompressed), rounds=2, iterations=1
        )
        assert result.packets_processed == len(bench_decompressed)


@pytest.mark.benchmark(group="figure2")
def test_regenerate_figure2(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: figure2.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
