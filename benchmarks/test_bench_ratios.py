"""E3 / section 5 — the equation 5-8 ratio table."""

import pytest

from repro.baselines import proposed_model, vj_model
from repro.baselines.models import paper_reference_distribution
from repro.experiments import ratios


@pytest.mark.benchmark(group="ratios")
def test_analytic_models_speed(benchmark):
    reference = paper_reference_distribution()
    vj = vj_model()
    proposed = proposed_model()

    def fold():
        return vj.trace_ratio(reference), proposed.trace_ratio(reference)

    vj_ratio, proposed_ratio = benchmark(fold)
    assert vj_ratio == pytest.approx(0.30, abs=0.02)
    assert proposed_ratio == pytest.approx(0.03, abs=0.01)


@pytest.mark.benchmark(group="ratios")
def test_regenerate_ratio_table(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: ratios.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
