"""Benchmarks: batch vs. streaming decompression.

Two claims are checked, mirroring the replay engine's contract:

* **Flat memory** — the streaming decompressor's peak allocation is
  bounded by the concurrent-flow fan-out plus the compressed datasets,
  so it grows sub-linearly in trace length while the batch path (which
  materializes and sorts every synthetic packet) grows linearly.
* **Byte identity at speed** — the heap merge must not give back the
  batch path's throughput: the streamed packet sequence is identical
  and the wall clock comparable (the benchmark records both).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.archive import ArchiveReader, build_archive
from repro.core.compressor import compress_trace
from repro.core.decompressor import decompress_trace
from repro.core.replay import StreamingDecompressor
from repro.synth import generate_web_trace

SMALL_DURATION = 8.0
LARGE_DURATION = 32.0
BENCH_RATE = 40.0
BENCH_SEED = 1


def _compressed_for(duration):
    trace = generate_web_trace(
        duration=duration, flow_rate=BENCH_RATE, seed=BENCH_SEED
    )
    return compress_trace(trace)


@pytest.fixture(scope="module")
def small_compressed():
    return _compressed_for(SMALL_DURATION)


@pytest.fixture(scope="module")
def large_compressed():
    return _compressed_for(LARGE_DURATION)


@pytest.fixture(scope="module")
def large_archive(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-replay") / "large.fctca"
    trace = generate_web_trace(
        duration=LARGE_DURATION, flow_rate=BENCH_RATE, seed=BENCH_SEED
    )
    build_archive(path, iter(trace.packets), segment_span=4.0)
    return path


def _batch_peak(compressed) -> int:
    tracemalloc.start()
    decompress_trace(compressed)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _stream_peak(compressed) -> tuple[int, int]:
    engine = StreamingDecompressor(compressed)
    tracemalloc.start()
    count = sum(1 for _ in engine.packets())
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, count


class TestPeakMemory:
    def test_streaming_memory_is_flat(self, small_compressed, large_compressed):
        small_packets = small_compressed.packet_count()
        large_packets = large_compressed.packet_count()
        size_growth = large_packets / small_packets

        batch_small = _batch_peak(small_compressed)
        batch_large = _batch_peak(large_compressed)
        stream_small, count_small = _stream_peak(small_compressed)
        stream_large, count_large = _stream_peak(large_compressed)
        assert (count_small, count_large) == (small_packets, large_packets)
        stream_growth = stream_large / stream_small

        print(
            f"\npackets {small_packets} -> {large_packets} (x{size_growth:.1f}) | "
            f"batch peak {batch_small / 1e6:.2f} -> {batch_large / 1e6:.2f} MB | "
            f"stream peak {stream_small / 1e6:.2f} -> {stream_large / 1e6:.2f} MB "
            f"(x{stream_growth:.2f})"
        )

        # Streaming stays well under the materializing path...
        assert stream_large < batch_large / 2
        # ...and its peak grows sub-linearly in trace length (the heap
        # holds concurrent flows, not the trace).
        assert stream_growth < 0.7 * size_growth


@pytest.mark.benchmark(group="decompress")
class TestThroughput:
    def test_batch(self, benchmark, large_compressed):
        trace = benchmark.pedantic(
            lambda: decompress_trace(large_compressed), rounds=3, iterations=1
        )
        assert len(trace) == large_compressed.packet_count()

    def test_stream(self, benchmark, large_compressed):
        count = benchmark.pedantic(
            lambda: sum(1 for _ in StreamingDecompressor(large_compressed)),
            rounds=3,
            iterations=1,
        )
        assert count == large_compressed.packet_count()

    def test_archive_replay(self, benchmark, large_archive):
        def replay():
            with ArchiveReader(large_archive) as reader:
                return sum(1 for _ in reader.iter_packets())

        count = benchmark.pedantic(replay, rounds=3, iterations=1)
        assert count > 0
