"""Benchmarks: backend codecs — ratio claims and serialize/decode cost.

Two things are pinned:

* **Ratio** — the entropy-coding backends must beat ``raw`` on every
  workload here (the flow-clustering stage removes structure, not
  entropy: time-seq timestamps and template bytes still compress), and
  ``auto``'s per-section choice must be at least as small as the best
  uniform backend.
* **Throughput** — serialize/decode timings per backend, so a future
  regression in the tagged-section framing shows up as a number, not a
  feeling.  ``benchmarks/backend_table.py`` renders the full sweep that
  docs/CLI.md's table is generated from.
"""

from __future__ import annotations

import pytest

from repro.core.backends import AUTO
from repro.core.codec import (
    deserialize_compressed,
    serialize_compressed,
    serialize_compressed_v1,
)
from repro.core.compressor import compress_trace
from repro.trace.tsh import tsh_file_size

UNIFORM_BACKENDS = ("raw", "zlib", "bz2", "lzma")


@pytest.fixture(scope="module")
def bench_compressed(bench_trace):
    return compress_trace(bench_trace)


@pytest.fixture(scope="module")
def sizes(bench_compressed):
    return {
        backend: len(serialize_compressed(bench_compressed, backend=backend))
        for backend in (*UNIFORM_BACKENDS, AUTO)
    }


class TestRatios:
    def test_entropy_backends_beat_raw(self, sizes):
        for backend in ("zlib", "bz2", "lzma"):
            assert sizes[backend] < sizes["raw"], backend

    def test_auto_at_most_best_uniform(self, sizes):
        assert sizes[AUTO] <= min(sizes[b] for b in UNIFORM_BACKENDS)

    def test_backended_container_still_a_few_percent_of_tsh(
        self, bench_trace, sizes
    ):
        original = tsh_file_size(len(bench_trace))
        # The paper's raw container is ~3 %; the backends push well below.
        assert sizes["raw"] / original < 0.06
        assert sizes["zlib"] / original < 0.03

    def test_roundtrip_content_identical(self, bench_compressed):
        canon = serialize_compressed_v1(bench_compressed)
        for backend in (*UNIFORM_BACKENDS, AUTO):
            data = serialize_compressed(bench_compressed, backend=backend)
            assert serialize_compressed_v1(deserialize_compressed(data)) == canon


@pytest.mark.benchmark(group="backend-serialize")
@pytest.mark.parametrize("backend", [*UNIFORM_BACKENDS, AUTO])
def test_serialize(benchmark, bench_compressed, backend):
    benchmark(serialize_compressed, bench_compressed, backend=backend)


@pytest.mark.benchmark(group="backend-decode")
@pytest.mark.parametrize("backend", UNIFORM_BACKENDS)
def test_decode(benchmark, bench_compressed, backend):
    data = serialize_compressed(bench_compressed, backend=backend)
    benchmark(deserialize_compressed, data)
