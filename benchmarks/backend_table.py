#!/usr/bin/env python
"""Backend ratio/throughput sweep — emits the docs/CLI.md table.

Runs the flow-clustering compressor once per workload, then serializes
the result through every registered backend (plus ``auto``), measuring
stored size, encode time and decode time.  Output is a GitHub-flavoured
markdown table; regenerate the table in ``docs/CLI.md`` with::

    PYTHONPATH=src python benchmarks/backend_table.py

Pure stdlib — runnable in CI without test dependencies.  Ratios are
deterministic per workload seed; throughputs are machine-dependent and
documented as indicative.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.core.backends import AUTO, backend_names
from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.compressor import compress_trace
from repro.synth import generate_fracexp_trace, generate_p2p_trace, generate_web_trace
from repro.trace.trace import Trace
from repro.trace.tsh import tsh_file_size

_GENERATORS = {
    "web": generate_web_trace,
    "p2p": generate_p2p_trace,
    "fracexp": generate_fracexp_trace,
}

# Workloads as (name, generator, params) so the cache key below can see
# every knob that shapes the trace — a lambda would hide them.
WORKLOADS = (
    ("web", "web", {"duration": 60.0, "flow_rate": 40.0, "seed": 1}),
    ("p2p", "p2p", {"duration": 60.0, "session_rate": 8.0, "seed": 77}),
    ("fracexp", "fracexp", {"packet_count": 20_000, "seed": 4242}),
)


def cache_dir() -> Path:
    """Where generated workload TSH files are kept between runs.

    Defaults to ``benchmarks/.cache``; override with ``REPRO_BENCH_CACHE``
    (CI points it at a per-job scratch directory).
    """
    return Path(
        os.environ.get("REPRO_BENCH_CACHE", Path(__file__).parent / ".cache")
    )


def workload_digest(generator: str, params: dict) -> str:
    """A cache key covering everything that shapes the generated trace.

    The digest is over the generator name and the *sorted* JSON of its
    parameters, so any change to duration/rate/seed (or adding a new
    knob) yields a new key — the cache can never serve a trace built
    from different parameters under the same name.
    """
    payload = json.dumps(
        {"generator": generator, "params": params}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def workload_path(name: str, generator: str, params: dict) -> Path:
    return cache_dir() / f"{name}-{workload_digest(generator, params)}.tsh"


def load_workload(name: str, generator: str, params: dict) -> Trace:
    """Load the cached workload, regenerating when the key is stale.

    Files for the same workload name under an *old* digest are deleted
    on regeneration, so the cache directory cannot silently accumulate —
    or worse, serve — traces from earlier parameter sets.
    """
    path = workload_path(name, generator, params)
    if not path.exists():
        trace = _GENERATORS[generator](**params)
        path.parent.mkdir(parents=True, exist_ok=True)
        for stale in path.parent.glob(f"{name}-*.tsh"):
            if stale != path:
                stale.unlink()
        trace.save_tsh(path)
    # Always measure the TSH-loaded form: its microsecond-quantized
    # timestamps make results identical on cold and warm cache alike.
    return Trace.load_tsh(path)


def _mib_per_s(byte_count: int, seconds: float) -> float:
    return byte_count / (1024 * 1024) / max(seconds, 1e-9)


def sweep(repeats: int = 3) -> list[dict]:
    """One row per (workload, backend): ratio + encode/decode speed."""
    rows = []
    for workload, generator, params in WORKLOADS:
        trace = load_workload(workload, generator, params)
        original = tsh_file_size(len(trace))
        compressed = compress_trace(trace)
        for backend in (*backend_names(), AUTO):
            encode = decode = float("inf")
            data = b""
            for _ in range(repeats):
                start = time.perf_counter()
                data = serialize_compressed(compressed, backend=backend)
                encode = min(encode, time.perf_counter() - start)
                start = time.perf_counter()
                deserialize_compressed(data)
                decode = min(decode, time.perf_counter() - start)
            rows.append(
                {
                    "workload": workload,
                    "backend": backend,
                    "original": original,
                    "stored": len(data),
                    "ratio": 100.0 * len(data) / original,
                    "encode_mib_s": _mib_per_s(original, encode),
                    "decode_mib_s": _mib_per_s(original, decode),
                }
            )
    return rows


def markdown_table(rows: list[dict]) -> str:
    lines = [
        "| workload | backend | stored bytes | ratio (% of TSH) "
        "| encode MiB/s | decode MiB/s |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        lines.append(
            f"| {row['workload']} | {row['backend']} | {row['stored']} "
            f"| {row['ratio']:.2f} | {row['encode_mib_s']:.0f} "
            f"| {row['decode_mib_s']:.0f} |"
        )
    return "\n".join(lines)


def main() -> int:
    rows = sweep()
    print(markdown_table(rows))
    # Sanity: the sweep must agree with the paper's headline claim (the
    # raw container lands around 3 % of the TSH bytes on web traffic)
    # and the entropy coders must not lose to raw on any workload here.
    web_raw = next(
        r for r in rows if r["workload"] == "web" and r["backend"] == "raw"
    )
    if not 1.0 < web_raw["ratio"] < 6.0:
        print(f"suspicious web/raw ratio: {web_raw['ratio']:.2f}%", file=sys.stderr)
        return 1
    for workload in {r["workload"] for r in rows}:
        by_backend = {
            r["backend"]: r["stored"] for r in rows if r["workload"] == workload
        }
        # Auto trial-picks on a 64 KiB sample per section, so grant 2 %
        # slack for sample-vs-full divergence on large sections.
        if by_backend["auto"] > min(by_backend.values()) * 1.02:
            print(f"auto lost the sweep on {workload}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
