#!/usr/bin/env python
"""Backend ratio/throughput sweep — emits the docs/CLI.md table.

Runs the flow-clustering compressor once per workload, then serializes
the result through every registered backend (plus ``auto``), measuring
stored size, encode time and decode time.  Output is a GitHub-flavoured
markdown table; regenerate the table in ``docs/CLI.md`` with::

    PYTHONPATH=src python benchmarks/backend_table.py

Pure stdlib — runnable in CI without test dependencies.  Ratios are
deterministic per workload seed; throughputs are machine-dependent and
documented as indicative.
"""

from __future__ import annotations

import sys
import time

from repro.core.backends import AUTO, backend_names
from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.compressor import compress_trace
from repro.synth import generate_fracexp_trace, generate_p2p_trace, generate_web_trace
from repro.trace.tsh import tsh_file_size

WORKLOADS = (
    ("web", lambda: generate_web_trace(duration=60.0, flow_rate=40.0, seed=1)),
    ("p2p", lambda: generate_p2p_trace(duration=60.0, session_rate=8.0, seed=77)),
    ("fracexp", lambda: generate_fracexp_trace(20_000, seed=4242)),
)


def _mib_per_s(byte_count: int, seconds: float) -> float:
    return byte_count / (1024 * 1024) / max(seconds, 1e-9)


def sweep(repeats: int = 3) -> list[dict]:
    """One row per (workload, backend): ratio + encode/decode speed."""
    rows = []
    for workload, build in WORKLOADS:
        trace = build()
        original = tsh_file_size(len(trace))
        compressed = compress_trace(trace)
        for backend in (*backend_names(), AUTO):
            encode = decode = float("inf")
            data = b""
            for _ in range(repeats):
                start = time.perf_counter()
                data = serialize_compressed(compressed, backend=backend)
                encode = min(encode, time.perf_counter() - start)
                start = time.perf_counter()
                deserialize_compressed(data)
                decode = min(decode, time.perf_counter() - start)
            rows.append(
                {
                    "workload": workload,
                    "backend": backend,
                    "original": original,
                    "stored": len(data),
                    "ratio": 100.0 * len(data) / original,
                    "encode_mib_s": _mib_per_s(original, encode),
                    "decode_mib_s": _mib_per_s(original, decode),
                }
            )
    return rows


def markdown_table(rows: list[dict]) -> str:
    lines = [
        "| workload | backend | stored bytes | ratio (% of TSH) "
        "| encode MiB/s | decode MiB/s |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        lines.append(
            f"| {row['workload']} | {row['backend']} | {row['stored']} "
            f"| {row['ratio']:.2f} | {row['encode_mib_s']:.0f} "
            f"| {row['decode_mib_s']:.0f} |"
        )
    return "\n".join(lines)


def main() -> int:
    rows = sweep()
    print(markdown_table(rows))
    # Sanity: the sweep must agree with the paper's headline claim (the
    # raw container lands around 3 % of the TSH bytes on web traffic)
    # and the entropy coders must not lose to raw on any workload here.
    web_raw = next(
        r for r in rows if r["workload"] == "web" and r["backend"] == "raw"
    )
    if not 1.0 < web_raw["ratio"] < 6.0:
        print(f"suspicious web/raw ratio: {web_raw['ratio']:.2f}%", file=sys.stderr)
        return 1
    for workload in {r["workload"] for r in rows}:
        by_backend = {
            r["backend"]: r["stored"] for r in rows if r["workload"] == workload
        }
        # Auto trial-picks on a 64 KiB sample per section, so grant 2 %
        # slack for sample-vs-full divergence on large sections.
        if by_backend["auto"] > min(by_backend.values()) * 1.02:
            print(f"auto lost the sweep on {workload}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
